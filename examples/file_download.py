#!/usr/bin/env python
"""File-download performance, HTTP vs UDP+NAK (paper Fig. 5, shortened).

Shows the paper's two Sec. VII-C findings:

1. TCP downloads pay StopWatch's Δn on every inbound packet (SYN, ACKs),
   costing up to ~2.8x for large files and more for small ones.
2. A transport that minimises inbound packets -- UDP with NAK-based
   reliability, as in PGM -- makes download over StopWatch competitive
   with unmodified Xen.

Run:  python examples/file_download.py   (~1 minute)
"""

from repro.analysis import fig5_file_download, format_table

SIZES = (1_000, 10_000, 100_000, 1_000_000)


def main() -> None:
    print(f"Downloading files of {len(SIZES)} sizes under four "
          f"configurations (baseline/StopWatch x HTTP/UDP)...")
    rows = fig5_file_download(sizes=SIZES, trials=1)
    rendered = [
        (f"{size // 1000} KB", http_base * 1000, http_sw * 1000,
         http_sw / http_base, udp_base * 1000, udp_sw * 1000,
         udp_sw / udp_base)
        for size, http_base, http_sw, udp_base, udp_sw in rows
    ]
    print(format_table(
        ["file", "HTTP base ms", "HTTP StopWatch ms", "HTTP ratio",
         "UDP base ms", "UDP StopWatch ms", "UDP ratio"], rendered))
    print("\nNote how the HTTP ratio stays bounded near ~3x and falls "
          "with file size\n(the paper reports <2.8x for >= 100 KB), "
          "while UDP+NAK over StopWatch\napproaches baseline speed.")


if __name__ == "__main__":
    main()
