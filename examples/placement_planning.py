#!/usr/bin/env python
"""Capacity planning for a StopWatch cloud (paper Sec. VIII).

Demonstrates the placement API an operator would use: the Theorem 2
constructive placement, the incremental scheduler, constraint
verification, and the utilisation comparison against running every VM
in isolation.

Run:  python examples/placement_planning.py
"""

from repro.analysis import format_table, placement_utilization
from repro.placement import (
    PlacementError,
    PlacementScheduler,
    max_triangle_packing_size,
)


def main() -> None:
    print("StopWatch replica placement")
    print("===========================")

    # -- the operator's view: place VMs one at a time -------------------
    scheduler = PlacementScheduler(machines=15, capacity=7)
    for index in range(5):
        triangle = scheduler.place(f"tenant-{index}")
        print(f"tenant-{index} -> machines {triangle}")
    print(f"constraints verified: {scheduler.verify()}")
    print(f"coresidents of tenant-0: "
          f"{sorted(scheduler.coresidents_of('tenant-0'))}")

    # pairwise non-overlap: any two VMs share at most one machine
    for a in scheduler.assignments:
        for b in scheduler.assignments:
            if a < b:
                shared = set(scheduler.assignments[a]) & \
                    set(scheduler.assignments[b])
                assert len(shared) <= 1

    # fill the cloud completely
    placed = 5
    while True:
        try:
            scheduler.place(f"tenant-{placed}")
            placed += 1
        except PlacementError:
            break
    print(f"\n15 machines at capacity 7 host {placed} VMs "
          f"(isolation: 15; Theorem 1 bound: "
          f"{max_triangle_packing_size(15)})")

    # -- the scaling table (Sec. VIII's Θ(cn) claim) -----------------------
    print("\nUtilisation scaling:")
    rows = placement_utilization()
    print(format_table(
        ["machines n", "capacity c", "StopWatch VMs", "isolation VMs",
         "Thm 1 bound", "c*n/3"], rows))


if __name__ == "__main__":
    main()
