#!/usr/bin/env python
"""A timing covert channel, cut by StopWatch (threat-model demo).

A Trojan inside the victim VM signals bits to a coresident attacker VM
by modulating host load in 400 ms slots (bursting datagrams during
"1" slots).  The attacker, receiving a constant-rate ping stream,
decodes bits from per-slot mean inter-arrival times on its own clock.

Run:  python examples/covert_channel_demo.py   (~30 seconds)
"""

from repro.attacks import run_covert_channel


def show(result) -> None:
    sent = "".join(str(b) for b in result.bits_sent)
    got = "".join(str(b) for b in result.bits_decoded)
    marks = "".join(" " if a == b else "^"
                    for a, b in zip(result.bits_sent, result.bits_decoded))
    label = "StopWatch" if result.mediated else "unmodified Xen"
    print(f"\n{label}:")
    print(f"  sent    {sent}")
    print(f"  decoded {got}")
    print(f"  errors  {marks}")
    print(f"  bit error rate: {result.bit_error_rate:.2f}")


def main() -> None:
    print("Covert channel: Trojan victim -> coresident attacker")
    print("(bit 1 = burst of I/O load in that 400 ms slot)")
    show(run_covert_channel(mediated=False, n_bits=24))
    show(run_covert_channel(mediated=True, n_bits=24))
    print("\nUnder StopWatch the decoded stream is near coin-flipping: "
          "the attacker's\nclocks are deterministic in its own progress "
          "and its I/O timings are medians.")


if __name__ == "__main__":
    main()
