#!/usr/bin/env python
"""The headline experiment: coresidence detection with and without
StopWatch (paper Fig. 4, shortened).

An attacker VM receives a ping stream and measures inter-packet
delivery times on its (virtual) clock.  A victim VM continuously
serving file downloads is placed so one replica shares a machine with
one attacker replica.  The attacker then tries to tell "victim present"
from "victim absent" with a chi-squared test.

Run:  python examples/side_channel_defense.py   (~1-2 minutes)
"""

import statistics

from repro.analysis import format_table
from repro.attacks import run_coresidence_experiment

DURATION = 20.0
CONFIDENCES = (0.70, 0.80, 0.90, 0.95, 0.99)


def describe(label: str, result) -> None:
    mean_victim = statistics.mean(result.samples_victim) * 1000
    mean_control = statistics.mean(result.samples_control) * 1000
    print(f"\n{label}")
    print("-" * len(label))
    print(f"samples per condition : {len(result.samples_victim)}")
    print(f"mean inter-packet time, victim coresident : "
          f"{mean_victim:.3f} ms")
    print(f"mean inter-packet time, no victim         : "
          f"{mean_control:.3f} ms")
    rows = result.detection_curve(CONFIDENCES)
    print(format_table(["confidence", "observations to detect"], rows))


def main() -> None:
    print("Running the unmodified-Xen condition...")
    baseline = run_coresidence_experiment(mediated=False,
                                          duration=DURATION)
    print("Running the StopWatch condition...")
    stopwatch = run_coresidence_experiment(mediated=True,
                                           duration=DURATION)

    describe("Unmodified Xen (attacker directly coresident with victim)",
             baseline)
    describe("StopWatch (median of three replicas, one coresident)",
             stopwatch)

    base_n = dict(baseline.detection_curve([0.95]))[0.95]
    sw_n = dict(stopwatch.detection_curve([0.95]))[0.95]
    print(f"\nAt 95% confidence the attacker needs {base_n} observations "
          f"without StopWatch\nand {sw_n} with it -- a "
          f"{sw_n / base_n:.0f}x increase in attack cost.")


if __name__ == "__main__":
    main()
