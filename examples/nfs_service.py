#!/usr/bin/env python
"""An NFS service under StopWatch (paper Fig. 6, shortened).

Runs the nhfsstone-style load generator (five client processes, the
paper's operation mix) against a replicated NFS server, at several
offered rates, under both unmodified Xen and StopWatch.

Run:  python examples/nfs_service.py   (~30 seconds)
"""

from repro.analysis import fig6_nfs, format_table

RATES = (25, 100, 400)


def main() -> None:
    print("nhfsstone against a StopWatch-replicated NFS server")
    print(f"(operation mix: 32% read, 24% lookup, 12% write, "
          f"12% create, 11% setattr, 8% getattr)")
    rows = fig6_nfs(rates=RATES, duration=6.0)
    rendered = [
        (rate, base * 1000, sw * 1000, sw / base, sw_c2s, sw_s2c)
        for rate, base, sw, sw_c2s, sw_s2c, _ in rows
    ]
    print(format_table(
        ["ops/s", "baseline ms/op", "StopWatch ms/op", "ratio",
         "client->server pkts/op", "server->client pkts/op"], rendered))
    print("\nThe overhead stays bounded as load rises because inbound "
          "packet deliveries\npipeline, and client->server packets per "
          "op fall (request/ACK coalescing) --\nthe paper's Fig. 6(b) "
          "effect.")


if __name__ == "__main__":
    main()
