#!/usr/bin/env python
"""Quickstart: a StopWatch cloud in ~60 lines.

Builds a three-machine StopWatch deployment running one replicated
guest VM (a UDP echo server), pings it from an external client, and
prints what the mediation pipeline did: ingress replication, median
agreement on delivery times, deterministic replica execution, and
egress release on the second (median) output copy.

Run:  python examples/quickstart.py
"""

from repro.cloud import Cloud
from repro.core import DEFAULT
from repro.net import UdpStack
from repro.sim import Simulator
from repro.workloads import EchoServer


def main() -> None:
    sim = Simulator(seed=42)
    cloud = Cloud(sim, machines=3, config=DEFAULT)

    # One guest VM; StopWatch replicates it onto machines 0, 1, 2.
    observers = []
    vm = cloud.create_vm(
        "echo", lambda guest: observers.append(EchoServer(guest))
        or observers[-1])

    # An external client over a ~2 ms WAN path.
    client = cloud.add_client("client:1")
    udp = UdpStack(client)
    rtts = {}
    udp.bind(9000, lambda dgram, src: rtts.__setitem__(
        dgram.tag, sim.now - rtts[dgram.tag]))

    def ping(index: int = 0) -> None:
        if index >= 10:
            return
        rtts[index] = sim.now
        udp.send("vm:echo", 9000, 7, 64, tag=index)
        sim.call_after(0.05, ping, index + 1)

    sim.call_after(0.1, ping)
    cloud.run(until=2.0)

    print("StopWatch quickstart")
    print("====================")
    print(f"pings answered        : {len([v for v in rtts.values() if v < 1])}/10")
    mean_rtt = sum(v for v in rtts.values() if v < 1) / 10
    print(f"mean RTT              : {mean_rtt * 1000:.2f} ms "
          f"(Δn = {DEFAULT.delta_net * 1000:.0f} ms dominates)")
    print(f"ingress replications  : {cloud.ingress.packets_replicated}")
    print(f"egress releases       : {cloud.egress.packets_released} "
          f"(released on the 2nd copy = median emission time)")
    for vmm in vm.vmms:
        print(f"replica {vmm.replica_id} on host {vmm.host.host_id}: "
              f"instr={vmm.instr:,} exits={vmm.stats['vm_exits']} "
              f"net_irqs={vmm.stats['net_interrupts']} "
              f"divergences={vmm.stats['divergences']}")

    # The determinism invariant, visible in user space:
    virts = [tuple(round(v, 9) for v in obs.request_virts)
             for obs in observers]
    identical = virts[0] == virts[1] == virts[2]
    print(f"replicas observed identical virtual arrival times: {identical}")


if __name__ == "__main__":
    main()
