#!/usr/bin/env python
"""Record a replica's execution, then replay it offline.

StopWatch makes guests deterministic: a replica's entire run is
captured by the schedule of injected events (network interrupts, disk
completions, PIT ticks), each pinned to a branch count.  This example
records replica 0 of a dedup kernel during a live cloud run, then
re-executes the guest *offline* -- no hosts, no network, no simulated
time -- and shows it reproduces the same result at the same instruction
counts.  This is also how a diverged replica would be recovered.

Run:  python examples/record_replay.py   (~20 seconds)
"""

import random

from repro.cloud import Cloud
from repro.core import DEFAULT
from repro.sim import Simulator, Trace
from repro.sim.rng import _derive_seed
from repro.vmm import ExecutionRecorder, ReplayEngine
from repro.workloads.parsec import Dedup


def main() -> None:
    print("Live run: dedup kernel on a 3-replica StopWatch cloud...")
    sim = Simulator(seed=23, trace=Trace(enabled=False))
    cloud = Cloud(sim, machines=3, config=DEFAULT)
    vm = cloud.create_vm("dedup", lambda g: Dedup(g, scale=0.15))
    recorder = ExecutionRecorder(vm.vmms[0])
    cloud.run(until=15.0)

    live = vm.workloads[0]
    recording = recorder.recording
    print(f"  finished       : {live.finished}")
    print(f"  result         : {live.result}")
    print(f"  finish virt    : {live.finish_virt:.6f} s")
    print(f"  recorded events: {len(recording.net)} net, "
          f"{len(recording.disk)} disk, {len(recording.ticks)} ticks, "
          f"{len(recording.outputs)} outputs")

    print("\nOffline replay from the recording (no cloud, no time)...")
    seed = _derive_seed(sim.rng.root_seed, "workload.dedup")
    holder = []
    engine = ReplayEngine(
        recording,
        lambda guest: holder.append(Dedup(guest, scale=0.15)) or holder[-1],
        random.Random(seed))
    outputs = engine.run()
    replayed = holder[0]
    print(f"  finished       : {replayed.finished}")
    print(f"  result         : {replayed.result}")
    print(f"  finish virt    : {replayed.finish_virt:.6f} s")
    print(f"  outputs checked: {len(outputs)} "
          f"(every one at its recorded instruction count)")

    assert replayed.result == live.result
    assert replayed.finish_virt == live.finish_virt
    print("\nReplay reproduced the live replica exactly.")


if __name__ == "__main__":
    main()
