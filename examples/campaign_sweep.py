#!/usr/bin/env python
"""Campaign API demo: sweep fig. 5 over file sizes and seeds.

Equivalent to ``repro campaign run examples/fig5_sweep.toml`` but built
from Python, which is handy when the grid is computed rather than
written out by hand. Results are cached under ``.campaigns/`` so a
second invocation is free, and an interrupted run resumes from where
it stopped.

Run from the repo root:

    PYTHONPATH=src python examples/campaign_sweep.py
"""

from repro.campaign import (CampaignExecutor, CampaignSpec, ResultCache,
                            ResultStore, SweepSpec)

SIZES = [1_000 * 10 ** i for i in range(3)]        # 1 kB .. 100 kB

spec = CampaignSpec(
    name="fig5-api-demo",
    seeds={"base": 1, "count": 4},     # SHA-256-derived seed sweep
    timeout=120.0,
    retries=1,
    sweeps=[
        SweepSpec(
            runner="fig5_file_download",
            params={"trials": 1, "sim_until": 10.0},
            grid={"sizes": [[size] for size in SIZES]},
        ),
    ],
)

cache = ResultCache(".campaigns/fig5-api-demo/cache")
executor = CampaignExecutor(
    spec, cache,
    jobs=0,                            # 0 = one worker per core
    manifest_path=".campaigns/fig5-api-demo/manifest.jsonl",
)
report = executor.run()

print(f"\n{report.executed} executed, {report.cache_hits} cached, "
      f"{len(report.failures)} failed "
      f"({report.tasks_per_second:.2f} tasks/s)")

store = ResultStore(report.results)
print("\nAggregate over seeds (mean/stdev/p50/p95):\n")
print(store.render_aggregate())
