"""File download services (Fig. 5).

Two server flavours on the same disk-backed file model:

- :class:`FileServer` -- HTTP-style over TCP.  A GET names a file size;
  the server reads it from disk in chunks (cold cache, as in the paper)
  and streams it down the connection.  Inbound TCP ACKs are what Δn
  taxes.
- :class:`UdpFileServer` -- the Sec. VII-C alternative: data over UDP
  paced by the server, reliability via client NAKs, so almost nothing
  flows inbound and StopWatch's per-inbound-packet cost vanishes.

Client-side drivers (:class:`HttpDownloader`, :class:`UdpDownloader`)
run on external client nodes and record retrieval latencies.
"""

import math
from typing import Callable, Dict, List, Optional, Set

from repro.net.tcp import TcpConfig, TcpStack
from repro.net.udp import UdpStack
from repro.workloads.base import GuestWorkload

HTTP_PORT = 80
UDP_FILE_PORT = 6000
DISK_BLOCK = 4096
#: blocks fetched per disk request (readahead window)
BLOCKS_PER_READ = 64
UDP_CHUNK = 1400


class FileServer(GuestWorkload):
    """HTTP-style file server: request ("GET", size) -> size-byte reply."""

    def __init__(self, guest, port: int = HTTP_PORT,
                 request_compute: int = 30000,
                 chunk_compute: int = 8000):
        super().__init__(guest)
        self.port = port
        self.request_compute = request_compute
        self.chunk_compute = chunk_compute
        # servers disable Nagle (TCP_NODELAY), as Apache does, to avoid
        # the Nagle/delayed-ACK stall on the tail of each response
        self.tcp = TcpStack(guest, TcpConfig(nagle=False))
        self.requests_served = 0

    def start(self) -> None:
        self.tcp.listen(self.port, self._on_connection)

    def _on_connection(self, conn) -> None:
        conn.on_message = lambda tag, end: self._on_request(conn, tag)
        conn.on_close = conn.close  # mirror the client's close

    def _on_request(self, conn, tag) -> None:
        verb, size = tag
        if verb != "GET" or size <= 0:
            return
        self.guest.compute(self.request_compute, self._serve, conn, size, 0)

    def _serve(self, conn, size: int, offset: int) -> None:
        """Read the next chunk from disk, send it, recurse."""
        remaining = size - offset
        if remaining <= 0:
            self.requests_served += 1
            return
        chunk = min(remaining, BLOCKS_PER_READ * DISK_BLOCK)
        blocks = max(1, math.ceil(chunk / DISK_BLOCK))
        self.guest.disk_read(blocks, self._on_chunk_read, conn, size,
                             offset, chunk)

    def _on_chunk_read(self, conn, size: int, offset: int,
                       chunk: int) -> None:
        last = offset + chunk >= size
        tag = ("FILE", size) if last else None
        self.guest.compute(
            self.chunk_compute,
            lambda: (conn.send_message(chunk, tag=tag),
                     self._serve(conn, size, offset + chunk)))


class HttpDownloader:
    """Client driver: downloads files over TCP and records latencies.

    Edge robustness mirrors :class:`~repro.workloads.echo.PingClient`
    and is opt-in: with ``timeout=None`` (default) no timers are armed
    and no randomness is drawn, so historical runs stay byte-identical.
    With a ``timeout``, a download that has not completed in time
    abandons its connection and reconnects from scratch, up to
    ``max_retries`` times with exponential backoff plus seeded jitter;
    the recorded latency still covers first-connect-to-last-byte, so
    retries show up as a fat tail rather than vanishing flows.
    """

    def __init__(self, client_node, server_addr: str,
                 port: int = HTTP_PORT,
                 timeout: Optional[float] = None,
                 max_retries: int = 3,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 jitter_frac: float = 0.25):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base <= 0 or backoff_factor < 1.0:
            raise ValueError("backoff_base must be > 0 and "
                             "backoff_factor >= 1")
        if not 0.0 <= jitter_frac <= 1.0:
            raise ValueError(f"jitter_frac must be in [0, 1], "
                             f"got {jitter_frac}")
        self.node = client_node
        self.server_addr = server_addr
        self.port = port
        self.tcp = TcpStack(client_node)
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.jitter_frac = jitter_frac
        self.timeouts = 0
        self.retries = 0
        self.gave_up = 0
        self.latencies: List[float] = []

    def download(self, size: int,
                 on_done: Optional[Callable] = None,
                 on_fail: Optional[Callable] = None) -> None:
        """Fetch a ``size``-byte file; latency covers connect-to-last-byte.

        ``on_fail(size)`` fires if every retry is exhausted (only
        reachable with a ``timeout`` set)."""
        state = {"started": self.node.now(), "done": False,
                 "timer": None, "conn": None}
        self._attempt(state, size, on_done, on_fail, 0)

    def _attempt(self, state: dict, size: int, on_done, on_fail,
                 attempt: int) -> None:
        conn = self.tcp.connect(self.server_addr, self.port)
        state["conn"] = conn

        def on_message(tag, end):
            # a stale connection (abandoned by a timeout) may still
            # drain its in-flight bytes; only the live attempt counts
            if state["done"] or state["conn"] is not conn:
                return
            if tag is not None and tag[0] == "FILE":
                state["done"] = True
                if state["timer"] is not None:
                    state["timer"].cancel()
                latency = self.node.now() - state["started"]
                self.latencies.append(latency)
                conn.close()
                if on_done is not None:
                    on_done(latency)

        def on_connect():
            # a timed-out attempt may complete its handshake late;
            # sending on the abandoned (closed) connection would raise
            if state["done"] or state["conn"] is not conn:
                return
            conn.send_message(200, tag=("GET", size))

        conn.on_message = on_message
        conn.on_connect = on_connect
        if self.timeout is not None:
            state["timer"] = self.node.schedule(
                self.timeout, self._on_timeout, state, size,
                on_done, on_fail, attempt)

    def _on_timeout(self, state: dict, size: int, on_done, on_fail,
                    attempt: int) -> None:
        if state["done"]:
            return
        self.timeouts += 1
        state["conn"].close()
        state["conn"] = None    # disowns late handshakes/bytes
        if attempt >= self.max_retries:
            state["done"] = True
            self.gave_up += 1
            if on_fail is not None:
                on_fail(size)
            return
        backoff = self.backoff_base * self.backoff_factor ** attempt
        if self.jitter_frac > 0.0:
            backoff *= 1.0 + self.jitter_frac * self.node.rng.random()
        self.retries += 1
        self.node.schedule(backoff, self._attempt, state, size,
                           on_done, on_fail, attempt + 1)


class UdpFileServer(GuestWorkload):
    """UDP file service with NAK-based reliability (Sec. VII-C).

    The server paces datagrams on its virtual clock at ``pace_bps``.  A
    trailing END datagram carries the chunk count; the client NAKs any
    gaps afterwards.
    """

    def __init__(self, guest, port: int = UDP_FILE_PORT,
                 pace_bps: float = 80e6,
                 request_compute: int = 30000):
        super().__init__(guest)
        self.port = port
        self.pace_interval = UDP_CHUNK * 8.0 / pace_bps
        self.request_compute = request_compute
        self.udp = UdpStack(guest)
        self._transfers: Dict[tuple, dict] = {}

    def start(self) -> None:
        self.udp.bind(self.port, self._on_datagram)

    def _on_datagram(self, datagram, src: str) -> None:
        kind = datagram.tag[0]
        if kind == "GET":
            _, size, transfer_id = datagram.tag
            key = (src, datagram.src_port, transfer_id)
            chunks = max(1, math.ceil(size / UDP_CHUNK))
            self._transfers[key] = {"size": size, "chunks": chunks}
            self.guest.compute(self.request_compute, self._read_and_send,
                               key, src, datagram.src_port, transfer_id, 0)
        elif kind == "NAK":
            _, transfer_id, missing = datagram.tag
            key = (src, datagram.src_port, transfer_id)
            if key in self._transfers:
                for seq in missing:
                    self._send_chunk(src, datagram.src_port, transfer_id,
                                     seq, self._transfers[key]["chunks"])

    def _read_and_send(self, key, src, client_port, transfer_id,
                       next_chunk: int) -> None:
        """Disk-read a window, then pace its datagrams out."""
        state = self._transfers[key]
        total = state["chunks"]
        if next_chunk >= total:
            self.udp.send(src, self.port, client_port, 32,
                          tag=("END", transfer_id, total))
            return
        window = min(total - next_chunk,
                     (BLOCKS_PER_READ * DISK_BLOCK) // UDP_CHUNK)
        blocks = max(1, math.ceil(window * UDP_CHUNK / DISK_BLOCK))
        self.guest.disk_read(blocks, self._send_window, key, src,
                             client_port, transfer_id, next_chunk, window)

    def _send_window(self, key, src, client_port, transfer_id,
                     next_chunk: int, window: int) -> None:
        state = self._transfers[key]
        total = state["chunks"]

        def send_one(i: int) -> None:
            if i >= window:
                self._read_and_send(key, src, client_port, transfer_id,
                                    next_chunk + window)
                return
            self._send_chunk(src, client_port, transfer_id,
                             next_chunk + i, total)
            self.guest.schedule(self.pace_interval, send_one, i + 1)

        send_one(0)

    def _send_chunk(self, src, client_port, transfer_id, seq: int,
                    total: int) -> None:
        self.udp.send(src, self.port, client_port, UDP_CHUNK,
                      tag=("DATA", transfer_id, seq, total))


class UdpDownloader:
    """Client driver for the UDP file service."""

    def __init__(self, client_node, server_addr: str,
                 port: int = UDP_FILE_PORT, local_port: int = 9400,
                 nak_delay: float = 0.030):
        self.node = client_node
        self.server_addr = server_addr
        self.port = port
        self.local_port = local_port
        self.nak_delay = nak_delay
        self.udp = UdpStack(client_node)
        self.udp.bind(local_port, self._on_datagram)
        self.latencies: List[float] = []
        self._next_transfer = 0
        self._active: Dict[int, dict] = {}

    def download(self, size: int,
                 on_done: Optional[Callable] = None) -> None:
        transfer_id = self._next_transfer
        self._next_transfer += 1
        self._active[transfer_id] = {
            "started": self.node.now(),
            "received": set(),
            "total": None,
            "on_done": on_done,
        }
        self.udp.send(self.server_addr, self.local_port, self.port, 64,
                      tag=("GET", size, transfer_id))

    def _on_datagram(self, datagram, src: str) -> None:
        kind = datagram.tag[0]
        if kind == "DATA":
            _, transfer_id, seq, total = datagram.tag
            state = self._active.get(transfer_id)
            if state is None:
                return
            state["received"].add(seq)
            state["total"] = total
            self._check_complete(transfer_id)
        elif kind == "END":
            _, transfer_id, total = datagram.tag
            state = self._active.get(transfer_id)
            if state is None:
                return
            state["total"] = total
            self._check_complete(transfer_id)
            if transfer_id in self._active:
                self.node.schedule(self.nak_delay, self._send_naks,
                                   transfer_id)

    def _missing(self, state) -> List[int]:
        return [seq for seq in range(state["total"])
                if seq not in state["received"]]

    def _check_complete(self, transfer_id: int) -> None:
        state = self._active.get(transfer_id)
        if state is None or state["total"] is None:
            return
        if len(state["received"]) >= state["total"]:
            del self._active[transfer_id]
            latency = self.node.now() - state["started"]
            self.latencies.append(latency)
            if state["on_done"] is not None:
                state["on_done"](latency)

    def _send_naks(self, transfer_id: int) -> None:
        state = self._active.get(transfer_id)
        if state is None:
            return
        missing = self._missing(state)
        if missing:
            self.udp.send(self.server_addr, self.local_port, self.port, 64,
                          tag=("NAK", transfer_id, tuple(missing[:64])))
            self.node.schedule(self.nak_delay, self._send_naks, transfer_id)


class DownloadLoop:
    """Fileserver client: fetches ``size`` bytes in a closed loop."""

    def __init__(self, client_node, target: str, size: int,
                 timeout: Optional[float] = None, max_retries: int = 3,
                 backoff_base: float = 0.05):
        self.downloader = HttpDownloader(
            client_node, target, timeout=timeout,
            max_retries=max_retries, backoff_base=backoff_base)
        self.size = size
        self.completed = 0
        self.failed = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self._fetch()

    def stop(self) -> None:
        self._running = False

    def _fetch(self) -> None:
        if not self._running:
            return
        self.downloader.download(self.size, on_done=self._on_done,
                                 on_fail=self._on_fail)

    def _on_done(self, _latency: float) -> None:
        self.completed += 1
        self._fetch()

    def _on_fail(self, _size: int) -> None:
        # retries exhausted (only with a timeout set): count it and
        # keep the closed loop alive rather than silently stalling
        self.failed += 1
        self._fetch()

    @property
    def latencies(self) -> List[float]:
        return self.downloader.latencies


class UdpDownloadLoop:
    """UDP file-service client: fetches ``size`` bytes in a closed
    loop over the NAK-reliable paced transfer (Fig. 5's low-inbound
    regime)."""

    def __init__(self, client_node, target: str, size: int):
        self.downloader = UdpDownloader(client_node, target)
        self.size = size
        self.completed = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self._fetch()

    def stop(self) -> None:
        self._running = False

    def _fetch(self) -> None:
        if not self._running:
            return
        self.downloader.download(self.size, on_done=self._on_done)

    def _on_done(self, _latency: float) -> None:
        self.completed += 1
        self._fetch()

    @property
    def latencies(self) -> List[float]:
        return self.downloader.latencies
