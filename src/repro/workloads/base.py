"""Workload conventions and the common base class."""


class GuestWorkload:
    """Base class for guest workloads.

    Subclasses receive the replica's :class:`~repro.machine.guest.GuestOS`
    and implement :meth:`start`, which runs as the guest's first event at
    instruction 0.  Everything a workload does must flow through the
    guest interface (``compute``, ``schedule``, ``disk_read``/``write``,
    protocol stacks over ``send_packet``) so that replicas stay
    deterministic.
    """

    def __init__(self, guest):
        self.guest = guest

    def start(self) -> None:
        raise NotImplementedError

    @property
    def rng(self):
        """The workload RNG -- identical stream on every replica."""
        return self.guest.rng
