"""NFS server model and nhfsstone-style load generator (Fig. 6).

The paper drove an NFSv4 server (over TCP) with ``nhfsstone``: five
client processes issuing a fixed operation mix at a constant aggregate
rate, 25-400 ops/s.  The mix below is the one extracted in Sec. VII-C.

Server behaviour per operation is modelled from classic NFS servers:
metadata reads (lookup/getattr) usually hit the attribute cache and
cost only CPU; reads hit the buffer cache with some probability and the
disk otherwise; writes and creates are synchronous (NFSv4 stable
writes) and always touch the disk.
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.tcp import TcpConfig, TcpStack
from repro.workloads.base import GuestWorkload

NFS_PORT = 2049

#: (operation, fraction) -- the paper's extracted mix (Sec. VII-C fn. 6).
NFS_OPERATION_MIX: List[Tuple[str, float]] = [
    ("setattr", 0.1137),
    ("lookup", 0.2407),
    ("write", 0.1192),
    ("getattr", 0.0793),
    ("read", 0.3234),
    ("create", 0.1237),
]

#: per-op behaviour: (compute_branches, disk_blocks, is_write,
#:                    disk_probability, reply_bytes)
OPERATION_PROFILE: Dict[str, tuple] = {
    "setattr": (30000, 2, True, 0.60, 128),
    "lookup": (25000, 4, False, 0.15, 160),
    "write": (40000, 16, True, 0.50, 128),   # journal/NVRAM coalescing
    "getattr": (15000, 2, False, 0.10, 128),
    "read": (30000, 16, False, 0.25, 8192),  # buffer-cache hits
    "create": (50000, 8, True, 0.80, 160),
}

REQUEST_BYTES = 120


#: the pre-populated export used in filesystem-backed mode
EXPORT_FILES = 200
EXPORT_FILE_BYTES = 16 * 1024
IO_BYTES = 8192


class NfsServer(GuestWorkload):
    """NFS-over-TCP server guest workload.

    Two modes:

    - the default *profile* mode reproduces the paper's measured per-op
      behaviour statistically (calibrated compute/disk costs) -- this is
      what the Fig. 6 benchmark uses;
    - ``filesystem=True`` executes every operation for real against a
      deterministic in-guest :class:`~repro.machine.fs.SimpleFileSystem`
      (journalled metadata, LRU buffer cache, write-behind data), so
      replicas hold bit-identical trees -- the replicated-disk-image
      claim made executable.
    """

    def __init__(self, guest, port: int = NFS_PORT,
                 filesystem: bool = False,
                 cache_blocks: int = 2048):
        super().__init__(guest)
        self.port = port
        # NFS servers run with Nagle disabled (rpc over TCP sets
        # TCP_NODELAY) -- replies must not stall behind delayed ACKs
        self.tcp = TcpStack(guest, TcpConfig(nagle=False))
        self.ops_served = 0
        self.ops_by_type: Dict[str, int] = {}
        self.fs = None
        if filesystem:
            from repro.machine.fs import SimpleFileSystem
            self.fs = SimpleFileSystem(guest, cache_blocks=cache_blocks)

    def start(self) -> None:
        if self.fs is not None:
            # the replicated disk image arrives pre-populated
            self.fs.preload_file("/export/.sentinel", 0)
            for index in range(EXPORT_FILES):
                self.fs.preload_file(f"/export/f{index}",
                                     EXPORT_FILE_BYTES)
        self.tcp.listen(self.port, self._on_connection)

    def _on_connection(self, conn) -> None:
        conn.on_message = lambda tag, end: self._on_request(conn, tag)
        conn.on_close = conn.close

    def _on_request(self, conn, tag) -> None:
        op, op_id, path, offset = tag
        profile = OPERATION_PROFILE.get(op)
        if profile is None:
            return
        compute, blocks, is_write, disk_prob, reply_bytes = profile
        self.guest.compute(compute, self._after_compute, conn, op, op_id,
                           path, offset, blocks, is_write, disk_prob,
                           reply_bytes)

    def _after_compute(self, conn, op, op_id, path, offset, blocks,
                       is_write, disk_prob, reply_bytes) -> None:
        if self.fs is not None:
            self._execute_fs(conn, op, op_id, path, offset, reply_bytes)
            return
        # profile mode: the workload RNG is replica-identical, so
        # simulated cache hits are too
        needs_disk = self.rng.random() < disk_prob
        if needs_disk and is_write:
            self.guest.disk_write(blocks, self._reply, conn, op, op_id,
                                  reply_bytes)
        elif needs_disk:
            self.guest.disk_read(blocks, self._reply, conn, op, op_id,
                                 reply_bytes)
        else:
            self._reply(conn, op, op_id, reply_bytes)

    def _execute_fs(self, conn, op, op_id, path, offset,
                    reply_bytes) -> None:
        done = lambda *_args: self._reply(conn, op, op_id, reply_bytes)  # noqa: E731
        if op == "lookup":
            self.fs.lookup(path)
            done()
        elif op == "getattr":
            self.fs.getattr(path)
            done()
        elif op == "read":
            self.fs.read(path, offset, IO_BYTES, done)
        elif op == "write":
            self.fs.write(path, offset, IO_BYTES, done)
        elif op == "setattr":
            self.fs.setattr(path, done, mode=0o640)
        elif op == "create":
            self.fs.create(f"/export/c{op_id}", done)
        else:
            done()

    def _reply(self, conn, op, op_id, reply_bytes) -> None:
        self.ops_served += 1
        self.ops_by_type[op] = self.ops_by_type.get(op, 0) + 1
        if conn.connected:
            conn.send_message(reply_bytes, tag=("reply", op, op_id))


class NhfsstoneClient:
    """nhfsstone: N processes issuing the mix at a constant total rate.

    Each process runs one TCP connection to the server.  Operations are
    issued at fixed spacing ``processes / rate`` per process (constant
    aggregate rate, as nhfsstone does), drawn from the operation mix.
    Per-op latency is measured request-to-reply; TCP segment counters
    give packets/op (Fig. 6(b)).
    """

    def __init__(self, client_node, server_addr: str, rate: float,
                 processes: int = 5, port: int = NFS_PORT,
                 mix: Optional[List[Tuple[str, float]]] = None):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.node = client_node
        self.server_addr = server_addr
        self.rate = rate
        self.processes = processes
        self.port = port
        self.mix = mix or NFS_OPERATION_MIX
        self.tcp = TcpStack(client_node)
        self.latencies: List[float] = []
        self.ops_issued = 0
        self.ops_completed = 0
        self._pending: Dict[int, float] = {}
        self._next_op_id = 0
        self._running = False
        self._connections = []

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        self._running = True
        for index in range(self.processes):
            conn = self.tcp.connect(self.server_addr, self.port)
            conn.on_message = self._on_reply
            self._connections.append(conn)
            # stagger the processes across one period
            offset = index / self.rate
            conn.on_connect = (lambda c=conn, o=offset:
                               self.node.schedule(o, self._issue, c))

    def stop(self) -> None:
        self._running = False

    # -- operation issue -----------------------------------------------------
    def _draw_operation(self) -> str:
        roll = self.node.rng.random()
        acc = 0.0
        for op, fraction in self.mix:
            acc += fraction
            if roll < acc:
                return op
        return self.mix[-1][0]

    def _issue(self, conn) -> None:
        if not self._running or not conn.connected:
            return
        op = self._draw_operation()
        op_id = self._next_op_id
        self._next_op_id += 1
        self._pending[op_id] = self.node.now()
        self.ops_issued += 1
        # target path/offset in the server's pre-populated export
        path = f"/export/f{self.node.rng.randrange(EXPORT_FILES)}"
        max_offset = max(1, EXPORT_FILE_BYTES - IO_BYTES)
        offset = self.node.rng.randrange(max_offset) if op in ("read",
                                                               "write") \
            else 0
        conn.send_message(REQUEST_BYTES, tag=(op, op_id, path, offset))
        self.node.schedule(self.processes / self.rate, self._issue, conn)

    def _on_reply(self, tag, end) -> None:
        _, op, op_id = tag
        started = self._pending.pop(op_id, None)
        if started is None:
            return
        self.ops_completed += 1
        self.latencies.append(self.node.now() - started)

    # -- reporting ----------------------------------------------------------
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def packets_per_op(self) -> Tuple[float, float]:
        """(client->server, server->client) TCP segments per completed op."""
        if self.ops_completed == 0:
            return (0.0, 0.0)
        return (self.tcp.segments_sent / self.ops_completed,
                self.tcp.segments_received / self.ops_completed)
