"""The five kernels.

Each performs genuine computation at small scale (so the simulator stays
fast) with a *calibrated* branch budget representing the native input's
cost on the paper's hardware (Core2 Quad @ 3 GHz; see Fig. 7).  Disk
plans are calibrated to the paper's measured interrupt counts:
ferret 31, blackscholes 38, canneal 183, dedup 293, streamcluster 27.
"""

import math

from repro.workloads.parsec.base import ParsecWorkload


def _cnd(x: float) -> float:
    """Cumulative normal distribution via erf (Black-Scholes helper)."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class BlackScholes(ParsecWorkload):
    """Option pricing with the closed-form Black-Scholes solution."""

    name = "blackscholes"
    compute_budget = int(0.93e7)     # ~93 ms of compute at 100 Mbranch/s
    input_reads = 30                 # option portfolio unpack
    output_writes = 8
    batches = 20

    OPTIONS = 2000

    def prepare(self) -> None:
        rng = self.rng
        self.options = [
            (rng.uniform(20.0, 120.0),   # spot
             rng.uniform(20.0, 120.0),   # strike
             rng.uniform(0.05, 2.0),     # expiry years
             rng.uniform(0.01, 0.06),    # rate
             rng.uniform(0.1, 0.6),      # volatility
             rng.random() < 0.5)         # is_call
            for _ in range(self.OPTIONS)
        ]
        self.prices = []

    def run_batch(self, index: int, total: int) -> None:
        chunk = math.ceil(len(self.options) / total)
        for spot, strike, expiry, rate, vol, is_call in \
                self.options[index * chunk:(index + 1) * chunk]:
            d1 = (math.log(spot / strike)
                  + (rate + 0.5 * vol * vol) * expiry) \
                / (vol * math.sqrt(expiry))
            d2 = d1 - vol * math.sqrt(expiry)
            if is_call:
                price = spot * _cnd(d1) \
                    - strike * math.exp(-rate * expiry) * _cnd(d2)
            else:
                price = strike * math.exp(-rate * expiry) * _cnd(-d2) \
                    - spot * _cnd(-d1)
            self.prices.append(price)

    def finish_result(self) -> float:
        return round(sum(self.prices) / len(self.prices), 6)


class Ferret(ParsecWorkload):
    """Content-based similarity search over feature vectors."""

    name = "ferret"
    compute_budget = int(1.03e7)
    input_reads = 25                 # image database segments
    output_writes = 6
    batches = 20

    DATABASE = 200
    QUERIES = 20
    DIMS = 16
    TOP_K = 5

    def prepare(self) -> None:
        rng = self.rng
        self.database = [[rng.gauss(0.0, 1.0) for _ in range(self.DIMS)]
                         for _ in range(self.DATABASE)]
        self.queries = [[rng.gauss(0.0, 1.0) for _ in range(self.DIMS)]
                        for _ in range(self.QUERIES)]
        self.matches = []

    @staticmethod
    def _cosine(a, b) -> float:
        dot = sum(x * y for x, y in zip(a, b))
        norm = math.sqrt(sum(x * x for x in a)) \
            * math.sqrt(sum(y * y for y in b))
        return dot / norm if norm else 0.0

    def run_batch(self, index: int, total: int) -> None:
        chunk = math.ceil(self.QUERIES / total)
        for query in self.queries[index * chunk:(index + 1) * chunk]:
            scored = sorted(
                ((self._cosine(query, img), i)
                 for i, img in enumerate(self.database)),
                reverse=True)
            self.matches.append(tuple(i for _, i in scored[:self.TOP_K]))

    def finish_result(self) -> int:
        # stable fingerprint of all top-k lists
        return hash(tuple(self.matches)) & 0xFFFFFFFF


class Canneal(ParsecWorkload):
    """Simulated-annealing placement to minimise routing cost."""

    name = "canneal"
    compute_budget = int(1.127e8)
    input_reads = 150                # large netlist unpack
    output_writes = 33
    batches = 40

    ELEMENTS = 300
    NETS = 600
    SWAPS_PER_BATCH = 400

    def prepare(self) -> None:
        rng = self.rng
        self.positions = [(rng.uniform(0, 100), rng.uniform(0, 100))
                          for _ in range(self.ELEMENTS)]
        self.nets = [(rng.randrange(self.ELEMENTS),
                      rng.randrange(self.ELEMENTS))
                     for _ in range(self.NETS)]
        self.temperature = 50.0
        self.cost = self._total_cost()

    def _wire_len(self, a: int, b: int) -> float:
        (x1, y1), (x2, y2) = self.positions[a], self.positions[b]
        return abs(x1 - x2) + abs(y1 - y2)

    def _total_cost(self) -> float:
        return sum(self._wire_len(a, b) for a, b in self.nets)

    def run_batch(self, index: int, total: int) -> None:
        rng = self.rng
        for _ in range(self.SWAPS_PER_BATCH):
            i = rng.randrange(self.ELEMENTS)
            j = rng.randrange(self.ELEMENTS)
            if i == j:
                continue
            before = sum(self._wire_len(a, b) for a, b in self.nets
                         if a in (i, j) or b in (i, j))
            self.positions[i], self.positions[j] = \
                self.positions[j], self.positions[i]
            after = sum(self._wire_len(a, b) for a, b in self.nets
                        if a in (i, j) or b in (i, j))
            delta = after - before
            if delta <= 0 or rng.random() < math.exp(
                    -delta / max(self.temperature, 1e-6)):
                self.cost += delta
            else:
                self.positions[i], self.positions[j] = \
                    self.positions[j], self.positions[i]
        self.temperature *= 0.9

    def finish_result(self) -> float:
        return round(self.cost, 3)


class Dedup(ParsecWorkload):
    """Deduplicating compression pipeline over a synthetic backup stream."""

    name = "dedup"
    compute_budget = int(3.085e8)
    input_reads = 250                # the stream being backed up
    output_writes = 43
    batches = 60

    CHUNKS = 6000

    def prepare(self) -> None:
        rng = self.rng
        # skewed content distribution -> genuine duplicate chunks
        self.stream = [int(rng.paretovariate(0.7)) % 1200
                       for _ in range(self.CHUNKS)]
        self.seen = {}
        self.unique = 0
        self.duplicates = 0
        self.compressed_size = 0

    @staticmethod
    def _fingerprint(value: int) -> int:
        # cheap stand-in for SHA1: an avalanche mix
        value = (value ^ 61) ^ (value >> 16)
        value = (value + (value << 3)) & 0xFFFFFFFF
        value ^= value >> 4
        value = (value * 0x27d4eb2d) & 0xFFFFFFFF
        return value ^ (value >> 15)

    def run_batch(self, index: int, total: int) -> None:
        chunk = math.ceil(self.CHUNKS / total)
        for content in self.stream[index * chunk:(index + 1) * chunk]:
            digest = self._fingerprint(content)
            if digest in self.seen:
                self.duplicates += 1
            else:
                self.seen[digest] = content
                self.unique += 1
                # "compress" the unique chunk
                self.compressed_size += 1 + content % 97

    def finish_result(self) -> tuple:
        return (self.unique, self.duplicates, self.compressed_size)


class StreamCluster(ParsecWorkload):
    """Online k-median clustering of a point stream."""

    name = "streamcluster"
    compute_budget = int(2.31e7)
    input_reads = 21                 # streamed point windows
    output_writes = 6
    batches = 20

    POINTS = 1500
    DIMS = 8
    MAX_CENTERS = 24
    OPEN_THRESHOLD = 6.0

    def prepare(self) -> None:
        rng = self.rng
        self.points = [[rng.gauss(rng.choice((-3.0, 0.0, 3.0)), 1.0)
                        for _ in range(self.DIMS)]
                       for _ in range(self.POINTS)]
        self.centers = []
        self.assign_cost = 0.0

    @staticmethod
    def _dist(a, b) -> float:
        return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))

    def run_batch(self, index: int, total: int) -> None:
        chunk = math.ceil(self.POINTS / total)
        for point in self.points[index * chunk:(index + 1) * chunk]:
            if not self.centers:
                self.centers.append(point)
                continue
            nearest = min(self._dist(point, c) for c in self.centers)
            if nearest > self.OPEN_THRESHOLD \
                    and len(self.centers) < self.MAX_CENTERS:
                self.centers.append(point)
            else:
                self.assign_cost += nearest

    def finish_result(self) -> tuple:
        return (len(self.centers), round(self.assign_cost, 3))


#: name -> class registry used by the Fig. 7 harness
PARSEC_KERNELS = {
    "ferret": Ferret,
    "blackscholes": BlackScholes,
    "canneal": Canneal,
    "dedup": Dedup,
    "streamcluster": StreamCluster,
}
