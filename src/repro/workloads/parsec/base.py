"""Driver machinery shared by the PARSEC-style kernels.

A kernel is a *plan*: an alternating sequence of disk reads (unpacking
inputs), compute batches (the actual algorithm, run for real in Python
with a calibrated branch charge), and disk writes (results).  Completion
is made externally observable the honest way: the guest sends a DONE
datagram to a collector node, so under StopWatch the externally visible
finish time is the egress-median of the replicas' finishes.
"""

import math
from typing import Any, List, Optional, Tuple

from repro.net.udp import UdpStack
from repro.workloads.base import GuestWorkload

COLLECTOR_PORT = 7100
DISK_BLOCK = 4096


class ParsecWorkload(GuestWorkload):
    """Base driver: subclasses provide the plan and the batch kernel."""

    #: human name, overridden
    name = "parsec"
    #: calibrated compute budget (branches) at scale 1.0
    compute_budget = 10**7
    #: disk plan at scale 1.0: (input_reads, output_writes, blocks_each)
    input_reads = 8
    output_writes = 2
    blocks_per_io = 32
    #: how many compute batches the budget is split into
    batches = 20

    def __init__(self, guest, scale: float = 1.0,
                 collector_addr: Optional[str] = None):
        super().__init__(guest)
        self.scale = scale
        self.collector_addr = collector_addr
        self.udp = UdpStack(guest) if collector_addr else None
        self.finished = False
        self.finish_virt: Optional[float] = None
        self.start_virt: Optional[float] = None
        self.result: Any = None
        self.disk_ops = 0
        self._phases: List[Tuple] = []
        self._phase_index = 0

    # -- subclass interface ------------------------------------------------
    def prepare(self) -> None:
        """Generate the kernel's input data (replica-deterministic)."""
        raise NotImplementedError

    def run_batch(self, index: int, total: int) -> None:
        """Execute one batch of real computation."""
        raise NotImplementedError

    def finish_result(self) -> Any:
        """Summarise the computation's output (checked across replicas)."""
        raise NotImplementedError

    # -- plan construction ---------------------------------------------------
    def _build_plan(self) -> None:
        reads = max(1, round(self.input_reads * self.scale))
        writes = max(1, round(self.output_writes * self.scale))
        total_batches = max(1, round(self.batches * self.scale))
        budget = int(self.compute_budget * self.scale)
        per_batch = max(1, budget // total_batches)

        # interleave: all reads first (unpack inputs), then compute
        # batches, then writes -- with a few reads spread mid-run the way
        # streaming kernels behave.
        head_reads = max(1, reads // 2)
        tail_reads = reads - head_reads
        plan: List[Tuple] = [("read",)] * head_reads
        spread = max(1, total_batches // (tail_reads + 1)) if tail_reads \
            else total_batches + 1
        for index in range(total_batches):
            plan.append(("compute", index, total_batches, per_batch))
            if tail_reads > 0 and (index + 1) % spread == 0:
                plan.append(("read",))
                tail_reads -= 1
        plan.extend([("read",)] * max(0, tail_reads))
        plan.extend([("write",)] * writes)
        self._phases = plan

    # -- execution ---------------------------------------------------------
    def start(self) -> None:
        self.start_virt = self.guest.now()
        self.prepare()
        self._build_plan()
        self._phase_index = 0
        self._next_phase()

    def _next_phase(self) -> None:
        if self._phase_index >= len(self._phases):
            self._complete()
            return
        phase = self._phases[self._phase_index]
        self._phase_index += 1
        kind = phase[0]
        if kind == "read":
            self.disk_ops += 1
            self.guest.disk_read(self.blocks_per_io, self._next_phase)
        elif kind == "write":
            self.disk_ops += 1
            self.guest.disk_write(self.blocks_per_io, self._next_phase)
        else:
            _, index, total, branches = phase
            self.run_batch(index, total)
            self.guest.compute(branches, self._next_phase)

    def _complete(self) -> None:
        self.finished = True
        self.finish_virt = self.guest.now()
        self.result = self.finish_result()
        if self.udp is not None:
            self.udp.send(self.collector_addr, COLLECTOR_PORT,
                          COLLECTOR_PORT, 64,
                          tag=("DONE", self.name, self.result))


class RunCollector:
    """Client-side collector: records real completion times of kernels."""

    def __init__(self, client_node):
        self.node = client_node
        self.udp = UdpStack(client_node)
        self.udp.bind(COLLECTOR_PORT, self._on_datagram)
        self.completions: List[Tuple[float, str, Any]] = []

    def _on_datagram(self, datagram, src: str) -> None:
        _, name, result = datagram.tag
        self.completions.append((self.node.now(), name, result))

    def completion_time(self, name: str) -> Optional[float]:
        for time, kernel, _ in self.completions:
            if kernel == name:
                return time
        return None
