"""A natively-parallel PARSEC kernel on the deterministic SMP runtime.

PARSEC applications are multithreaded; the paper's prototype pins
guests to one VCPU and defers SMP to future work.  With the
DMP-style scheduler of :mod:`repro.machine.multiproc` the same pricing
kernel runs on several worker threads -- deterministically, so the
replicas still agree bit-exactly -- and finishes in roughly
``1/vcpus`` of the serial compute time.
"""

import math
from typing import Optional

from repro.machine.multiproc import MultiprocessorRuntime
from repro.net.udp import UdpStack
from repro.workloads.base import GuestWorkload
from repro.workloads.parsec.base import COLLECTOR_PORT
from repro.workloads.parsec.kernels import BlackScholes, _cnd


class BlackScholesParallel(GuestWorkload):
    """Black-Scholes pricing fanned out over guest threads."""

    name = "blackscholes-smp"
    #: serial-equivalent compute budget (same portfolio as the serial
    #: kernel at scale 1.0)
    compute_budget = BlackScholes.compute_budget
    input_reads = BlackScholes.input_reads
    output_writes = BlackScholes.output_writes
    blocks_per_io = 32

    def __init__(self, guest, threads: int = 4, vcpus: int = 4,
                 scale: float = 1.0,
                 collector_addr: Optional[str] = None):
        super().__init__(guest)
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self.vcpus = vcpus
        self.scale = scale
        self.collector_addr = collector_addr
        self.udp = UdpStack(guest) if collector_addr else None
        self.options = []
        self.prices = []
        self.finished = False
        self.finish_virt = None
        self.start_virt = None
        self.disk_ops = 0

    # -- setup -----------------------------------------------------------
    def _prepare(self) -> None:
        rng = self.rng
        count = max(self.threads, int(BlackScholes.OPTIONS * self.scale))
        self.options = [
            (rng.uniform(20.0, 120.0), rng.uniform(20.0, 120.0),
             rng.uniform(0.05, 2.0), rng.uniform(0.01, 0.06),
             rng.uniform(0.1, 0.6), rng.random() < 0.5)
            for _ in range(count)
        ]
        self.prices = [None] * count

    @staticmethod
    def _price(option) -> float:
        spot, strike, expiry, rate, vol, is_call = option
        d1 = (math.log(spot / strike)
              + (rate + 0.5 * vol * vol) * expiry) \
            / (vol * math.sqrt(expiry))
        d2 = d1 - vol * math.sqrt(expiry)
        if is_call:
            return spot * _cnd(d1) \
                - strike * math.exp(-rate * expiry) * _cnd(d2)
        return strike * math.exp(-rate * expiry) * _cnd(-d2) \
            - spot * _cnd(-d1)

    # -- execution ---------------------------------------------------------
    def start(self) -> None:
        self.start_virt = self.guest.now()
        self._prepare()
        reads = max(1, round(self.input_reads * self.scale))
        self._read_inputs(reads)

    def _read_inputs(self, remaining: int) -> None:
        if remaining <= 0:
            self._run_parallel()
            return
        self.disk_ops += 1
        self.guest.disk_read(self.blocks_per_io, self._read_inputs,
                             remaining - 1)

    def _run_parallel(self) -> None:
        budget = int(self.compute_budget * self.scale)
        per_option = max(1, budget // len(self.options))
        chunk = max(1, math.ceil(len(self.options) / self.threads))
        runtime = MultiprocessorRuntime(
            self.guest, vcpus=self.vcpus, quantum=20_000,
            on_idle=self._write_outputs)

        def worker(start: int, stop: int):
            for index in range(start, min(stop, len(self.options))):
                yield per_option
                self.prices[index] = self._price(self.options[index])

        for t in range(self.threads):
            runtime.spawn(worker(t * chunk, (t + 1) * chunk),
                          name=f"pricer-{t}")
        self.runtime = runtime

    def _write_outputs(self, remaining: Optional[int] = None) -> None:
        if remaining is None:
            remaining = max(1, round(self.output_writes * self.scale))
        if remaining <= 0:
            self._complete()
            return
        self.disk_ops += 1
        self.guest.disk_write(self.blocks_per_io, self._write_outputs,
                              remaining - 1)

    def _complete(self) -> None:
        self.finished = True
        self.finish_virt = self.guest.now()
        self.result = round(sum(self.prices) / len(self.prices), 6)
        if self.udp is not None:
            self.udp.send(self.collector_addr, COLLECTOR_PORT,
                          COLLECTOR_PORT, 64,
                          tag=("DONE", self.name, self.result))
