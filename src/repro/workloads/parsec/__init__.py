"""PARSEC-representative compute kernels (Fig. 7).

Five workloads mirroring the paper's selection from PARSEC 2.1, each a
real (small-scale) computation with a calibrated compute budget and
disk-I/O plan:

- :class:`Ferret` -- feature-vector similarity search (next-gen search).
- :class:`BlackScholes` -- closed-form option pricing (financial).
- :class:`Canneal` -- simulated-annealing routing-cost minimisation.
- :class:`Dedup` -- content-chunking deduplicating "backup" pipeline.
- :class:`StreamCluster` -- online k-median clustering (data mining).

Calibration targets the paper's measured baseline runtimes and disk
interrupt counts (Fig. 7(a,b)); the computations themselves are genuine
and replica-deterministic, so the determinism tests can compare results
across replicas.
"""

from repro.workloads.parsec.base import ParsecWorkload, RunCollector
from repro.workloads.parsec.kernels import (
    BlackScholes,
    Canneal,
    Dedup,
    Ferret,
    StreamCluster,
    PARSEC_KERNELS,
)
from repro.workloads.parsec.parallel import BlackScholesParallel

__all__ = [
    "ParsecWorkload",
    "RunCollector",
    "Ferret",
    "BlackScholes",
    "Canneal",
    "Dedup",
    "StreamCluster",
    "BlackScholesParallel",
    "PARSEC_KERNELS",
]
