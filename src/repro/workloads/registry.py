"""Declarative workload registry: name -> :class:`WorkloadSpec`.

Every workload the simulator can deploy is described by one
:class:`WorkloadSpec`: how to build the guest-side server for a VM
replica, how to build the client-side load driver, which params it
accepts (with defaults), and a declared :class:`ResourceProfile`
(cpu/disk/net weights) that the placer's utilisation report and the
profiler-facing analysis layers can read without instantiating
anything.

The scenario layer (:mod:`repro.cloud.scenario`) resolves tenants
exclusively through :func:`get`; adding a workload is one
:func:`register` call -- no scenario/CLI/analysis edits::

    from repro.workloads.registry import (
        ResourceProfile, WorkloadSpec, register)

    def _server(params):
        from myproject.widget import WidgetServer
        return lambda guest: WidgetServer(guest, **params)

    def _driver(client_node, target, tenant, params):
        from myproject.widget import WidgetClient
        return WidgetClient(client_node, target,
                            rate=tenant.request_rate)

    register(WorkloadSpec(
        name="widget", server=_server, driver=_driver,
        profile=ResourceProfile(cpu=0.5, disk=0.2, net=0.3),
        defaults={"widgets": 16}, ports=(7777,),
        description="widget service"))

Server/driver factories import their implementation modules lazily so
importing the registry (and hence the spec layer) stays cheap.

Driver scope: ``scope="vm"`` workloads get one driver per (VM, client
slot), each targeting that VM -- the historical contract, and the
byte-identical one for the pre-registry workloads.  ``scope="tenant"``
workloads get one driver per client slot *per tenant*, receiving the
full ordered list of the tenant's VM addresses (the erasure-coded
storage tenant fans one logical object out across all of them).
"""

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "ResourceProfile",
    "UnknownWorkloadError",
    "WorkloadSpec",
    "get",
    "names",
    "register",
    "unknown_workload_message",
]


class UnknownWorkloadError(KeyError):
    """No registered workload matches the requested name."""

    def __str__(self) -> str:       # KeyError quotes its arg; don't
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class ResourceProfile:
    """Declared cpu/disk/net demand weights for one workload.

    Weights are relative (any non-negative scale); :meth:`normalized`
    maps them onto the unit simplex for cross-workload comparison and
    :meth:`dominant` names the heaviest axis -- what the placement
    utilisation report aggregates per host.
    """

    cpu: float = 1.0
    disk: float = 0.0
    net: float = 0.0

    def __post_init__(self) -> None:
        if min(self.cpu, self.disk, self.net) < 0:
            raise ValueError(f"negative resource weight in {self}")
        if self.cpu + self.disk + self.net <= 0:
            raise ValueError("resource profile needs a positive weight")

    def normalized(self) -> Tuple[float, float, float]:
        total = self.cpu + self.disk + self.net
        return (self.cpu / total, self.disk / total, self.net / total)

    def dominant(self) -> str:
        cpu, disk, net = self.normalized()
        best = max(cpu, disk, net)
        for name, value in (("cpu", cpu), ("disk", disk), ("net", net)):
            if value == best:
                return name
        return "cpu"            # pragma: no cover - unreachable

    def as_dict(self) -> Dict[str, float]:
        return {"cpu": self.cpu, "disk": self.disk, "net": self.net}


@dataclass(frozen=True)
class WorkloadSpec:
    """One deployable workload: factories, params, resource profile.

    ``server(params)`` returns the per-replica guest factory
    (``factory(guest) -> workload`` with a ``start()`` method);
    ``driver(client_node, target, tenant, params)`` returns a client
    load driver (``start()``/``stop()``); ``target`` is one VM address
    for ``scope="vm"`` and the ordered list of the tenant's VM
    addresses for ``scope="tenant"``.  ``defaults`` enumerates every
    recognised ``workload_params`` key with its default; unknown keys
    are rejected at spec-validation time.  ``check(tenant)`` may return
    an error string for workload-specific tenant constraints.
    """

    name: str
    server: Callable[[Dict[str, Any]], Callable]
    profile: ResourceProfile
    driver: Optional[Callable] = None
    defaults: Mapping[str, Any] = field(default_factory=dict)
    ports: Tuple[int, ...] = ()
    scope: str = "vm"
    description: str = ""
    check: Optional[Callable[[Any], Optional[str]]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload spec needs a name")
        if self.scope not in ("vm", "tenant"):
            raise ValueError(
                f"workload {self.name!r}: scope must be 'vm' or "
                f"'tenant', got {self.scope!r}")

    def params_for(self, overrides: Optional[Mapping[str, Any]] = None
                   ) -> Dict[str, Any]:
        """Defaults merged with ``overrides``; unknown keys raise."""
        params = dict(self.defaults)
        if overrides:
            unknown = sorted(set(overrides) - set(self.defaults))
            if unknown:
                raise ValueError(
                    f"workload {self.name!r}: unknown workload_params "
                    f"{unknown}; recognised: {sorted(self.defaults)}")
            params.update(overrides)
        return params

    def make_server(self, params: Dict[str, Any]) -> Callable:
        return self.server(params)

    def make_driver(self, client_node, target, tenant,
                    params: Dict[str, Any]):
        if self.driver is None:
            raise ValueError(
                f"workload {self.name!r} has no client driver; "
                f"set clients = 0")
        return self.driver(client_node, target, tenant, params)


_REGISTRY: Dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec, replace: bool = False) -> WorkloadSpec:
    """Add ``spec`` under its name; re-registration needs ``replace``."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"workload {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def names() -> List[str]:
    """Registered workload names, sorted."""
    return sorted(_REGISTRY)


def unknown_workload_message(name: str) -> str:
    """Diagnostic for an unknown workload: sorted names + best guess."""
    registered = names()
    message = (f"unknown workload {name!r}; "
               f"registered workloads: {', '.join(registered)}")
    close = difflib.get_close_matches(name, registered, n=1)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    return message


def get(name: str) -> WorkloadSpec:
    """The spec registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownWorkloadError(unknown_workload_message(name)) \
            from None


# ---------------------------------------------------------------------------
# built-in registrations
# ---------------------------------------------------------------------------
# The echo/fileserver/nfs factories reproduce the constructions the
# scenario layer used before the registry existed, byte-for-byte: same
# classes, same argument values drawn from the same TenantSpec fields,
# so pre-registry scenarios keep their pinned egress signatures.

def _echo_server(params):
    from repro.workloads.echo import EchoServer
    return lambda guest: EchoServer(guest, **params)


def _echo_driver(client_node, target, tenant, params):
    from repro.workloads.echo import PingClient
    return PingClient(client_node, target,
                      mean_interval=1.0 / tenant.request_rate,
                      timeout=tenant.request_timeout,
                      max_retries=tenant.max_retries,
                      backoff_base=tenant.backoff_base)


def _fileserver_server(params):
    from repro.workloads.fileserver import FileServer
    return lambda guest: FileServer(guest, **params)


def _fileserver_driver(client_node, target, tenant, params):
    from repro.workloads.fileserver import DownloadLoop
    return DownloadLoop(client_node, target, tenant.file_bytes,
                        timeout=tenant.request_timeout,
                        max_retries=tenant.max_retries,
                        backoff_base=tenant.backoff_base)


def _udp_file_server(params):
    from repro.workloads.fileserver import UdpFileServer
    return lambda guest: UdpFileServer(guest, **params)


def _udp_file_driver(client_node, target, tenant, params):
    from repro.workloads.fileserver import UdpDownloadLoop
    return UdpDownloadLoop(client_node, target, tenant.file_bytes)


def _nfs_server(params):
    from repro.workloads.nfs import NfsServer
    return lambda guest: NfsServer(guest, **params)


def _nfs_driver(client_node, target, tenant, params):
    from repro.workloads.nfs import NhfsstoneClient
    return NhfsstoneClient(client_node, target,
                           rate=tenant.request_rate)


def _parsec_server(kernel: str):
    def server(params):
        from repro.workloads.parsec import PARSEC_KERNELS
        cls = PARSEC_KERNELS[kernel]
        return lambda guest: cls(guest, **params)
    return server


def _parsec_check(tenant) -> Optional[str]:
    if tenant.clients:
        return ("parsec kernels are batch compute jobs; "
                "set clients = 0")
    return None


def _storage_server(params):
    from repro.workloads.storage import ShareServer
    kwargs = {key: params[key] for key in
              ("write_compute", "read_compute") if key in params}
    return lambda guest: ShareServer(guest, **kwargs)


def _storage_driver(client_node, targets, tenant, params):
    from repro.workloads.storage import StorageLoop
    return StorageLoop(client_node, list(targets),
                       k=params["k"], n=params["n"],
                       object_size=params["object_size"],
                       objects=params["objects"],
                       timeout=params["request_timeout"],
                       max_retries=tenant.max_retries)


def _storage_check(tenant) -> Optional[str]:
    params = get("storage").params_for(tenant.workload_params)
    k, n = params["k"], params["n"]
    if not 1 <= k <= n:
        return f"storage needs 1 <= k <= n, got k={k} n={n}"
    if n != tenant.count:
        return (f"storage stripes one share per VM: n={n} "
                f"requires count = {n}, got count={tenant.count}")
    if params["object_size"] < 1:
        return f"object_size must be >= 1, got {params['object_size']}"
    if params["objects"] < 1:
        return f"objects must be >= 1, got {params['objects']}"
    return None


def _register_builtins() -> None:
    register(WorkloadSpec(
        name="echo", server=_echo_server, driver=_echo_driver,
        profile=ResourceProfile(cpu=0.6, disk=0.0, net=0.4),
        defaults={"compute_branches": 20000}, ports=(7,),
        description="UDP echo responder + paced ping client"))
    register(WorkloadSpec(
        name="fileserver", server=_fileserver_server,
        driver=_fileserver_driver,
        profile=ResourceProfile(cpu=0.3, disk=0.4, net=0.3),
        defaults={"request_compute": 30000, "chunk_compute": 8000},
        ports=(80,),
        description="HTTP-style file download over TCP (Fig. 5)"))
    register(WorkloadSpec(
        name="udp-file", server=_udp_file_server,
        driver=_udp_file_driver,
        profile=ResourceProfile(cpu=0.2, disk=0.4, net=0.4),
        defaults={"pace_bps": 80e6, "request_compute": 30000},
        ports=(6000,),
        description="NAK-reliable paced UDP file service (Fig. 5)"))
    register(WorkloadSpec(
        name="nfs", server=_nfs_server, driver=_nfs_driver,
        profile=ResourceProfile(cpu=0.35, disk=0.45, net=0.2),
        defaults={"filesystem": False, "cache_blocks": 2048},
        ports=(2049,),
        description="NFS server + nhfsstone load generator (Fig. 6)"))
    parsec_profiles = {
        "ferret": ResourceProfile(cpu=0.8, disk=0.1, net=0.1),
        "blackscholes": ResourceProfile(cpu=0.9, disk=0.05, net=0.05),
        "canneal": ResourceProfile(cpu=0.7, disk=0.2, net=0.1),
        "dedup": ResourceProfile(cpu=0.5, disk=0.4, net=0.1),
        "streamcluster": ResourceProfile(cpu=0.75, disk=0.15, net=0.1),
    }
    for kernel, profile in parsec_profiles.items():
        register(WorkloadSpec(
            name=f"parsec.{kernel}", server=_parsec_server(kernel),
            profile=profile, defaults={"scale": 1.0},
            check=_parsec_check,
            description=f"PARSEC {kernel} compute kernel (Fig. 7)"))
    register(WorkloadSpec(
        name="storage", server=_storage_server,
        driver=_storage_driver,
        profile=ResourceProfile(cpu=0.1, disk=0.6, net=0.3),
        defaults={"k": 2, "n": 3, "object_size": 8192, "objects": 3,
                  "request_timeout": 1.0, "write_compute": 12000,
                  "read_compute": 8000},
        ports=(7400,), scope="tenant", check=_storage_check,
        description="k-of-n erasure-coded object store, one share "
                    "per VM"))


_register_builtins()
