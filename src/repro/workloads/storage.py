"""Erasure-coded object storage tenant: k-of-n shares, one per VM.

The maximally disk-interrupt-heavy workload -- where StopWatch's Fig. 7
says replication overhead concentrates.  An object is striped through a
systematic k-of-n code (:class:`ErasureCodec`): ``k`` data shares plus
``n - k`` parity shares, one share per tenant VM, so any ``k`` of the
``n`` VMs reconstruct the object.  Placement anti-affinity
(Sec. VIII) guarantees the share-holding VMs sit on distinct host
triangles, so a single machine failure never strands more shares than
the code tolerates.

Pieces:

- :class:`ErasureCodec` -- pure-Python systematic code: single XOR
  parity for ``n == k + 1`` (the zfec fast path), Cauchy-matrix
  Reed-Solomon over GF(256) for deeper parity.  Any ``k`` distinct
  shares decode; short or wrong-length shares raise
  :class:`CodecError`; per-share digests catch corruption.
- :class:`ShareServer` -- the guest workload.  Speaks a chunked UDP
  protocol (PUT/GET of one share), paying guest compute + disk I/O for
  every share touched, so the whole exchange crosses the mediated
  ingress/egress pipeline and the replicas' virtual disks.
- :class:`StorageClient` -- client-side PUT/GET engine fanning one
  logical object out across the tenant's VM addresses (share ``i`` ->
  VM ``i``), with whole-operation timeout/retry.
- :class:`StorageLoop` -- the scenario driver (``scope="tenant"``):
  a closed PUT-then-GET-and-verify loop over a rotating object set,
  exposing the ``sent``/``reply_times`` counters the chaos invariant
  gates check.
- :class:`RepairDaemon` -- subscribes to the fabric's replica
  suspicion/heal hooks; when a share-holding VM degrades it
  reconstructs that VM's share from ``k`` healthy peers and writes it
  back through the mediated fabric, metering ``repaired_bytes``.
"""

import hashlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.udp import UdpStack
from repro.workloads.base import GuestWorkload

__all__ = [
    "CodecError",
    "ErasureCodec",
    "RepairDaemon",
    "ShareServer",
    "StorageClient",
    "StorageLoop",
    "share_digest",
    "STORAGE_PORT",
]

STORAGE_PORT = 7400
#: application chunk kept under the no-fragmentation UDP MTU
STORAGE_CHUNK = 1400
#: virtual disk block size the share server reads/writes in
DISK_BLOCK = 4096


class CodecError(ValueError):
    """Invalid codec parameters or undecodable share set."""


# ---------------------------------------------------------------------------
# GF(256) arithmetic (polynomial 0x11d, the Reed-Solomon standard)
# ---------------------------------------------------------------------------
_GF_EXP = [0] * 512
_GF_LOG = [0] * 256


def _build_tables() -> None:
    value = 1
    for power in range(255):
        _GF_EXP[power] = value
        _GF_LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= 0x11d
    for power in range(255, 512):
        _GF_EXP[power] = _GF_EXP[power - 255]


_build_tables()


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + _GF_LOG[b]]


def _gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("GF(256) inverse of 0")
    return _GF_EXP[255 - _GF_LOG[a]]


def _gf_matmul_row(row: Sequence[int], columns: Sequence[bytes],
                   length: int) -> bytes:
    """One output share: ``sum_i row[i] * columns[i]`` bytewise."""
    out = bytearray(length)
    for coeff, column in zip(row, columns):
        if coeff == 0:
            continue
        if coeff == 1:
            for index in range(length):
                out[index] ^= column[index]
        else:
            log_c = _GF_LOG[coeff]
            for index in range(length):
                byte = column[index]
                if byte:
                    out[index] ^= _GF_EXP[log_c + _GF_LOG[byte]]
    return bytes(out)


def _gf_invert(matrix: List[List[int]]) -> List[List[int]]:
    """Gauss-Jordan inverse of a k x k matrix over GF(256)."""
    size = len(matrix)
    work = [list(row) + [1 if i == j else 0 for j in range(size)]
            for i, row in enumerate(matrix)]
    for col in range(size):
        pivot = next((r for r in range(col, size) if work[r][col]), None)
        if pivot is None:
            raise CodecError("singular decode matrix (duplicate shares?)")
        work[col], work[pivot] = work[pivot], work[col]
        inv = _gf_inv(work[col][col])
        work[col] = [_gf_mul(value, inv) for value in work[col]]
        for row in range(size):
            if row == col or not work[row][col]:
                continue
            factor = work[row][col]
            work[row] = [value ^ _gf_mul(factor, pivot_value)
                         for value, pivot_value
                         in zip(work[row], work[col])]
    return [row[size:] for row in work]


def share_digest(share: bytes) -> str:
    """Short content digest used to reject corrupted shares."""
    return hashlib.sha256(share).hexdigest()[:16]


class ErasureCodec:
    """Systematic k-of-n erasure code over GF(256).

    Shares ``0..k-1`` are the data stripes verbatim; shares ``k..n-1``
    are parity.  ``n == k + 1`` uses plain XOR parity; deeper codes use
    a Cauchy parity matrix, so *any* ``k`` distinct shares decode (the
    MDS property, inherited from every Cauchy submatrix being
    nonsingular).
    """

    def __init__(self, k: int, n: int):
        if not 1 <= k <= n:
            raise CodecError(f"need 1 <= k <= n, got k={k} n={n}")
        if n > 128:
            raise CodecError(f"n must be <= 128, got {n}")
        self.k = k
        self.n = n
        # parity rows: Cauchy matrix 1/(x_j + y_i), x and y disjoint
        self._parity_rows: List[List[int]] = [
            [_gf_inv((self.k + j) ^ i) for i in range(k)]
            for j in range(n - k)]

    def share_size(self, size: int) -> int:
        """Bytes per share for a ``size``-byte object."""
        if size < 0:
            raise CodecError(f"negative object size: {size}")
        return -(-size // self.k)        # ceil; 0 for the empty object

    def _row(self, index: int) -> List[int]:
        if index < self.k:
            return [1 if i == index else 0 for i in range(self.k)]
        if self.n == self.k + 1:
            return [1] * self.k          # XOR parity fast path
        return self._parity_rows[index - self.k]

    def encode(self, data: bytes) -> List[bytes]:
        """``n`` shares for ``data`` (padded up to a stripe multiple)."""
        stripe = self.share_size(len(data))
        padded = data.ljust(self.k * stripe, b"\0")
        stripes = [padded[i * stripe:(i + 1) * stripe]
                   for i in range(self.k)]
        shares = list(stripes)
        for index in range(self.k, self.n):
            shares.append(_gf_matmul_row(self._row(index), stripes,
                                         stripe))
        return shares

    def decode(self, shares: Dict[int, bytes], size: int,
               digests: Optional[Sequence[str]] = None) -> bytes:
        """Reconstruct the ``size``-byte object from >= k shares.

        ``shares`` maps share index -> share bytes.  With ``digests``
        (the per-index digests recorded at encode time) corrupted
        shares are rejected before they can poison the decode.
        """
        stripe = self.share_size(size)
        usable: Dict[int, bytes] = {}
        for index in sorted(shares):
            share = shares[index]
            if not 0 <= index < self.n:
                raise CodecError(f"share index {index} outside 0..{self.n - 1}")
            if len(share) != stripe:
                raise CodecError(
                    f"share {index}: {len(share)} bytes, expected "
                    f"{stripe} (short or truncated share)")
            if digests is not None \
                    and share_digest(share) != digests[index]:
                raise CodecError(f"share {index}: digest mismatch "
                                 f"(corrupt share)")
            usable[index] = share
        if len(usable) < self.k:
            raise CodecError(
                f"need {self.k} shares to decode, got {len(usable)}")
        picked = sorted(usable)[:self.k]
        if stripe == 0:
            return b""
        if picked == list(range(self.k)):
            stripes = [usable[i] for i in picked]     # systematic case
        else:
            matrix = [self._row(index) for index in picked]
            inverse = _gf_invert(matrix)
            columns = [usable[index] for index in picked]
            stripes = [_gf_matmul_row(row, columns, stripe)
                       for row in inverse]
        return b"".join(stripes)[:size]


# ---------------------------------------------------------------------------
# guest-side share server
# ---------------------------------------------------------------------------
class ShareServer(GuestWorkload):
    """Holds erasure-code shares; speaks chunked UDP PUT/GET.

    Wire protocol (datagram tags; ``data_len`` models the wire cost):

    - ``("PUT", obj, idx, req, seq, nchunks, chunk)`` -- one share
      chunk.  When the last chunk lands the server pays
      ``write_compute`` guest branches plus a ``disk_write`` of the
      share, then acks ``("PUT-OK", obj, idx, req)``.
    - ``("GET", obj, req)`` -- pays ``read_compute`` branches plus a
      ``disk_read``, then streams ``("GET-DATA", obj, idx, req, seq,
      nchunks, chunk)``; ``("GET-MISS", obj, req)`` if absent.

    Chunks carry their own sequence numbers, so reassembly tolerates
    reordering; a lost chunk surfaces as a client-side timeout and a
    whole-request retry (new request id).
    """

    def __init__(self, guest, port: int = STORAGE_PORT,
                 write_compute: int = 12000, read_compute: int = 8000):
        super().__init__(guest)
        self.port = port
        self.write_compute = write_compute
        self.read_compute = read_compute
        self.udp = UdpStack(guest)
        #: object id -> (share index, share bytes)
        self.shares: Dict[str, Tuple[int, bytes]] = {}
        self.puts_served = 0
        self.gets_served = 0
        self.misses = 0
        self._assembling: Dict[tuple, Dict[int, bytes]] = {}

    def start(self) -> None:
        self.udp.bind(self.port, self._on_datagram)

    @property
    def bytes_stored(self) -> int:
        return sum(len(share) for _, share in self.shares.values())

    def _on_datagram(self, datagram, src: str) -> None:
        tag = datagram.tag
        if not isinstance(tag, tuple) or not tag:
            return
        if tag[0] == "PUT":
            self._on_put_chunk(tag, datagram.src_port, src)
        elif tag[0] == "GET":
            self._on_get(tag, datagram.src_port, src)

    # -- PUT ----------------------------------------------------------
    def _on_put_chunk(self, tag, src_port: int, src: str) -> None:
        _, obj, index, req, seq, nchunks, chunk = tag
        key = (src, src_port, obj, index, req)
        parts = self._assembling.setdefault(key, {})
        parts[seq] = chunk
        if len(parts) < nchunks:
            return
        del self._assembling[key]
        share = b"".join(parts[i] for i in range(nchunks))
        self.guest.compute(self.write_compute, self._write_share,
                           obj, index, req, share, src, src_port)

    def _write_share(self, obj: str, index: int, req: int,
                     share: bytes, src: str, src_port: int) -> None:
        blocks = max(1, -(-len(share) // DISK_BLOCK))
        self.guest.disk_write(blocks, self._share_written,
                              obj, index, req, share, src, src_port)

    def _share_written(self, obj: str, index: int, req: int,
                       share: bytes, src: str, src_port: int) -> None:
        self.shares[obj] = (index, share)
        self.puts_served += 1
        self.udp.send(src, self.port, src_port, data_len=16,
                      tag=("PUT-OK", obj, index, req))

    # -- GET ----------------------------------------------------------
    def _on_get(self, tag, src_port: int, src: str) -> None:
        _, obj, req = tag
        held = self.shares.get(obj)
        if held is None:
            self.misses += 1
            self.udp.send(src, self.port, src_port, data_len=16,
                          tag=("GET-MISS", obj, req))
            return
        self.guest.compute(self.read_compute, self._read_share,
                           obj, req, src, src_port)

    def _read_share(self, obj: str, req: int, src: str,
                    src_port: int) -> None:
        held = self.shares.get(obj)
        if held is None:                 # evicted while computing
            self.udp.send(src, self.port, src_port, data_len=16,
                          tag=("GET-MISS", obj, req))
            return
        index, share = held
        blocks = max(1, -(-len(share) // DISK_BLOCK))
        self.guest.disk_read(blocks, self._stream_share,
                             obj, index, req, share, src, src_port)

    def _stream_share(self, obj: str, index: int, req: int,
                      share: bytes, src: str, src_port: int) -> None:
        self.gets_served += 1
        chunks = _chunked(share)
        for seq, chunk in enumerate(chunks):
            self.udp.send(src, self.port, src_port,
                          data_len=max(1, len(chunk)),
                          tag=("GET-DATA", obj, index, req, seq,
                               len(chunks), chunk))


def _chunked(share: bytes) -> List[bytes]:
    """Share bytes split into <= MTU chunks; empty share -> one
    zero-length chunk so the transfer still completes."""
    if not share:
        return [b""]
    return [share[i:i + STORAGE_CHUNK]
            for i in range(0, len(share), STORAGE_CHUNK)]


# ---------------------------------------------------------------------------
# client-side engine
# ---------------------------------------------------------------------------
class StorageClient:
    """PUT/GET engine for one tenant's share servers.

    ``targets`` is the ordered list of the tenant's VM addresses; share
    ``i`` always lives on ``targets[i]``.  Operations carry a
    whole-operation timeout: on expiry the missing per-share exchanges
    are retried under a fresh request id, up to ``max_retries`` times,
    then the operation fails.  The client keeps a directory of every
    object it stored (size + per-share digests) so reads verify
    integrity end-to-end and the repair daemon knows what to rebuild.
    """

    def __init__(self, client_node, targets: Sequence[str], k: int,
                 n: int, local_port: int = 9500,
                 timeout: Optional[float] = 1.0, max_retries: int = 3):
        if len(targets) != n:
            raise CodecError(
                f"{n} shares need {n} targets, got {len(targets)}")
        self.node = client_node
        self.targets = list(targets)
        self.codec = ErasureCodec(k, n)
        self.local_port = local_port
        self.timeout = timeout
        self.max_retries = max_retries
        self.udp = UdpStack(client_node)
        self.udp.bind(local_port, self._on_datagram)
        #: object id -> {"size", "digests"} for every completed PUT
        self.directory: Dict[str, Dict[str, Any]] = {}
        self.puts_completed = 0
        self.gets_completed = 0
        self.failures = 0
        self.retries = 0
        self.bytes_put = 0
        self.bytes_got = 0
        self._next_req = 0
        self._ops: Dict[int, dict] = {}      # req id -> operation state
        self._req_op: Dict[int, int] = {}    # wire req id -> op id

    # -- operations ---------------------------------------------------
    def put_object(self, obj: str, data: bytes,
                   on_done: Optional[Callable] = None,
                   on_fail: Optional[Callable] = None,
                   only_index: Optional[int] = None) -> None:
        """Encode ``data`` and fan the shares out (share i -> VM i).

        ``only_index`` restricts the fan-out to one share -- the repair
        daemon's write-back path.
        """
        shares = self.codec.encode(data)
        digests = [share_digest(share) for share in shares]
        indices = ([only_index] if only_index is not None
                   else list(range(self.codec.n)))
        op = {"kind": "put", "obj": obj, "attempt": 0,
              "shares": shares, "digests": digests, "size": len(data),
              "pending": set(indices), "on_done": on_done,
              "on_fail": on_fail, "timer": None}
        op_id = self._new_op(op)
        self._put_round(op_id)

    def get_object(self, obj: str,
                   on_done: Optional[Callable] = None,
                   on_fail: Optional[Callable] = None,
                   exclude: Sequence[int] = ()) -> None:
        """Fetch >= k shares and decode; verifies recorded digests.

        ``exclude`` masks share indices believed lost; the first round
        asks the ``k`` lowest-indexed remaining VMs, retries widen to
        every remaining VM.
        """
        entry = self.directory.get(obj)
        if entry is None:
            self._fail_now(on_fail, obj)
            return
        op = {"kind": "get", "obj": obj, "attempt": 0,
              "size": entry["size"], "digests": entry["digests"],
              "exclude": set(exclude), "got": {},
              "on_done": on_done, "on_fail": on_fail, "timer": None,
              "chunks": {}}
        op_id = self._new_op(op)
        self._get_round(op_id)

    # -- shared plumbing ----------------------------------------------
    def _new_op(self, op: dict) -> int:
        op_id = self._next_req
        self._next_req += 1
        self._ops[op_id] = op
        return op_id

    def _wire_req(self, op_id: int) -> int:
        req = self._next_req
        self._next_req += 1
        self._req_op[req] = op_id
        return req

    def _arm_timer(self, op_id: int) -> None:
        op = self._ops[op_id]
        if self.timeout is None:
            return
        if op["timer"] is not None:
            op["timer"].cancel()
        op["timer"] = self.node.schedule(self.timeout, self._on_timeout,
                                         op_id)
    def _fail_now(self, on_fail: Optional[Callable], obj: str) -> None:
        self.failures += 1
        if on_fail is not None:
            on_fail(obj)

    def _finish(self, op_id: int, ok: bool, *result) -> None:
        op = self._ops.pop(op_id, None)
        if op is None:
            return
        if op["timer"] is not None:
            op["timer"].cancel()
        stale = [req for req, owner in self._req_op.items()
                 if owner == op_id]
        for req in stale:
            del self._req_op[req]
        if ok:
            callback = op["on_done"]
            if callback is not None:
                callback(*result)
        else:
            self._fail_now(op["on_fail"], op["obj"])

    def _on_timeout(self, op_id: int) -> None:
        op = self._ops.get(op_id)
        if op is None:
            return
        op["timer"] = None
        if op["attempt"] >= self.max_retries:
            self._finish(op_id, False)
            return
        op["attempt"] += 1
        self.retries += 1
        if op["kind"] == "put":
            self._put_round(op_id)
        else:
            self._get_round(op_id)

    # -- PUT rounds ---------------------------------------------------
    def _put_round(self, op_id: int) -> None:
        op = self._ops[op_id]
        req = self._wire_req(op_id)
        op["round_req"] = req
        for index in sorted(op["pending"]):
            share = op["shares"][index]
            chunks = _chunked(share)
            for seq, chunk in enumerate(chunks):
                self.udp.send(self.targets[index], self.local_port,
                              STORAGE_PORT,
                              data_len=max(1, len(chunk)),
                              tag=("PUT", op["obj"], index, req, seq,
                                   len(chunks), chunk))
        self._arm_timer(op_id)

    def _on_put_ok(self, op_id: int, tag) -> None:
        op = self._ops.get(op_id)
        if op is None or op["kind"] != "put":
            return
        _, obj, index, req = tag
        if req != op.get("round_req"):
            return                        # stale ack from an old round
        op["pending"].discard(index)
        if op["pending"]:
            return
        self.puts_completed += 1
        self.bytes_put += op["size"]
        self.directory[op["obj"]] = {"size": op["size"],
                                     "digests": op["digests"]}
        self._finish(op_id, True, op["obj"])

    # -- GET rounds ---------------------------------------------------
    def _get_round(self, op_id: int) -> None:
        op = self._ops[op_id]
        req = self._wire_req(op_id)
        op["round_req"] = req
        candidates = [i for i in range(self.codec.n)
                      if i not in op["exclude"] and i not in op["got"]]
        if op["attempt"] == 0:
            need = self.codec.k - len(op["got"])
            candidates = candidates[:need]
        for index in candidates:
            self.udp.send(self.targets[index], self.local_port,
                          STORAGE_PORT, data_len=16,
                          tag=("GET", op["obj"], req))
        self._arm_timer(op_id)

    def _on_get_data(self, op_id: int, tag) -> None:
        op = self._ops.get(op_id)
        if op is None or op["kind"] != "get":
            return
        _, obj, index, req, seq, nchunks, chunk = tag
        if index in op["got"]:
            return
        parts = op["chunks"].setdefault(index, {})
        parts[seq] = chunk
        if len(parts) < nchunks:
            return
        share = b"".join(parts[i] for i in range(nchunks))
        del op["chunks"][index]
        if share_digest(share) != op["digests"][index]:
            op["exclude"].add(index)     # corrupt share: never re-ask
            return
        op["got"][index] = share
        if len(op["got"]) < self.codec.k:
            return
        try:
            data = self.codec.decode(op["got"], op["size"],
                                     digests=op["digests"])
        except CodecError:
            self._finish(op_id, False)
            return
        self.gets_completed += 1
        self.bytes_got += op["size"]
        self._finish(op_id, True, data)

    def _on_datagram(self, datagram, src: str) -> None:
        tag = datagram.tag
        if not isinstance(tag, tuple) or not tag:
            return
        if tag[0] == "PUT-OK":
            req = tag[3]
        elif tag[0] in ("GET-DATA", "GET-MISS"):
            req = tag[3] if tag[0] == "GET-DATA" else tag[2]
        else:
            return
        op_id = self._req_op.get(req)
        if op_id is None:
            return
        if tag[0] == "PUT-OK":
            self._on_put_ok(op_id, tag)
        elif tag[0] == "GET-DATA":
            self._on_get_data(op_id, tag)
        # GET-MISS: leave it to the round timeout, which widens the ask


# ---------------------------------------------------------------------------
# the scenario driver
# ---------------------------------------------------------------------------
class StorageLoop:
    """Closed-loop storage client: PUT object, GET it back, verify.

    Deterministic payload generation (object id + a seeded stream
    cipher of sorts -- SHA-256 counter mode over the object id) keeps
    the loop byte-reproducible without drawing client RNG.  Exposes the
    ``sent``/``reply_times`` counters the chaos invariant gates expect
    from every load driver.
    """

    def __init__(self, client_node, targets: Sequence[str], k: int,
                 n: int, object_size: int, objects: int = 3,
                 local_port: int = 9500, timeout: Optional[float] = 1.0,
                 max_retries: int = 3):
        self.node = client_node
        self.client = StorageClient(client_node, targets, k, n,
                                    local_port=local_port,
                                    timeout=timeout,
                                    max_retries=max_retries)
        self.object_size = object_size
        self.objects = objects
        self.sent = 0
        self.reply_times: List[float] = []
        self.verify_failures = 0
        self.failed = 0
        self._cycle = 0
        self._running = False

    # the invariant gates read driver.retries for the retry tally
    @property
    def retries(self) -> int:
        return self.client.retries

    def object_id(self, cycle: int) -> str:
        return f"obj-{cycle % self.objects}"

    def payload(self, cycle: int) -> bytes:
        return deterministic_payload(self.object_id(cycle),
                                     self.object_size)

    def start(self) -> None:
        self._running = True
        self._next()

    def stop(self) -> None:
        self._running = False

    def _next(self) -> None:
        if not self._running:
            return
        cycle = self._cycle
        self._cycle += 1
        self.sent += 1
        self.client.put_object(self.object_id(cycle),
                               self.payload(cycle),
                               on_done=lambda obj, c=cycle:
                               self._on_put(c),
                               on_fail=lambda obj: self._on_fail())

    def _on_put(self, cycle: int) -> None:
        if not self._running:
            return
        self.sent += 1
        self.client.get_object(self.object_id(cycle),
                               on_done=lambda data, c=cycle:
                               self._on_get(c, data),
                               on_fail=lambda obj: self._on_fail())

    def _on_get(self, cycle: int, data: bytes) -> None:
        self.reply_times.append(self.node.now())
        if data != self.payload(cycle):
            self.verify_failures += 1
        self._next()

    def _on_fail(self) -> None:
        self.failed += 1
        self._next()


def deterministic_payload(obj: str, size: int) -> bytes:
    """``size`` reproducible bytes derived from the object id."""
    out = bytearray()
    counter = 0
    while len(out) < size:
        out += hashlib.sha256(f"{obj}:{counter}".encode()).digest()
        counter += 1
    return bytes(out[:size])


# ---------------------------------------------------------------------------
# the repair daemon
# ---------------------------------------------------------------------------
class RepairDaemon:
    """Reconstructs a degraded VM's share across the mediated fabric.

    Wired into the fabric's replica-event fan-out
    (:meth:`repro.cloud.fabric.Cloud.add_replica_listener`) and -- when
    a healer is armed -- :attr:`EvacuationController.on_complete`.
    When any replica of a share-holding VM is suspected, the daemon
    waits ``confirm_delay`` (an in-place restart usually wins), then
    for every object in the client directory: GETs ``k`` shares from
    the *other* VMs, decodes, re-encodes the lost index, and PUTs that
    share back to the degraded VM through ingress replication --
    restoring ``n`` live shares and metering ``repaired_bytes``.
    """

    def __init__(self, cloud, client_node, targets: Sequence[str],
                 directory_client: StorageClient, k: int, n: int,
                 confirm_delay: float = 0.25, local_port: int = 9600,
                 timeout: Optional[float] = 1.0, max_retries: int = 3):
        self.cloud = cloud
        self.sim = cloud.sim
        self.targets = list(targets)
        self.source = directory_client
        self.client = StorageClient(client_node, targets, k, n,
                                    local_port=local_port,
                                    timeout=timeout,
                                    max_retries=max_retries)
        self.confirm_delay = confirm_delay
        self.repairs_started = 0
        self.repairs_completed = 0
        self.repaired_bytes = 0
        self.repair_failures = 0
        self.heal_completions = 0
        self._pending: set = set()       # vm indices queued/repairing

    def attach(self) -> "RepairDaemon":
        """Subscribe to suspicion events (and heal completions)."""
        self.cloud.add_replica_listener(self._on_replica_event)
        if self.cloud.healer is not None \
                and hasattr(self.cloud.healer, "on_complete"):
            self.cloud.healer.on_complete.append(self._on_heal_complete)
        return self

    # -- event hooks --------------------------------------------------
    def _on_replica_event(self, vm_name: str, replica_id: int,
                          up: bool) -> None:
        if up or vm_name not in self._vm_names():
            return
        index = self._vm_names().index(vm_name)
        if index in self._pending:
            return
        self._pending.add(index)
        self.sim.trace.record(self.sim.now, "storage.repair.suspect",
                              vm=vm_name, replica=replica_id,
                              share=index)
        self.sim.call_after(self.confirm_delay, self._start_repair,
                            index)

    def _on_heal_complete(self, vm_name: str, replica_id: int,
                          mode: str) -> None:
        if vm_name in self._vm_names():
            self.heal_completions += 1

    def _vm_names(self) -> List[str]:
        return [target.split(":", 1)[1] for target in self.targets]

    # -- the repair pipeline ------------------------------------------
    def _start_repair(self, index: int) -> None:
        objects = sorted(self.source.directory)
        self.repairs_started += 1
        self.sim.trace.record(self.sim.now, "storage.repair.start",
                              share=index, objects=len(objects))
        # seed the repair client's directory from the uploader's view
        for obj in objects:
            self.client.directory[obj] = dict(
                self.source.directory[obj])
        self._repair_next(index, objects, 0)

    def _repair_next(self, index: int, objects: List[str],
                     cursor: int) -> None:
        if cursor >= len(objects):
            self._pending.discard(index)
            self.repairs_completed += 1
            self.sim.trace.record(self.sim.now,
                                  "storage.repair.complete",
                                  share=index, objects=len(objects),
                                  repaired_bytes=self.repaired_bytes)
            self.sim.metrics.incr("storage.repairs")
            return
        obj = objects[cursor]
        self.client.get_object(
            obj,
            on_done=lambda data: self._rebuild(index, objects, cursor,
                                               data),
            on_fail=lambda _obj: self._give_up(index, objects, cursor),
            exclude=(index,))

    def _rebuild(self, index: int, objects: List[str], cursor: int,
                 data: bytes) -> None:
        obj = objects[cursor]
        share = self.client.codec.encode(data)[index]
        self.client.put_object(
            obj, data,
            on_done=lambda _obj: self._share_restored(index, objects,
                                                      cursor, share),
            on_fail=lambda _obj: self._give_up(index, objects, cursor),
            only_index=index)

    def _share_restored(self, index: int, objects: List[str],
                        cursor: int, share: bytes) -> None:
        self.repaired_bytes += len(share)
        self.sim.metrics.incr("storage.repaired_bytes", len(share))
        self.sim.trace.record(self.sim.now, "storage.repair.share",
                              share=index, obj=objects[cursor],
                              bytes=len(share))
        self._repair_next(index, objects, cursor + 1)

    def _give_up(self, index: int, objects: List[str],
                 cursor: int) -> None:
        self._pending.discard(index)
        self.repair_failures += 1
        self.sim.trace.record(self.sim.now, "storage.repair.failed",
                              share=index, obj=objects[cursor])
