"""UDP echo service and a pinging client.

The attacker-side experiments (Fig. 4, covert channels) need a steady
stream of observable I/O events at a guest.  The classic setup: the
guest runs an echo responder; a colluding external client pings it; the
guest observes network-interrupt timings (its IO clock).
"""

from typing import Callable, List, Optional

from repro.net.udp import UdpStack
from repro.workloads.base import GuestWorkload

ECHO_PORT = 7


class EchoServer(GuestWorkload):
    """Echoes every datagram after a fixed compute cost.

    The guest-side observation hook ``on_request(virtual_time, tag)``
    lets an attacker workload timestamp its own network interrupts in
    virtual time -- the IO-clock measurements StopWatch mediates.
    """

    def __init__(self, guest, compute_branches: int = 20000,
                 on_request: Optional[Callable] = None):
        super().__init__(guest)
        self.compute_branches = compute_branches
        self.on_request = on_request
        self.udp = UdpStack(guest)
        self.request_virts: List[float] = []

    def start(self) -> None:
        self.udp.bind(ECHO_PORT, self._on_datagram)

    def _on_datagram(self, datagram, src: str) -> None:
        virt = self.guest.now()
        self.request_virts.append(virt)
        if self.on_request is not None:
            self.on_request(virt, datagram.tag)
        self.guest.compute(self.compute_branches, self._reply, src, datagram)

    def _reply(self, src: str, datagram) -> None:
        self.udp.send(src, ECHO_PORT, datagram.src_port,
                      datagram.data_len, tag=datagram.tag)

    def inter_arrival_virts(self) -> List[float]:
        """Virtual inter-packet delivery times (the Fig. 4 observable)."""
        times = self.request_virts
        return [b - a for a, b in zip(times, times[1:])]


class PingClient:
    """External client sending a paced datagram stream at a guest.

    ``spacing_fn(rng)`` draws each inter-ping gap (seconds); default is
    exponential with the given mean, matching the paper's modelling of
    packet inter-arrivals.

    Edge robustness (all opt-in; the default ``timeout=None`` schedules
    no timers and draws no randomness, so historical runs stay
    byte-identical): with a ``timeout`` each ping arms a per-tag timer;
    on expiry the same tag is retransmitted up to ``max_retries`` times
    with exponential backoff (``backoff_base * backoff_factor**attempt``)
    plus seeded jitter from the client node's RNG, so a partitioned-edge
    window degrades into late replies instead of silently lost flows.
    Duplicate replies (the original raced the retry) are counted, not
    double-recorded.
    """

    def __init__(self, client_node, target_addr: str,
                 mean_interval: float = 0.020,
                 spacing_fn: Optional[Callable] = None,
                 local_port: int = 9100,
                 timeout: Optional[float] = None,
                 max_retries: int = 3,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 jitter_frac: float = 0.25):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base <= 0 or backoff_factor < 1.0:
            raise ValueError("backoff_base must be > 0 and "
                             "backoff_factor >= 1")
        if not 0.0 <= jitter_frac <= 1.0:
            raise ValueError(f"jitter_frac must be in [0, 1], "
                             f"got {jitter_frac}")
        self.node = client_node
        self.target_addr = target_addr
        self.mean_interval = mean_interval
        self.spacing_fn = spacing_fn
        self.udp = UdpStack(client_node)
        self.udp.bind(local_port, self._on_reply)
        self.local_port = local_port
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.jitter_frac = jitter_frac
        self.sent = 0
        self.retries = 0
        self.timeouts = 0
        self.gave_up = 0
        self.duplicates = 0
        self.reply_times: List[float] = []
        self._outstanding: dict = {}    # tag -> timer handle
        self._running = False

    def start(self) -> None:
        self._running = True
        self._send_next()

    def stop(self) -> None:
        self._running = False
        for timer in self._outstanding.values():
            timer.cancel()
        self._outstanding.clear()

    @property
    def outstanding(self) -> int:
        """Pings awaiting a reply (only tracked with a timeout set)."""
        return len(self._outstanding)

    def _transmit(self, tag: int, attempt: int) -> None:
        self.udp.send(self.target_addr, self.local_port, ECHO_PORT,
                      data_len=64, tag=tag)
        if self.timeout is not None:
            self._outstanding[tag] = self.node.schedule(
                self.timeout, self._on_timeout, tag, attempt)

    def _send_next(self) -> None:
        if not self._running:
            return
        self._transmit(self.sent, 0)
        self.sent += 1
        if self.spacing_fn is not None:
            gap = self.spacing_fn(self.node.rng)
        else:
            gap = self.node.rng.expovariate(1.0 / self.mean_interval)
        self.node.schedule(gap, self._send_next)

    def _on_timeout(self, tag: int, attempt: int) -> None:
        if tag not in self._outstanding:
            return
        del self._outstanding[tag]
        self.timeouts += 1
        if not self._running:
            return
        if attempt >= self.max_retries:
            self.gave_up += 1
            return
        backoff = self.backoff_base * self.backoff_factor ** attempt
        if self.jitter_frac > 0.0:
            backoff *= 1.0 + self.jitter_frac * self.node.rng.random()
        self.retries += 1
        self.node.schedule(backoff, self._retransmit, tag, attempt + 1)

    def _retransmit(self, tag: int, attempt: int) -> None:
        if not self._running:
            return
        self._transmit(tag, attempt)

    def _on_reply(self, datagram, src: str) -> None:
        if self.timeout is None:
            self.reply_times.append(self.node.now())
            return
        timer = self._outstanding.pop(datagram.tag, None)
        if timer is None:
            self.duplicates += 1   # original raced a retry, or late reply
            return
        timer.cancel()
        self.reply_times.append(self.node.now())
