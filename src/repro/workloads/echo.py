"""UDP echo service and a pinging client.

The attacker-side experiments (Fig. 4, covert channels) need a steady
stream of observable I/O events at a guest.  The classic setup: the
guest runs an echo responder; a colluding external client pings it; the
guest observes network-interrupt timings (its IO clock).
"""

from typing import Callable, List, Optional

from repro.net.udp import UdpStack
from repro.workloads.base import GuestWorkload

ECHO_PORT = 7


class EchoServer(GuestWorkload):
    """Echoes every datagram after a fixed compute cost.

    The guest-side observation hook ``on_request(virtual_time, tag)``
    lets an attacker workload timestamp its own network interrupts in
    virtual time -- the IO-clock measurements StopWatch mediates.
    """

    def __init__(self, guest, compute_branches: int = 20000,
                 on_request: Optional[Callable] = None):
        super().__init__(guest)
        self.compute_branches = compute_branches
        self.on_request = on_request
        self.udp = UdpStack(guest)
        self.request_virts: List[float] = []

    def start(self) -> None:
        self.udp.bind(ECHO_PORT, self._on_datagram)

    def _on_datagram(self, datagram, src: str) -> None:
        virt = self.guest.now()
        self.request_virts.append(virt)
        if self.on_request is not None:
            self.on_request(virt, datagram.tag)
        self.guest.compute(self.compute_branches, self._reply, src, datagram)

    def _reply(self, src: str, datagram) -> None:
        self.udp.send(src, ECHO_PORT, datagram.src_port,
                      datagram.data_len, tag=datagram.tag)

    def inter_arrival_virts(self) -> List[float]:
        """Virtual inter-packet delivery times (the Fig. 4 observable)."""
        times = self.request_virts
        return [b - a for a, b in zip(times, times[1:])]


class PingClient:
    """External client sending a paced datagram stream at a guest.

    ``spacing_fn(rng)`` draws each inter-ping gap (seconds); default is
    exponential with the given mean, matching the paper's modelling of
    packet inter-arrivals.
    """

    def __init__(self, client_node, target_addr: str,
                 mean_interval: float = 0.020,
                 spacing_fn: Optional[Callable] = None,
                 local_port: int = 9100):
        self.node = client_node
        self.target_addr = target_addr
        self.mean_interval = mean_interval
        self.spacing_fn = spacing_fn
        self.udp = UdpStack(client_node)
        self.udp.bind(local_port, self._on_reply)
        self.local_port = local_port
        self.sent = 0
        self.reply_times: List[float] = []
        self._running = False

    def start(self) -> None:
        self._running = True
        self._send_next()

    def stop(self) -> None:
        self._running = False

    def _send_next(self) -> None:
        if not self._running:
            return
        self.udp.send(self.target_addr, self.local_port, ECHO_PORT,
                      data_len=64, tag=self.sent)
        self.sent += 1
        if self.spacing_fn is not None:
            gap = self.spacing_fn(self.node.rng)
        else:
            gap = self.node.rng.expovariate(1.0 / self.mean_interval)
        self.node.schedule(gap, self._send_next)

    def _on_reply(self, datagram, src: str) -> None:
        self.reply_times.append(self.node.now())
