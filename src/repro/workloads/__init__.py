"""Guest workloads and their client-side drivers.

A *guest workload* is a deterministic, callback-driven program
instantiated once per replica against a
:class:`~repro.machine.guest.GuestOS`.  The factory convention::

    cloud.create_vm("web", lambda guest: FileServer(guest))

Deployable workloads are declared in the pluggable registry
(:mod:`repro.workloads.registry`): one :class:`WorkloadSpec` per name,
carrying the server/driver factories, default params, and a declared
cpu/disk/net :class:`ResourceProfile`.  The scenario layer resolves
tenants exclusively through it.

- :mod:`repro.workloads.echo` -- UDP echo / ping responder (used by the
  side-channel experiments as the attacker's observable event source).
- :mod:`repro.workloads.fileserver` -- HTTP-style file download over
  TCP, and a NAK-reliable UDP file service (Fig. 5), plus client-side
  download drivers.
- :mod:`repro.workloads.nfs` -- an NFS server model and an
  nhfsstone-style load generator (Fig. 6).
- :mod:`repro.workloads.parsec` -- five PARSEC-representative compute
  kernels with calibrated compute/disk plans (Fig. 7).
- :mod:`repro.workloads.storage` -- k-of-n erasure-coded object store:
  one share per tenant VM, client-side fan-out, and a suspicion-driven
  repair daemon.
"""

from repro.workloads import registry
from repro.workloads.base import GuestWorkload
from repro.workloads.echo import EchoServer, PingClient
from repro.workloads.fileserver import (
    DownloadLoop,
    FileServer,
    HttpDownloader,
    UdpDownloadLoop,
    UdpFileServer,
    UdpDownloader,
)
from repro.workloads.nfs import (
    NFS_OPERATION_MIX,
    NfsServer,
    NhfsstoneClient,
)
from repro.workloads.parsec import (
    PARSEC_KERNELS,
    BlackScholes,
    BlackScholesParallel,
    Canneal,
    Dedup,
    Ferret,
    ParsecWorkload,
    RunCollector,
    StreamCluster,
)
from repro.workloads.registry import (
    ResourceProfile,
    UnknownWorkloadError,
    WorkloadSpec,
)
from repro.workloads.storage import (
    ErasureCodec,
    RepairDaemon,
    ShareServer,
    StorageClient,
    StorageLoop,
)

__all__ = [
    "GuestWorkload",
    # registry
    "registry",
    "ResourceProfile",
    "UnknownWorkloadError",
    "WorkloadSpec",
    # echo
    "EchoServer",
    "PingClient",
    # fileserver
    "DownloadLoop",
    "FileServer",
    "HttpDownloader",
    "UdpDownloadLoop",
    "UdpFileServer",
    "UdpDownloader",
    # nfs
    "NFS_OPERATION_MIX",
    "NfsServer",
    "NhfsstoneClient",
    # parsec
    "PARSEC_KERNELS",
    "BlackScholes",
    "BlackScholesParallel",
    "Canneal",
    "Dedup",
    "Ferret",
    "ParsecWorkload",
    "RunCollector",
    "StreamCluster",
    # storage
    "ErasureCodec",
    "RepairDaemon",
    "ShareServer",
    "StorageClient",
    "StorageLoop",
]
