"""Guest workloads and their client-side drivers.

A *guest workload* is a deterministic, callback-driven program
instantiated once per replica against a
:class:`~repro.machine.guest.GuestOS`.  The factory convention::

    cloud.create_vm("web", lambda guest: FileServer(guest))

- :mod:`repro.workloads.echo` -- UDP echo / ping responder (used by the
  side-channel experiments as the attacker's observable event source).
- :mod:`repro.workloads.fileserver` -- HTTP-style file download over
  TCP, and a NAK-reliable UDP file service (Fig. 5), plus client-side
  download drivers.
- :mod:`repro.workloads.nfs` -- an NFS server model and an
  nhfsstone-style load generator (Fig. 6).
- :mod:`repro.workloads.parsec` -- five PARSEC-representative compute
  kernels with calibrated compute/disk plans (Fig. 7).
"""

from repro.workloads.base import GuestWorkload
from repro.workloads.echo import EchoServer, PingClient
from repro.workloads.fileserver import (
    FileServer,
    HttpDownloader,
    UdpFileServer,
    UdpDownloader,
)
from repro.workloads.nfs import (
    NFS_OPERATION_MIX,
    NfsServer,
    NhfsstoneClient,
)

__all__ = [
    "GuestWorkload",
    "EchoServer",
    "PingClient",
    "FileServer",
    "HttpDownloader",
    "UdpFileServer",
    "UdpDownloader",
    "NFS_OPERATION_MIX",
    "NfsServer",
    "NhfsstoneClient",
]
