"""Command-line interface: regenerate any of the paper's figures.

Usage::

    python -m repro fig1  [--victim-rate 0.5]
    python -m repro fig4  [--duration 30]
    python -m repro fig5  [--sizes 1000,100000,1000000]
    python -m repro fig6  [--rates 25,100,400]
    python -m repro fig7  [--kernels ferret,dedup] [--scale 1.0]
    python -m repro fig8  [--victim-rate 0.5]
    python -m repro placement
    python -m repro offsets
    python -m repro covert
    python -m repro collab
    python -m repro trace   [--categories vmm,ingress] [--out run.jsonl]
    python -m repro metrics [--profile] [--duration 2]
    python -m repro spans   [--perfetto out.json] [--validate]
    python -m repro flows   [--flow echo/3] [--top-k 10]
    python -m repro chaos   [--check-determinism] [--crash-at 0.9]
    python -m repro mitigate [--policies none,stopwatch] [--attacks probe]
    python -m repro scale   [--tenants 1,8,32] [--shards 2] [--spec s.toml]
    python -m repro bench run --benchmark kernel.scale32 [--profile]
    python -m repro bench compare --path BENCH_kernel.json --gate
    python -m repro bench history --path BENCH_kernel.json
    python -m repro bench migrate BENCH_kernel.json
    python -m repro campaign run examples/fig5_sweep.toml --jobs 0
    python -m repro campaign status examples/fig5_sweep.toml
    python -m repro campaign resume examples/fig5_sweep.toml
    python -m repro campaign aggregate examples/fig5_sweep.toml
    python -m repro list
"""

import argparse
import sys
from typing import List


def _ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text}")
    return value


def cmd_fig1(args) -> None:
    from repro.analysis import fig1_observation_curves, format_table
    rows = fig1_observation_curves(victim_rate=args.victim_rate)
    print(f"Fig. 1: observations to detect victim "
          f"(lambda'={args.victim_rate})")
    print(format_table(["confidence", "w/o StopWatch", "w/ StopWatch"],
                       rows))


def cmd_fig4(args) -> None:
    from repro.analysis import fig4_empirical_detection, format_table
    result = fig4_empirical_detection(duration=args.duration)
    rows = [(c, base_n, sw_n)
            for (c, base_n), (_, sw_n)
            in zip(result["curve_baseline"], result["curve_stopwatch"])]
    print("Fig. 4: empirical coresidence detection")
    print(format_table(["confidence", "w/o StopWatch", "w/ StopWatch"],
                       rows))


def cmd_fig5(args) -> None:
    from repro.analysis import fig5_file_download, format_table
    rows = fig5_file_download(sizes=_ints(args.sizes))
    rendered = [(s, hb * 1000, hs * 1000, hs / hb, ub * 1000, us * 1000,
                 us / ub) for s, hb, hs, ub, us in rows]
    print("Fig. 5: file-retrieval latency (ms)")
    print(format_table(["size B", "HTTP base", "HTTP SW", "ratio",
                        "UDP base", "UDP SW", "ratio"], rendered))


def cmd_fig6(args) -> None:
    from repro.analysis import fig6_nfs, format_table
    rows = fig6_nfs(rates=_ints(args.rates), duration=args.duration)
    rendered = [(r, b * 1000, s * 1000, s / b, c2s, s2c)
                for r, b, s, c2s, s2c, _ in rows]
    print("Fig. 6: NFS / nhfsstone")
    print(format_table(["ops/s", "base ms/op", "SW ms/op", "ratio",
                        "c->s pkts/op", "s->c pkts/op"], rendered))


def cmd_fig7(args) -> None:
    from repro.analysis import fig7_parsec, format_table
    kernels = args.kernels.split(",") if args.kernels else None
    rows = fig7_parsec(kernels=kernels, scale=args.scale)
    rendered = [(n, b * 1000, s * 1000, s / b, i, pb * 1000, ps * 1000, pi)
                for n, b, s, i, pb, ps, pi in rows]
    print("Fig. 7: PARSEC kernels")
    print(format_table(["kernel", "base ms", "SW ms", "ratio", "ints",
                        "paper base", "paper SW", "paper ints"], rendered))


def cmd_fig8(args) -> None:
    from repro.analysis import fig8_noise_comparison, format_table
    result = fig8_noise_comparison(victim_rate=args.victim_rate)
    rows = [(r.confidence, r.observations, r.noise_bound,
             r.stopwatch_delay_baseline, r.noise_delay_baseline)
            for r in result["table"]]
    print(f"Fig. 8: StopWatch vs uniform noise (lambda'="
          f"{args.victim_rate})")
    print(format_table(["confidence", "obs", "noise b", "E[SW delay]",
                        "E[noise delay]"], rows))
    curve = [(p.target_observations, p.noise_bound, p.noise_delay,
              p.stopwatch_delay) for p in result["curve"]]
    print("\nProtection-cost scaling:")
    print(format_table(["target obs", "noise b", "noise delay",
                        "SW delay"], curve))


def cmd_placement(args) -> None:
    from repro.analysis import format_table, placement_utilization
    rows = placement_utilization()
    print("Sec. VIII: placement utilisation")
    print(format_table(["machines", "capacity", "StopWatch VMs",
                        "isolation", "Thm1 bound", "c*n/3"], rows))


def cmd_offsets(args) -> None:
    from repro.analysis import (delta_offset_translation, format_table,
                                summarize)
    result = delta_offset_translation(duration=args.duration)
    net = summarize([d * 1000 for d in result["net_delays"]])
    disk = summarize([d * 1000 for d in result["disk_delays"]])
    print("Sec. VII-A: real-time translation of the virtual offsets")
    print(format_table(
        ["offset", "events", "mean ms", "min ms", "max ms", "p50 ms",
         "p95 ms", "p99 ms"],
        [("delta_n", net["count"], net["mean"], net["min"], net["max"],
          net["p50"], net["p95"], net["p99"]),
         ("delta_d", disk["count"], disk["mean"], disk["min"],
          disk["max"], disk["p50"], disk["p95"], disk["p99"])]))


def cmd_covert(args) -> None:
    from repro.attacks import run_covert_channel
    for mediated in (False, True):
        result = run_covert_channel(mediated=mediated, n_bits=args.bits)
        label = "StopWatch" if mediated else "unmodified Xen"
        print(f"{label}: BER = {result.bit_error_rate:.2f}")


def cmd_collab(args) -> None:
    from repro.analysis import format_table
    from repro.attacks import run_collab_experiment
    rows = []
    for replicas, collab in ((3, False), (3, True), (5, True)):
        result = run_collab_experiment(replicas=replicas,
                                       collaborator=collab,
                                       duration=args.duration)
        rows.append((f"{replicas} replicas, "
                     f"{'with' if collab else 'no'} collaborator",
                     result.observations_needed()))
    print("Sec. IX: collaborating attackers")
    print(format_table(["condition", "obs to detect @95%"], rows))


def cmd_trace(args) -> None:
    from repro.analysis import format_table
    from repro.analysis.observe import (run_observed_workload,
                                        trace_category_rows)
    categories = ([c for c in args.categories.split(",") if c]
                  if args.categories else None)
    sim, sink = run_observed_workload(
        duration=args.duration, seed=args.seed, categories=categories,
        max_per_category=args.cap, jsonl_path=args.out)
    trace = sim.trace
    print(f"Trace: {len(trace)} records retained, "
          f"{trace.dropped} dropped (cap={args.cap})")
    print(format_table(["category", "retained", "dropped"],
                       trace_category_rows(trace)))
    if sink is not None:
        print(f"Streamed {sink.written} records to {args.out}")


def cmd_metrics(args) -> None:
    from repro.analysis import format_table
    from repro.analysis.observe import (mediation_delay_metrics,
                                        run_observed_workload)
    sim, _ = run_observed_workload(duration=args.duration, seed=args.seed,
                                   max_per_category=args.cap,
                                   profile=args.profile)
    stats = sim.stats()
    print("Event loop:")
    print(format_table(["metric", "value"],
                       [(key, value) for key, value in stats.items()
                        if key != "profile"]))
    snapshot = mediation_delay_metrics(sim.trace).snapshot()
    rows = [(name, s["count"], s["mean"] * 1000, s["p50"] * 1000,
             s["p95"] * 1000, s["p99"] * 1000)
            for name, s in sorted(snapshot["observations"].items())]
    print("\nMediation delays (ms):")
    print(format_table(["metric", "count", "mean", "p50", "p95", "p99"],
                       rows))
    if args.profile:
        top = list(stats["profile"].items())[:args.top]
        print("\nCallback wall-time profile (top entries):")
        print(format_table(
            ["callback", "calls", "seconds"],
            [(name, entry["calls"], entry["seconds"])
             for name, entry in top]))


def cmd_spans(args) -> None:
    import time as _time

    from repro.analysis import format_table
    from repro.analysis.flows import flow_summary, run_flow_workload
    from repro.obs import export_perfetto, validate_file

    started = _time.perf_counter()
    sim = run_flow_workload(duration=args.duration, seed=args.seed,
                            profile=args.profile)
    total_seconds = _time.perf_counter() - started
    summary = flow_summary(sim.flows)
    print(f"Spans: {summary['spans']} recorded "
          f"({summary['open_spans']} open, "
          f"{summary['dropped_spans']} dropped) across "
          f"{summary['flows']} flows")
    counts = sim.flows.store.name_counts()
    print(format_table(["span", "count"],
                       sorted(counts.items())))
    profile = None
    if args.profile and sim.profiler is not None:
        profile = sim.profiler.summary(
            loop_seconds=sim.wall_seconds,
            total_seconds=total_seconds,
            release_times=sim.trace.times("egress.release"))
        from repro.bench.cli import profile_lines
        for line in profile_lines(profile):
            print(line)
    if args.perfetto:
        extra = None
        if profile is not None:
            from repro.prof.export import counter_events
            extra = counter_events(profile)
        written = export_perfetto(sim.flows.store, args.perfetto,
                                  extra_events=extra)
        print(f"\nExported {written} duration events to {args.perfetto} "
              f"(open in https://ui.perfetto.dev"
              f"{'; profiler counter tracks merged' if extra else ''})")
        if args.validate:
            problems = validate_file(args.perfetto)
            if problems:
                print("Validation FAILED:")
                for problem in problems:
                    print(f"  - {problem}")
                raise SystemExit(1)
            print("Validation: PASS (parses, pid/tid/ts/dur present, "
                  "critical stages sum to end-to-end)")
    elif args.validate:
        raise SystemExit("--validate requires --perfetto OUT")


def cmd_flows(args) -> None:
    from repro.analysis import format_table
    from repro.analysis.flows import (flow_detail_rows, flow_stage_rows,
                                      flow_summary, run_flow_workload,
                                      slowest_flow_rows)
    from repro.obs import STAGES

    sim = run_flow_workload(duration=args.duration, seed=args.seed)
    tracker = sim.flows
    summary = flow_summary(tracker)
    print(f"Flows: {summary['complete']} complete / {summary['flows']} "
          f"tracked ({summary['incomplete']} incomplete, "
          f"{summary['dropped_flows']} evicted, "
          f"{summary['nak_repairs']} NAK repairs)")
    if args.flow:
        flow, rows = flow_detail_rows(tracker, args.flow)
        if flow is None:
            raise SystemExit(f"unknown flow {args.flow!r} (ids look like "
                             f"'echo/3'; try the slowest-flows table)")
        e2e = flow.end_to_end
        state = (f"end-to-end {e2e * 1000:.3f} ms"
                 if e2e is not None else "not yet released")
        print(f"\nFlow {flow.flow_id}: {state}, "
              f"critical replica {flow.release_replica}")
        print(format_table(["span", "replica", "start ms", "end ms",
                            "dur ms", "annotations"], rows))
        return
    print("\nCritical-path stage latency (ms):")
    print(format_table(["stage", "count", "mean", "p50", "p95", "p99"],
                       flow_stage_rows(tracker)))
    print(f"\nSlowest {args.top_k} flows (ms):")
    print(format_table(["flow", "e2e", "dominant"] + list(STAGES),
                       slowest_flow_rows(tracker, top_k=args.top_k)))


def cmd_chaos(args) -> None:
    if args.mode == "campaign":
        return cmd_chaos_campaign(args)
    from repro.analysis import format_table
    from repro.analysis.chaos import (chaos_signature, chaos_timeline_rows,
                                      default_schedule, determinism_check,
                                      run_chaos_experiment, service_summary)
    if args.duration is None:
        args.duration = 3.0
    schedule = default_schedule(crash_at=args.crash_at,
                                restart_at=args.restart_at,
                                replica=args.replica)
    if args.check_determinism:
        check = determinism_check(seed=args.seed, duration=args.duration,
                                  schedule=schedule)
        result = check["first"]
    else:
        check = None
        result = run_chaos_experiment(seed=args.seed,
                                      duration=args.duration,
                                      schedule=schedule)

    print(f"Chaos run: seed={args.seed} duration={args.duration}s, "
          f"crash echo:{args.replica} at t={args.crash_at}, "
          f"restart at t={args.restart_at}")
    print(format_table(["time", "event", "detail"],
                       chaos_timeline_rows(result)))
    summary = service_summary(result)
    lo, hi = summary["window"]
    print(f"\nService: {summary['replies']}/{summary['sent']} pings "
          f"answered; {summary['replies_during_outage']} during the "
          f"outage window [{lo:.2f}s, {hi:.2f}s], "
          f"{summary['replies_after_recovery']} after recovery; "
          f"{summary['released']} packets released at egress")
    signature = chaos_signature(result["sim"].trace)
    print(f"Signature: {len(signature)} fault/recovery/release records")
    if check is not None:
        if check["identical"]:
            print(f"Determinism: PASS -- two seed-{args.seed} runs "
                  f"produced identical signatures "
                  f"({check['records']} records)")
        else:
            index, a, b = check["divergence"]
            print(f"Determinism: FAIL at record {index}:")
            print(f"  run 1: {a}")
            print(f"  run 2: {b}")
            raise SystemExit(1)


def cmd_chaos_campaign(args) -> None:
    import json

    from repro.analysis.chaos import (CELL_SCENARIOS, run_chaos_campaign,
                                      write_chaos_bench)
    from repro.sim.rng import derive_root_seed

    scenarios = [s.strip() for s in args.scenarios.split(",") if s.strip()]
    unknown = sorted(set(scenarios) - set(CELL_SCENARIOS))
    if unknown:
        raise SystemExit(f"unknown chaos scenarios {unknown}; "
                         f"choose from {list(CELL_SCENARIOS)}")
    seeds = [derive_root_seed(args.seed_base, i) for i in range(args.seeds)]
    duration = args.duration if args.duration is not None else 6.0
    progress = None if args.json else print
    summary = run_chaos_campaign(seeds=seeds, scenarios=scenarios,
                                 duration=duration, rate=args.rate,
                                 jobs=args.jobs, profile=args.profile,
                                 progress=progress)
    if args.profile_out:
        if not summary.get("profile"):
            raise SystemExit("--profile-out requires --profile")
        from repro.prof.export import write_speedscope
        write_speedscope(args.profile_out, summary["profile"],
                         name="chaos campaign")
        if not args.json:
            print(f"wrote speedscope profile to {args.profile_out}")
    if args.output:
        config = {"seeds": args.seeds, "scenarios": scenarios,
                  "duration": duration, "rate": args.rate}
        path = write_chaos_bench(args.output, summary, label=args.label,
                                 config=config)
        if not args.json:
            print(f"appended entry to {path}")
    if args.json:
        print(json.dumps(summary, indent=2, default=repr))
    else:
        print(f"\nChaos campaign: {summary['cells']} cells "
              f"({args.seeds} seeds x {len(scenarios)} scenarios), "
              f"{summary['faults_injected']} faults injected "
              f"({summary['noops']} no-ops) in "
              f"{summary['wall_seconds']:.1f}s wall")
        recovery = ("no recoveries needed"
                    if summary["recovery_p50"] is None else
                    f"recovery p50 {summary['recovery_p50']:.3f}s "
                    f"p95 {summary['recovery_p95']:.3f}s")
        print(f"Healing: {summary['evacuations']} evacuations, "
              f"{summary['rejoins']} in-place rejoins, "
              f"{summary['readmits']} readmits, "
              f"{summary['heal_failures']} gave up; {recovery}")
        print(f"Service: {summary['replies']}/{summary['sent']} pings "
              f"answered, {summary['client_retries']} client retries")
        if summary.get("profile"):
            from repro.bench.cli import profile_lines
            for line in profile_lines(summary["profile"]):
                print(line)
        if summary["ok"]:
            print(f"Invariants: PASS -- placement, liveness and hygiene "
                  f"held in all {summary['cells']} cells; "
                  f"all signatures replayed byte-identical")
        else:
            print(f"Invariants: FAIL -- "
                  f"{len(summary['violations'])} violations:")
            for violation in summary["violations"]:
                print(f"  {violation}")
    if not summary["ok"]:
        raise SystemExit(1)


def cmd_mitigate(args) -> None:
    import json

    from repro.analysis import format_table
    from repro.analysis.mitigation import (ATTACK_NAMES,
                                           mitigation_frontier,
                                           write_mitigation_bench)
    from repro.mitigation import POLICIES
    from repro.sim.rng import derive_root_seed

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    attacks = [a.strip() for a in args.attacks.split(",") if a.strip()]
    unknown = sorted(set(policies) - set(POLICIES))
    if unknown:
        raise SystemExit(f"unknown policies {unknown}; "
                         f"choose from {sorted(POLICIES)}")
    unknown = sorted(set(attacks) - set(ATTACK_NAMES))
    if unknown:
        raise SystemExit(f"unknown attacks {unknown}; "
                         f"choose from {list(ATTACK_NAMES)}")
    seeds = [derive_root_seed(args.seed_base, i)
             for i in range(args.seeds)]
    progress = None if args.json else print
    summary = mitigation_frontier(
        policies=policies, attacks=attacks, duration=args.duration,
        seeds=seeds, bins=args.bins, workload=args.workload,
        jobs=args.jobs, progress=progress)
    if args.output:
        config = {"policies": policies, "attacks": attacks,
                  "duration": args.duration, "seeds": args.seeds,
                  "bins": args.bins, "workload": args.workload}
        path = write_mitigation_bench(args.output, summary,
                                      label=args.label, config=config)
        if not args.json:
            print(f"appended entry to {path}")
    if args.json:
        print(json.dumps(summary, indent=2, default=repr))
    else:
        print(f"\nMitigation frontier: {summary['cells']} cells "
              f"({len(policies)} policies x {len(attacks)} attacks x "
              f"{args.seeds} seeds) in "
              f"{summary['wall_seconds']:.1f}s wall")
        rows = [(row["policy"], row["attack"],
                 f"{row['mi_bits']:.4f}" if row["mi_bits"] is not None
                 else "-",
                 f"{row['capacity_bits']:.4f}"
                 if row["capacity_bits"] is not None else "-",
                 f"{row['overhead_x']:.2f}x"
                 if row["overhead_x"] is not None else "-")
                for row in summary["rows"]]
        print(format_table(["policy", "attack", "MI (bits)",
                            "capacity", "overhead"], rows))
        gate = summary["gate"]
        if gate["checked"]:
            print(f"Gate ({gate['attack']}): "
                  f"{'PASS' if gate['ok'] else 'FAIL'} -- "
                  f"{gate['detail']}")
        else:
            print(f"Gate: skipped -- {gate['detail']}")
        for failure in summary["failures"]:
            print(f"  cell failed: {failure}")
    if not summary["ok"]:
        raise SystemExit(1)


def cmd_scale(args) -> None:
    from repro.analysis import format_table
    from repro.analysis.scale import (build_scale_spec, run_scale_cell,
                                      scale_sweep)
    from repro.bench.cli import _parse_set
    from repro.cloud.scenario import ScenarioSpec

    workload_params = _parse_set(args.workload_param)
    if args.spec:
        spec = ScenarioSpec.from_file(args.spec)
        if args.shards is not None:
            spec.shards = args.shards
        rows = [run_scale_cell(spec, duration=args.duration,
                               seed=args.seed, profile=args.profile)]
    else:
        rows = scale_sweep(
            tenant_counts=_ints(args.tenants), duration=args.duration,
            seed=args.seed, shards=args.shards or 1,
            workload=args.workload, clients_per_tenant=args.clients,
            request_rate=args.rate, machines=args.machines,
            profile=args.profile, workload_params=workload_params)

    print("Multi-tenant scale sweep (mediation = ingress admission -> "
          "egress release)")
    print(format_table(
        ["tenants", "machines", "cap", "shards", "events/s",
         "releases/s", "p50 ms", "p95 ms", "placed", "replicas agree"],
        [(r["tenants"], r["machines"], r["capacity"], r["shards"],
          int(r["events_per_second"]), round(r["releases_per_sim_second"], 1),
          round(r["mediation_p50"] * 1000, 3),
          round(r["mediation_p95"] * 1000, 3),
          "yes" if r["placement_verified"] else "NO",
          "yes" if r["outputs_consistent"] else "NO") for r in rows]))

    if args.profile:
        from repro.bench.cli import profile_lines
        from repro.prof.profiler import merge_summaries
        profiles = [row["profile"] for row in rows if row.get("profile")]
        merged = profiles[0] if len(profiles) == 1 \
            else merge_summaries(profiles)
        for line in profile_lines(merged):
            print(line)
        if args.profile_out:
            from repro.prof.export import write_speedscope
            write_speedscope(args.profile_out, merged, name="repro scale")
            print(f"wrote speedscope profile to {args.profile_out} "
                  f"(open in https://www.speedscope.app)")
    elif args.profile_out:
        raise SystemExit("--profile-out requires --profile")

    failed = False
    for row in rows:
        if not row["placement_verified"]:
            print(f"FAIL: {row['scenario']}: placement invariants violated")
            failed = True
        if not row["outputs_consistent"]:
            print(f"FAIL: {row['scenario']}: replica output counts diverge")
            failed = True

    if not args.once:
        # same-seed re-run: the egress release schedule must be
        # byte-identical (the determinism claim, end to end)
        for row in rows:
            if args.spec:
                spec = ScenarioSpec.from_file(args.spec)
                if args.shards is not None:
                    spec.shards = args.shards
            else:
                spec = build_scale_spec(
                    row["tenants"], shards=args.shards or 1,
                    workload=args.workload,
                    clients_per_tenant=args.clients,
                    request_rate=args.rate, machines=args.machines,
                    workload_params=workload_params)
            rerun = run_scale_cell(spec, duration=args.duration,
                                   seed=args.seed)
            if rerun["egress_signature"] != row["egress_signature"]:
                print(f"FAIL: {row['scenario']}: seed {args.seed} egress "
                      f"traces differ across runs")
                failed = True
            else:
                print(f"Determinism: {row['scenario']}: PASS "
                      f"(seed-{args.seed} egress signature "
                      f"{row['egress_signature'][:16]}... reproduced)")
    if failed:
        raise SystemExit(1)


def cmd_workloads(args) -> None:
    from repro.analysis import format_table
    from repro.workloads import registry

    specs = [registry.get(name) for name in registry.names()]
    if args.json:
        print(json.dumps([{
            "name": spec.name,
            "scope": spec.scope,
            "profile": spec.profile.as_dict(),
            "ports": list(spec.ports),
            "defaults": dict(spec.defaults),
            "has_driver": spec.driver is not None,
            "description": spec.description,
        } for spec in specs], indent=2, default=repr))
        return
    print("Deployable workloads (scenario/TOML `workload = \"<name>\"`; "
          "defaults overridable via [tenants.workload_params])")
    print(format_table(
        ["workload", "scope", "cpu", "disk", "net", "port", "driver",
         "description"],
        [(spec.name, spec.scope,
          f"{spec.profile.cpu:.2f}", f"{spec.profile.disk:.2f}",
          f"{spec.profile.net:.2f}",
          ",".join(str(port) for port in spec.ports) or "-",
          "yes" if spec.driver is not None else "no",
          spec.description) for spec in specs]))


def cmd_storage(args) -> None:
    from repro.analysis.storage import (run_storage_repair_cell,
                                        write_storage_bench)

    result = run_storage_repair_cell(
        seed=args.seed, duration=args.duration, k=args.k, n=args.n,
        object_size=args.object_size, objects=args.objects,
        crash_at=args.crash_at, check_determinism=not args.once,
        profile=args.profile)
    if args.output:
        config = {"seed": args.seed, "duration": args.duration,
                  "k": args.k, "n": args.n,
                  "object_size": args.object_size,
                  "objects": args.objects, "crash_at": args.crash_at}
        path = write_storage_bench(args.output, result,
                                   label=args.label, config=config)
        if not args.json:
            print(f"appended entry to {path}")
    if args.json:
        print(json.dumps(result, indent=2, default=repr))
    else:
        print(f"Storage repair cell: {args.k}-of-{args.n} over "
              f"{result['objects_stored']} x {args.object_size} B "
              f"objects; host {result['victim_host']} condemned at "
              f"t={args.crash_at}s")
        print(f"  client: {result['puts_completed']} puts, "
              f"{result['gets_completed']} gets, "
              f"{result['verify_failures']} verify failures, "
              f"{result['client_retries']} retries")
        print(f"  repair: {result['repairs_completed']}/"
              f"{result['repairs_started']} completed, "
              f"{result['repaired_bytes']} B reconstructed "
              f"({result['repaired_bytes_per_sim_s']:.0f} B/sim-s); "
              f"healer: {result['evacuations']} evacuations")
        print(f"  shares: min {result['min_live_shares']}/{args.n} "
              f"live per object, digests "
              f"{'verified' if result['shares_verified'] else 'MISMATCH'}")
        if result["deterministic"] is not None:
            print(f"  determinism: "
                  f"{'PASS' if result['deterministic'] else 'FAIL'} "
                  f"({result['signature_records']} signature records)")
        for violation in result["violations"]:
            print(f"  violation: {violation}")
    if args.profile and result.get("profile"):
        from repro.bench.cli import profile_lines
        for line in profile_lines(result["profile"]):
            print(line)
    if not result["ok"]:
        raise SystemExit(1)


def cmd_bench_kernel(args) -> None:
    from repro.analysis.benchkernel import (BenchError, check_regression,
                                            load_bench, run_kernel_bench,
                                            write_bench)

    result = run_kernel_bench(
        tenants=args.tenants, duration=args.duration, seed=args.seed,
        request_rate=args.rate, repeats=args.repeats,
        profile=args.profile)
    print(f"{result['benchmark']}: "
          f"{result['events_per_cpu_second']:.0f} events/CPU-s "
          f"({result['events_per_second']:.0f} events/wall-s), "
          f"{result['events_fired']} events in "
          f"{result['cpu_seconds']:.2f}s CPU")
    print(f"high-water: heap {result['heap_high_water']} "
          f"bucket {result['bucket_high_water']} "
          f"far {result['far_high_water']}; "
          f"mediation p95 {result['mediation_p95'] * 1000:.3f} ms")
    print(f"determinism: {args.repeats} warm repeats, egress signature "
          f"{result['egress_signature'][:16]}... identical")
    if args.profile:
        from repro.bench.cli import profile_lines
        print("profiled extra repeat: egress signature byte-identical")
        for line in profile_lines(result["profile"]):
            print(line)
        if args.profile_out:
            from repro.prof.export import write_speedscope
            write_speedscope(args.profile_out, result["profile"],
                             name=result["benchmark"])
            print(f"wrote speedscope profile to {args.profile_out} "
                  f"(open in https://www.speedscope.app)")
    elif args.profile_out:
        raise SystemExit("--profile-out requires --profile")

    baseline_path = args.baseline or args.output
    baseline = load_bench(baseline_path)
    if args.check_regression:
        if baseline is None:
            print(f"no baseline at {baseline_path}; skipping "
                  f"regression gate")
        else:
            try:
                check_regression(result, baseline)
            except BenchError as exc:
                print(f"FAIL: {exc}")
                raise SystemExit(1)
            print(f"regression gate: PASS vs trajectory at "
                  f"{baseline_path} "
                  f"({len(baseline.get('entries', ()))} entries)")
    if not args.no_write:
        path = write_bench(args.output, result, label=args.label)
        print(f"appended entry to {path}")


def cmd_list(args) -> None:
    from repro.analysis.experiments import RUNNERS
    print("Available experiments: fig1 fig4 fig5 fig6 fig7 fig8 "
          "placement offsets covert collab trace metrics spans flows "
          "chaos mitigate scale storage workloads bench-kernel bench "
          "campaign")
    print("Campaign runners: " + " ".join(sorted(RUNNERS)))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from the StopWatch paper "
                    "(Li/Gao/Reiter, DSN 2013) on the simulator.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="analytic median justification")
    p.add_argument("--victim-rate", type=float, default=0.5)
    p.set_defaults(fn=cmd_fig1)

    p = sub.add_parser("fig4", help="empirical coresidence detection")
    p.add_argument("--duration", type=float, default=30.0)
    p.set_defaults(fn=cmd_fig4)

    p = sub.add_parser("fig5", help="file-download latency")
    p.add_argument("--sizes", default="1000,10000,100000,1000000")
    p.set_defaults(fn=cmd_fig5)

    p = sub.add_parser("fig6", help="NFS under nhfsstone")
    p.add_argument("--rates", default="25,50,100,200,400")
    p.add_argument("--duration", type=float, default=8.0)
    p.set_defaults(fn=cmd_fig6)

    p = sub.add_parser("fig7", help="PARSEC kernels")
    p.add_argument("--kernels", default=None)
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(fn=cmd_fig7)

    p = sub.add_parser("fig8", help="StopWatch vs uniform noise")
    p.add_argument("--victim-rate", type=float, default=0.5)
    p.set_defaults(fn=cmd_fig8)

    p = sub.add_parser("placement", help="Sec. VIII utilisation")
    p.set_defaults(fn=cmd_placement)

    p = sub.add_parser("offsets", help="delta_n/delta_d translation")
    p.add_argument("--duration", type=float, default=10.0)
    p.set_defaults(fn=cmd_offsets)

    p = sub.add_parser("covert", help="covert-channel BER")
    p.add_argument("--bits", type=int, default=24)
    p.set_defaults(fn=cmd_covert)

    p = sub.add_parser("collab", help="Sec. IX collaborating attackers")
    p.add_argument("--duration", type=float, default=15.0)
    p.set_defaults(fn=cmd_collab)

    p = sub.add_parser("trace", help="record a traced run; summarize "
                                     "and export JSONL")
    p.add_argument("--duration", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=5)
    p.add_argument("--categories", default=None,
                   help="comma-separated dotted category prefixes "
                        "(default: record everything)")
    p.add_argument("--cap", type=_positive_int, default=100_000,
                   help="ring-buffer cap per category")
    p.add_argument("--out", default=None, help="stream records to this "
                                               "JSONL file")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("metrics", help="event-loop health and "
                                       "mediation-delay percentiles")
    p.add_argument("--duration", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=5)
    p.add_argument("--cap", type=_positive_int, default=100_000)
    p.add_argument("--profile", action="store_true",
                   help="profile per-callback wall time")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("spans", help="record a span-tracked run; "
                                     "summarize and export Perfetto JSON")
    p.add_argument("--duration", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=5)
    p.add_argument("--perfetto", default=None, metavar="OUT",
                   help="write Chrome trace-event JSON to this file")
    p.add_argument("--validate", action="store_true",
                   help="validate the exported trace (with --perfetto); "
                        "non-zero exit on failure")
    p.add_argument("--profile", action="store_true",
                   help="attribute CPU to subsystems; with --perfetto, "
                        "merge counter tracks into the span trace")
    p.set_defaults(fn=cmd_spans)

    p = sub.add_parser("flows", help="per-flow mediation-delay "
                                     "attribution (critical-path stages)")
    p.add_argument("--duration", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=5)
    p.add_argument("--flow", default=None, metavar="ID",
                   help="show one flow's span timeline (e.g. echo/3)")
    p.add_argument("--top-k", type=_positive_int, default=10,
                   help="slowest flows to list")
    p.set_defaults(fn=cmd_flows)

    p = sub.add_parser("chaos", help="crash/recover a replica mid-run "
                                     "under load; or 'chaos campaign': "
                                     "randomized invariant-gated storms "
                                     "across seeds x scenarios")
    p.add_argument("mode", nargs="?", choices=["campaign"],
                   help="omit for the single scripted run; 'campaign' "
                        "sweeps seeded random storms and gates on "
                        "placement/liveness/hygiene invariants")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--duration", type=float, default=None,
                   help="simulated seconds per run (default: 3 for the "
                        "scripted run, 6 per campaign cell)")
    p.add_argument("--crash-at", type=float, default=0.9)
    p.add_argument("--restart-at", type=float, default=2.0)
    p.add_argument("--replica", type=int, default=2,
                   help="echo replica id to crash")
    p.add_argument("--check-determinism", action="store_true",
                   help="run twice with the same seed and compare "
                        "fault/recovery/heal/release signatures "
                        "(campaign cells always do this)")
    p.add_argument("--seeds", type=_positive_int, default=7,
                   help="campaign: number of derived storm seeds")
    p.add_argument("--seed-base", type=int, default=101,
                   help="campaign: base for seed derivation")
    p.add_argument("--scenarios", default=",".join(
                       ("single", "multi", "sharded")),
                   help="campaign: comma-separated cell scenarios")
    p.add_argument("--rate", type=float, default=1.2,
                   help="campaign: storm fault rate (faults/s)")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="campaign: worker processes")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="campaign: write the gate summary (e.g. "
                        "BENCH_chaos.json), carrying the trajectory")
    p.add_argument("--label", default="head",
                   help="campaign: label recorded in --output")
    p.add_argument("--json", action="store_true",
                   help="campaign: print the full summary as JSON")
    p.add_argument("--profile", action="store_true",
                   help="campaign: profile each cell's primary run and "
                        "report merged subsystem CPU attribution "
                        "(measurement-only)")
    p.add_argument("--profile-out", default=None, metavar="JSON",
                   help="campaign: write the merged profile as "
                        "speedscope JSON (requires --profile)")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("mitigate", help="leakage-vs-overhead frontier: "
                                        "mitigation policies x attack "
                                        "probes through the campaign "
                                        "executor")
    p.add_argument("--policies", default="none,uniform-noise,deterland,"
                                         "stopwatch",
                   help="comma-separated mitigation policies")
    p.add_argument("--attacks", default="probe,theft,clocks",
                   help="comma-separated attack probes")
    p.add_argument("--duration", type=float, default=12.0,
                   help="simulated seconds per attack condition")
    p.add_argument("--seeds", type=_positive_int, default=1,
                   help="number of derived seeds per cell")
    p.add_argument("--seed-base", type=int, default=7,
                   help="base for seed derivation")
    p.add_argument("--bins", type=_positive_int, default=10,
                   help="histogram bins for the MI estimator")
    p.add_argument("--workload", default="fileserver",
                   choices=["fileserver", "echo"],
                   help="victim workload")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="write the frontier summary (e.g. "
                        "BENCH_mitigation.json), carrying the "
                        "trajectory")
    p.add_argument("--label", default="head",
                   help="label recorded in --output")
    p.add_argument("--json", action="store_true",
                   help="print the full summary as JSON")
    p.set_defaults(fn=cmd_mitigate)

    p = sub.add_parser("scale", help="multi-tenant fleet scaling: "
                                     "throughput and mediation delay vs "
                                     "tenant count, with placement and "
                                     "determinism verification")
    p.add_argument("--tenants", default="1,8,32",
                   help="comma-separated tenant counts")
    p.add_argument("--duration", type=float, default=3.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--shards", type=_positive_int, default=None,
                   help="ingress/egress shard count (default 1)")
    p.add_argument("--workload", default="echo",
                   help="any registry workload name "
                        "(see `repro workloads`)")
    p.add_argument("--workload-param", action="append", default=None,
                   metavar="KEY=VALUE",
                   help="override a workload default (repeatable; JSON "
                        "values accepted, e.g. --workload-param n=4)")
    p.add_argument("--clients", type=_positive_int, default=1,
                   help="client machines per tenant VM")
    p.add_argument("--rate", type=float, default=40.0,
                   help="per-client request rate (echo/nfs)")
    p.add_argument("--machines", type=_positive_int, default=None,
                   help="pin the fleet size (default: auto-size)")
    p.add_argument("--spec", default=None, metavar="TOML",
                   help="run a ScenarioSpec file instead of the "
                        "homogeneous sweep")
    p.add_argument("--once", action="store_true",
                   help="skip the same-seed determinism re-run")
    p.add_argument("--profile", action="store_true",
                   help="profile each cell and report subsystem CPU "
                        "attribution (measurement-only; the determinism "
                        "re-run still passes)")
    p.add_argument("--profile-out", default=None, metavar="JSON",
                   help="write the profile as speedscope JSON "
                        "(requires --profile)")
    p.set_defaults(fn=cmd_scale)

    p = sub.add_parser("workloads", help="list the deployable workload "
                                         "registry: name, scope, "
                                         "resource profile, defaults")
    p.add_argument("--json", action="store_true",
                   help="print the registry as JSON")
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("storage", help="erasure-coded storage tenant "
                                       "under a host crash: k-of-n "
                                       "share repair across the "
                                       "mediated fabric, invariant-"
                                       "gated")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--duration", type=float, default=6.0,
                   help="simulated seconds (includes a 1.5s drain)")
    p.add_argument("--k", type=_positive_int, default=2,
                   help="data shares per object")
    p.add_argument("--n", type=_positive_int, default=3,
                   help="total shares == tenant VMs")
    p.add_argument("--object-size", type=_positive_int, default=8192,
                   help="bytes per stored object")
    p.add_argument("--objects", type=_positive_int, default=3,
                   help="objects in the client's working set")
    p.add_argument("--crash-at", type=float, default=1.2,
                   help="when the share-holding host is condemned")
    p.add_argument("--once", action="store_true",
                   help="skip the same-seed determinism replay")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="append the cell entry to a trajectory file "
                        "(e.g. BENCH_storage.json)")
    p.add_argument("--label", default="head",
                   help="label recorded in --output")
    p.add_argument("--json", action="store_true",
                   help="print the full cell result as JSON")
    p.add_argument("--profile", action="store_true",
                   help="profile the primary run and report subsystem "
                        "CPU attribution (measurement-only)")
    p.set_defaults(fn=cmd_storage)

    p = sub.add_parser("bench-kernel", help="event-loop throughput on "
                                            "the consolidated fleet "
                                            "cell; writes "
                                            "BENCH_kernel.json and "
                                            "gates regressions")
    p.add_argument("--tenants", type=_positive_int, default=32)
    p.add_argument("--duration", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--rate", type=float, default=30.0,
                   help="per-client request rate")
    p.add_argument("--repeats", type=_positive_int, default=2,
                   help="warm in-process repeats (signatures must match)")
    p.add_argument("--output", default="BENCH_kernel.json",
                   help="artifact path (atomic write)")
    p.add_argument("--baseline", default=None, metavar="JSON",
                   help="baseline for the regression gate (default: "
                        "the existing --output file)")
    p.add_argument("--check-regression", action="store_true",
                   help="exit non-zero when events/CPU-s drops >20%% "
                        "below the baseline")
    p.add_argument("--label", default="head",
                   help="trajectory label recorded in the artifact")
    p.add_argument("--no-write", action="store_true",
                   help="measure and gate only; leave the artifact "
                        "untouched")
    p.add_argument("--profile", action="store_true",
                   help="run one extra profiled repeat (headline "
                        "metrics stay unprofiled; the profiled run's "
                        "egress signature must match byte-for-byte)")
    p.add_argument("--profile-out", default=None, metavar="JSON",
                   help="write the profile as speedscope JSON "
                        "(requires --profile)")
    p.set_defaults(fn=cmd_bench_kernel)

    from repro.bench.cli import add_bench_parser
    add_bench_parser(sub)

    from repro.campaign.cli import add_campaign_parser
    add_campaign_parser(sub)

    p = sub.add_parser("list", help="list experiments")
    p.set_defaults(fn=cmd_list)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
