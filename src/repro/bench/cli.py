"""``repro bench``: run named benchmarks, gate and browse trajectories.

Subcommands::

    repro bench run --benchmark kernel.scale32 [--profile] [--gate]
    repro bench compare [--path BENCH_kernel.json] [--gate]
    repro bench history [--path BENCH_kernel.json]
    repro bench migrate BENCH_kernel.json [...]
    repro bench list

``run`` executes a registered benchmark, appends one schema-versioned
entry to the family trajectory and reports the regression gate against
the prior entries (the freshly appended entry never gates against
itself).  ``compare`` re-gates the *last* recorded entry against its
history -- that is the CI job's cheap post-hoc check.  Both exit
non-zero on a regression; ``--gate`` additionally fails when there is
no comparable history at all (a gate that silently checks nothing).
"""

import argparse
import json
from typing import Any, Dict, List, Optional, Sequence


def _parse_value(text: str) -> Any:
    """``--set`` values: JSON if it parses, bare string otherwise."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_set(pairs: Optional[Sequence[str]]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        overrides[key] = _parse_value(value)
    return overrides


def profile_lines(profile: Dict[str, Any], top: int = 8) -> List[str]:
    """Printable subsystem-attribution report for one profile summary."""
    from repro.analysis import format_table

    lines = ["Subsystem CPU attribution:"]
    total = sum(profile.get("subsystems", {}).values()) or 1.0
    lines.append(format_table(
        ["subsystem", "seconds", "share"],
        [(name, f"{seconds:.4f}", f"{100.0 * seconds / total:.1f}%")
         for name, seconds in profile.get("subsystems", {}).items()]))
    hottest = profile.get("hottest", ())[:top]
    if hottest:
        lines.append(f"Hottest callbacks (top {len(hottest)}):")
        lines.append(format_table(
            ["subsystem", "callback", "calls", "seconds"],
            [(row["subsystem"], row["callback"], row["calls"],
              f"{row['seconds']:.4f}") for row in hottest]))
    return lines


def _gate_report(gate: Dict[str, Any], strict: bool) -> bool:
    """Print the gate verdict; returns True when the caller must fail."""
    for line in gate.get("detail", ()):
        print(f"  {line}")
    for problem in gate.get("problems", ()):
        print(f"  FAIL: {problem}")
    if gate["problems"]:
        print(f"gate: FAIL ({len(gate['problems'])} problems, "
              f"{gate['comparable']} comparable entries)")
        return True
    if not gate["checked"] and strict:
        print("gate: FAIL (--gate requires a comparable prior entry; "
              "none found)")
        return True
    print(f"gate: {'PASS' if gate['checked'] else 'PASS (vacuous)'} "
          f"({gate['comparable']} comparable entries)")
    return False


def cmd_bench_run(args) -> None:
    from repro.bench import (append_entry, compare_entry, default_path,
                             empty_trajectory, load_trajectory,
                             run_benchmark)

    overrides = _parse_set(args.set)
    entry = run_benchmark(args.benchmark, label=args.label,
                          profile=args.profile, overrides=overrides)
    path = args.output or default_path(args.benchmark)
    prior = load_trajectory(path) or empty_trajectory()
    gate = compare_entry(entry, prior, tolerance=args.tolerance)
    if not args.no_write:
        append_entry(path, entry)

    if args.profile_out:
        profile = entry.get("profile")
        if not profile:
            raise SystemExit(
                f"--profile-out needs a profile; run with --profile "
                f"(benchmark {args.benchmark!r} produced none)")
        from repro.prof.export import write_speedscope
        write_speedscope(args.profile_out, profile, name=args.benchmark)

    if args.json:
        print(json.dumps({"entry": entry, "gate": gate,
                          "path": None if args.no_write else path},
                         indent=2))
        if not gate["ok"] or (args.gate and not gate["checked"]):
            raise SystemExit(1)
    else:
        metric = entry.get("primary_metric")
        value = entry["metrics"].get(metric) if metric else None
        headline = (f"{metric}={value:g}" if isinstance(
            value, (int, float)) else f"{len(entry['metrics'])} metrics")
        print(f"{entry['benchmark']} [{entry['label']}]: {headline}")
        if entry.get("egress_signature"):
            print(f"egress signature "
                  f"{entry['egress_signature'][:16]}...")
        if entry.get("profile"):
            for line in profile_lines(entry["profile"]):
                print(line)
        if args.profile_out:
            print(f"wrote speedscope profile to {args.profile_out} "
                  f"(open in https://www.speedscope.app)")
        if not args.no_write:
            print(f"appended entry to {path}")
        if _gate_report(gate, strict=args.gate):
            raise SystemExit(1)


def _resolve_path(args) -> str:
    from repro.bench import default_path

    if args.path:
        return args.path
    if getattr(args, "benchmark", None):
        return default_path(args.benchmark)
    raise SystemExit("pass --path (or --benchmark to use its default "
                     "trajectory file)")


def cmd_bench_compare(args) -> None:
    from repro.bench import compare_entry, load_trajectory

    path = _resolve_path(args)
    trajectory = load_trajectory(path)
    if trajectory is None:
        raise SystemExit(f"no trajectory at {path}")
    entries = [entry for entry in trajectory.get("entries", ())
               if args.benchmark is None
               or entry.get("benchmark") == args.benchmark]
    if not entries:
        raise SystemExit(
            f"{path} has no entries"
            + (f" for benchmark {args.benchmark!r}" if args.benchmark
               else ""))
    candidate = entries[-1]
    gate = compare_entry(candidate, trajectory, tolerance=args.tolerance)
    if args.json:
        print(json.dumps({"candidate": candidate, "gate": gate},
                         indent=2))
        if not gate["ok"] or (args.gate and not gate["checked"]):
            raise SystemExit(1)
        return
    print(f"comparing last entry of {path}: "
          f"{candidate['benchmark']} [{candidate['label']}] "
          f"recorded {candidate.get('recorded')}")
    if _gate_report(gate, strict=args.gate):
        raise SystemExit(1)


def cmd_bench_history(args) -> None:
    from repro.analysis import format_table
    from repro.bench import history_rows, load_trajectory

    path = _resolve_path(args)
    trajectory = load_trajectory(path)
    if trajectory is None:
        raise SystemExit(f"no trajectory at {path}")
    rows = history_rows(trajectory, benchmark=args.benchmark)
    print(f"{path}: {len(rows)} entries")
    print(format_table(["label", "recorded", "benchmark", "metric",
                        "value", "signature"], rows))


def cmd_bench_migrate(args) -> None:
    from repro.bench import (TRAJECTORY_SCHEMA, BenchSchemaError,
                             migrate_snapshot, write_trajectory)

    failed = False
    for path in args.paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"{path}: SKIP ({exc})")
            failed = True
            continue
        if doc.get("schema") == TRAJECTORY_SCHEMA:
            print(f"{path}: already migrated "
                  f"({len(doc.get('entries', ()))} entries)")
            continue
        try:
            trajectory = migrate_snapshot(doc)
        except BenchSchemaError as exc:
            print(f"{path}: FAIL ({exc})")
            failed = True
            continue
        write_trajectory(path, trajectory)
        print(f"{path}: migrated legacy snapshot -> "
              f"{len(trajectory['entries'])} trajectory entries")
    if failed:
        raise SystemExit(1)


def cmd_bench_list(args) -> None:
    from repro.bench import benchmark_names, default_path

    for name in benchmark_names():
        family = name.replace("<N>", "32")
        print(f"{name:24s} -> {default_path(family)}")


def add_bench_parser(sub) -> None:
    """Register the ``bench`` subcommand on the main CLI's subparsers."""
    p = sub.add_parser(
        "bench", help="unified benchmark registry: run named "
                      "benchmarks, append trajectory entries, gate "
                      "regressions")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    r = bench_sub.add_parser("run", help="run a benchmark and append "
                                         "one trajectory entry")
    r.add_argument("--benchmark", required=True,
                   help="benchmark id (repro bench list)")
    r.add_argument("--label", default="head",
                   help="label recorded on the entry")
    r.add_argument("--output", default=None, metavar="PATH",
                   help="trajectory file (default: the family's "
                        "BENCH_<family>.json)")
    r.add_argument("--no-write", action="store_true",
                   help="measure and gate only; append nothing")
    r.add_argument("--profile", action="store_true",
                   help="attach a subsystem CPU profile to the entry "
                        "(measurement-only; never changes metrics)")
    r.add_argument("--profile-out", default=None, metavar="JSON",
                   help="also write the profile as speedscope JSON")
    r.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="override a benchmark parameter (repeatable; "
                        "values parse as JSON when possible)")
    r.add_argument("--tolerance", type=float, default=None,
                   help="regression tolerance (default 0.20)")
    r.add_argument("--gate", action="store_true",
                   help="fail when there is no comparable history")
    r.add_argument("--json", action="store_true")
    r.set_defaults(fn=cmd_bench_run)

    c = bench_sub.add_parser("compare", help="re-gate the last recorded "
                                             "entry against its history")
    c.add_argument("--path", default=None, metavar="PATH",
                   help="trajectory file")
    c.add_argument("--benchmark", default=None,
                   help="restrict to one benchmark id")
    c.add_argument("--tolerance", type=float, default=None)
    c.add_argument("--gate", action="store_true",
                   help="fail when there is no comparable history")
    c.add_argument("--json", action="store_true")
    c.set_defaults(fn=cmd_bench_compare)

    h = bench_sub.add_parser("history", help="list a trajectory's "
                                             "entries")
    h.add_argument("--path", default=None, metavar="PATH")
    h.add_argument("--benchmark", default=None)
    h.set_defaults(fn=cmd_bench_history)

    m = bench_sub.add_parser("migrate", help="rewrite legacy BENCH_* "
                                             "snapshots as trajectories")
    m.add_argument("paths", nargs="+", metavar="PATH")
    m.set_defaults(fn=cmd_bench_migrate)

    ls = bench_sub.add_parser("list", help="registered benchmark ids")
    ls.set_defaults(fn=cmd_bench_list)

    from repro.bench.schema import DEFAULT_TOLERANCE
    for sp in (r, c):
        sp.set_defaults(tolerance=DEFAULT_TOLERANCE)
