"""The unified benchmark artifact: versioned entries, append-only
trajectories, a one-shot legacy migrator, and the regression gate.

Before this module the repo carried three mutually incompatible
``BENCH_*.json`` snapshots that every run silently overwrote -- the
speed curve the ROADMAP asks for did not exist.  Now every benchmark
run appends one **entry** ::

    {"schema": "repro.bench/1", "benchmark": "kernel.scale32",
     "label": "head", "recorded": "<iso8601>",
     "config": {...},                  # what was run (gates match on it)
     "metrics": {...},                 # flat name -> number dict
     "primary_metric": "events_per_cpu_second",
     "higher_is_better": true,
     "egress_signature": "856f...",    # optional determinism fingerprint
     "profile": {...}}                 # optional repro.prof summary

to a **trajectory** file ::

    {"schema": "repro.bench.trajectory/1", "entries": [entry, ...]}

Entries are never rewritten; :func:`append_entry` loads (migrating any
legacy single-snapshot file in place), validates, appends and writes
back atomically.  :func:`compare_entry` is the gate: a candidate fails
against the **best** prior comparable entry (same benchmark id and
config) when its primary metric drops more than ``tolerance`` (default
20 %), and against the most recent comparable entry when the egress
signature changed.
"""

import datetime
import json
from typing import Any, Dict, List, Optional

#: schema version stamps; bump on incompatible layout changes
ENTRY_SCHEMA = "repro.bench/1"
TRAJECTORY_SCHEMA = "repro.bench.trajectory/1"

#: regression tolerance on the primary metric (fraction of baseline)
DEFAULT_TOLERANCE = 0.20


class BenchSchemaError(ValueError):
    """A malformed entry or trajectory document."""


def _utcnow() -> str:
    return datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ")


def make_entry(benchmark: str,
               config: Optional[Dict[str, Any]],
               metrics: Dict[str, Any],
               primary_metric: Optional[str] = None,
               label: str = "head",
               egress_signature: Optional[str] = None,
               profile: Optional[Dict[str, Any]] = None,
               higher_is_better: bool = True,
               recorded: Optional[str] = None) -> Dict[str, Any]:
    """Build (and validate) one trajectory entry."""
    entry: Dict[str, Any] = {
        "schema": ENTRY_SCHEMA,
        "benchmark": benchmark,
        "label": label,
        "recorded": recorded if recorded is not None else _utcnow(),
        "config": config,
        "metrics": dict(metrics),
        "primary_metric": primary_metric,
        "higher_is_better": higher_is_better,
        "egress_signature": egress_signature,
    }
    if profile is not None:
        entry["profile"] = profile
    problems = validate_entry(entry)
    if problems:
        raise BenchSchemaError(f"refusing to build invalid entry: "
                               f"{problems}")
    return entry


def validate_entry(entry: Any) -> List[str]:
    """Structural problems with one entry (empty list means valid)."""
    if not isinstance(entry, dict):
        return ["entry is not an object"]
    problems: List[str] = []
    if entry.get("schema") != ENTRY_SCHEMA:
        problems.append(f"schema is {entry.get('schema')!r}, expected "
                        f"{ENTRY_SCHEMA!r}")
    if not entry.get("benchmark") or not isinstance(
            entry.get("benchmark"), str):
        problems.append("benchmark id missing")
    metrics = entry.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("metrics dict missing or empty")
        metrics = {}
    bad = [name for name, value in metrics.items()
           if not isinstance(value, (int, float, bool))
           and value is not None]
    if bad:
        problems.append(f"non-numeric metrics: {sorted(bad)}")
    primary = entry.get("primary_metric")
    if primary is not None and primary not in metrics:
        problems.append(f"primary_metric {primary!r} not in metrics")
    config = entry.get("config")
    if config is not None and not isinstance(config, dict):
        problems.append("config must be an object or null")
    return problems


def empty_trajectory() -> Dict[str, Any]:
    return {"schema": TRAJECTORY_SCHEMA, "entries": []}


# ---------------------------------------------------------------------------
# the one-shot migrator for the pre-schema BENCH_* snapshots
# ---------------------------------------------------------------------------
def _legacy_kernel_entries(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    benchmark = doc.get("benchmark", "kernel")
    entries = []
    for item in doc.get("trajectory", ()):
        metrics = {name: value for name, value in item.items()
                   if name != "label"
                   and isinstance(value, (int, float, bool))}
        if not metrics:
            continue
        entries.append(make_entry(
            benchmark, doc.get("config"), metrics,
            primary_metric=("events_per_cpu_second"
                            if "events_per_cpu_second" in metrics
                            else None),
            label=item.get("label", "previous"), recorded="migrated"))
    metrics = {name: value for name, value in doc.items()
               if isinstance(value, (int, float, bool))
               and name not in ("repeats",)}
    entries.append(make_entry(
        benchmark, doc.get("config"), metrics,
        primary_metric=("events_per_cpu_second"
                        if "events_per_cpu_second" in metrics else None),
        label=doc.get("label", "head"),
        egress_signature=doc.get("egress_signature"),
        recorded="migrated"))
    return entries


def _legacy_summary_entries(doc: Dict[str, Any],
                            benchmark: str) -> List[Dict[str, Any]]:
    entries = []
    for item in doc.get("trajectory", ()):
        metrics = {name: value for name, value in item.items()
                   if name != "label"
                   and isinstance(value, (int, float, bool))}
        if not metrics:
            continue
        entries.append(make_entry(benchmark, None, metrics,
                                  label=item.get("label", "previous"),
                                  recorded="migrated"))
    metrics = {name: value for name, value in doc.items()
               if isinstance(value, (int, float, bool))}
    metrics["violations"] = len(doc.get("violations", ()))
    metrics["failures"] = len(doc.get("failures", ()))
    entries.append(make_entry(benchmark, None, metrics,
                              label=doc.get("label", "head"),
                              recorded="migrated"))
    return entries


def migrate_snapshot(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a legacy single-snapshot ``BENCH_*`` document (kernel,
    chaos or mitigation flavour) into a trajectory: the snapshot's own
    embedded prior-runs list becomes the leading entries, the snapshot
    itself the last."""
    if doc.get("schema") == TRAJECTORY_SCHEMA:
        return doc
    if doc.get("schema") == ENTRY_SCHEMA:
        return {"schema": TRAJECTORY_SCHEMA, "entries": [doc]}
    trajectory = empty_trajectory()
    if "events_per_cpu_second" in doc or str(
            doc.get("benchmark", "")).startswith("kernel"):
        trajectory["entries"] = _legacy_kernel_entries(doc)
    elif "evacuations" in doc or "recovery_p50" in doc:
        trajectory["entries"] = _legacy_summary_entries(
            doc, "chaos.campaign")
    elif "gate" in doc or "rows" in doc:
        trajectory["entries"] = _legacy_summary_entries(
            doc, "mitigation.frontier")
    else:
        raise BenchSchemaError(
            "unrecognised legacy BENCH document: expected a kernel, "
            "chaos or mitigation snapshot")
    return trajectory


# ---------------------------------------------------------------------------
# trajectory IO
# ---------------------------------------------------------------------------
def load_trajectory(path: str) -> Optional[Dict[str, Any]]:
    """The trajectory at ``path`` (migrating a legacy snapshot in
    memory), or ``None`` when the file does not exist."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        return None
    except ValueError as exc:
        raise BenchSchemaError(f"cannot parse {path}: {exc}") from exc
    trajectory = migrate_snapshot(doc)
    if not isinstance(trajectory.get("entries"), list):
        raise BenchSchemaError(f"{path}: trajectory has no entries list")
    return trajectory


def write_trajectory(path: str, trajectory: Dict[str, Any]) -> str:
    from repro.ioutil import atomic_write_json

    return atomic_write_json(path, trajectory, indent=2)


def append_entry(path: str, entry: Dict[str, Any]) -> Dict[str, Any]:
    """Append ``entry`` to the trajectory at ``path`` (creating or
    migrating the file as needed); returns the updated trajectory."""
    problems = validate_entry(entry)
    if problems:
        raise BenchSchemaError(f"refusing to append invalid entry: "
                               f"{problems}")
    trajectory = load_trajectory(path)
    if trajectory is None:
        trajectory = empty_trajectory()
    trajectory["entries"].append(entry)
    write_trajectory(path, trajectory)
    return trajectory


# ---------------------------------------------------------------------------
# the gate
# ---------------------------------------------------------------------------
def comparable_entries(trajectory: Dict[str, Any],
                       entry: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Prior entries gate-comparable to ``entry``: same benchmark id
    and equal config (entries with unknown/null config only compare to
    other null-config entries -- a mismatched workload must never read
    as a regression)."""
    return [prior for prior in trajectory.get("entries", ())
            if prior is not entry
            and prior.get("benchmark") == entry.get("benchmark")
            and prior.get("config") == entry.get("config")]


def best_entry(entries: List[Dict[str, Any]], metric: str,
               higher_is_better: bool = True) -> Optional[Dict[str, Any]]:
    """The best prior entry by ``metric`` (None when nothing has it)."""
    scored = [prior for prior in entries
              if isinstance(prior.get("metrics", {}).get(metric),
                            (int, float))]
    if not scored:
        return None
    return (max if higher_is_better else min)(
        scored, key=lambda prior: prior["metrics"][metric])


def compare_entry(entry: Dict[str, Any], trajectory: Dict[str, Any],
                  tolerance: float = DEFAULT_TOLERANCE) -> Dict[str, Any]:
    """Gate ``entry`` against the trajectory's history.

    Returns ``{"ok", "checked", "problems", "detail", ...}``; ``ok`` is
    False when the primary metric regressed beyond ``tolerance`` vs the
    best comparable prior entry, or the egress signature changed vs the
    most recent comparable one.  With no comparable history the gate
    passes vacuously (``checked=False``).
    """
    priors = comparable_entries(trajectory, entry)
    problems: List[str] = []
    detail: List[str] = []
    checked = False
    metric = entry.get("primary_metric")
    if metric is not None and priors:
        higher = bool(entry.get("higher_is_better", True))
        baseline = best_entry(priors, metric, higher_is_better=higher)
        current = entry.get("metrics", {}).get(metric)
        if baseline is not None and isinstance(current, (int, float)):
            checked = True
            base = baseline["metrics"][metric]
            floor = base * (1.0 - tolerance) if higher \
                else base * (1.0 + tolerance)
            regressed = current < floor if higher else current > floor
            if regressed:
                problems.append(
                    f"{metric} regressed: {current:g} vs best "
                    f"{base:g} ({baseline.get('label')!r}), "
                    f"{'floor' if higher else 'ceiling'} {floor:g} "
                    f"(tolerance {tolerance:.0%})")
            else:
                detail.append(f"{metric} {current:g} within "
                              f"{tolerance:.0%} of best {base:g} "
                              f"({baseline.get('label')!r})")
    signature = entry.get("egress_signature")
    if signature is not None:
        with_signature = [prior for prior in priors
                          if prior.get("egress_signature") is not None]
        if with_signature:
            checked = True
            previous = with_signature[-1]
            if previous["egress_signature"] != signature:
                problems.append(
                    f"egress signature changed: {signature[:16]}... vs "
                    f"{previous['egress_signature'][:16]}... "
                    f"({previous.get('label')!r}) -- observable "
                    f"behaviour diverged")
            else:
                detail.append(f"egress signature {signature[:16]}... "
                              f"matches {previous.get('label')!r}")
    if not checked:
        detail.append("no comparable prior entry (first run for this "
                      "benchmark/config); gate passes vacuously")
    return {
        "ok": not problems,
        "checked": checked,
        "benchmark": entry.get("benchmark"),
        "comparable": len(priors),
        "problems": problems,
        "detail": detail,
    }


def history_rows(trajectory: Dict[str, Any],
                 benchmark: Optional[str] = None) -> List[tuple]:
    """``(label, recorded, benchmark, primary metric, value,
    signature-prefix)`` per entry, for the history table."""
    rows = []
    for entry in trajectory.get("entries", ()):
        if benchmark is not None and entry.get("benchmark") != benchmark:
            continue
        metric = entry.get("primary_metric")
        value = (entry.get("metrics", {}).get(metric)
                 if metric is not None else None)
        signature = entry.get("egress_signature")
        rows.append((entry.get("label"), entry.get("recorded"),
                     entry.get("benchmark"),
                     metric or "-",
                     round(value, 1) if isinstance(value, float)
                     else (value if value is not None else "-"),
                     signature[:12] + "..." if signature else "-"))
    return rows
