"""Named benchmarks: one id -> one trajectory-entry producer.

The registry is what ``repro bench run --benchmark <id>`` dispatches
through.  Ids are dotted: the first segment is the **family** (which
picks the default ``BENCH_<family>.json`` trajectory file), the rest
names the cell.  ``kernel.scale<N>`` is parameterised -- any tenant
count is a valid id -- the rest are fixed cells with overridable
keyword parameters (``--set key=value`` on the CLI).
"""

import re
from typing import Any, Callable, Dict, List, Optional

from repro.bench.schema import make_entry

_KERNEL_SCALE = re.compile(r"^kernel\.scale(\d+)$")


class UnknownBenchmark(KeyError):
    """No registered benchmark matches the requested id."""


def default_path(benchmark: str) -> str:
    """The family trajectory file a benchmark appends to by default."""
    return f"BENCH_{benchmark.split('.', 1)[0]}.json"


# ---------------------------------------------------------------------------
# entry producers
# ---------------------------------------------------------------------------
def _kernel_benchmark(tenants: int, label: str, profile: bool,
                      **overrides: Any) -> Dict[str, Any]:
    from repro.analysis.benchkernel import kernel_entry, run_kernel_bench

    params = {"duration": 2.0, "seed": 1, "request_rate": 30.0,
              "repeats": 2}
    params.update(overrides)
    result = run_kernel_bench(tenants=tenants, profile=profile, **params)
    return kernel_entry(result, label=label)


def _chaos_benchmark(label: str, profile: bool,
                     **overrides: Any) -> Dict[str, Any]:
    from repro.analysis.chaos import chaos_entry, run_chaos_campaign
    from repro.sim.rng import derive_root_seed

    params = {"seeds": 2, "seed_base": 101, "scenarios": ("single",),
              "duration": 3.0, "rate": 1.2, "jobs": 1}
    params.update(overrides)
    seeds = [derive_root_seed(int(params.pop("seed_base")), i)
             for i in range(int(params.pop("seeds")))]
    scenarios = params.pop("scenarios")
    if isinstance(scenarios, str):
        scenarios = tuple(s for s in scenarios.split(",") if s)
    summary = run_chaos_campaign(seeds=seeds, scenarios=scenarios,
                                 profile=profile, **params)
    return chaos_entry(summary, label=label,
                       config={"seeds": len(seeds),
                               "scenarios": list(scenarios),
                               "duration": params["duration"],
                               "rate": params["rate"]})


def _mitigation_benchmark(label: str, profile: bool,
                          **overrides: Any) -> Dict[str, Any]:
    from repro.analysis.mitigation import (mitigation_entry,
                                           mitigation_frontier)
    from repro.sim.rng import derive_root_seed

    params = {"policies": ("stopwatch", "none"), "attacks": ("probe",),
              "duration": 3.0, "seeds": 1, "seed_base": 7, "jobs": 1}
    params.update(overrides)
    seeds = [derive_root_seed(int(params.pop("seed_base")), i)
             for i in range(int(params.pop("seeds")))]
    for key in ("policies", "attacks"):
        if isinstance(params[key], str):
            params[key] = tuple(s for s in params[key].split(",") if s)
    summary = mitigation_frontier(seeds=seeds, **params)
    return mitigation_entry(summary, label=label,
                            config={"policies": list(params["policies"]),
                                    "attacks": list(params["attacks"]),
                                    "duration": params["duration"],
                                    "seeds": len(seeds)})


def _storage_benchmark(label: str, profile: bool,
                       **overrides: Any) -> Dict[str, Any]:
    from repro.analysis.storage import (run_storage_repair_cell,
                                        storage_entry)

    params = {"seed": 7, "duration": 6.0, "k": 2, "n": 3,
              "object_size": 8192, "objects": 3, "crash_at": 1.2}
    params.update(overrides)
    result = run_storage_repair_cell(profile=profile, **params)
    return storage_entry(result, label=label,
                         config={key: params[key]
                                 for key in ("seed", "duration", "k", "n",
                                             "object_size", "objects",
                                             "crash_at")})


#: fixed-id benchmarks (parameterised families are resolved separately)
BENCHMARKS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "chaos.storm": _chaos_benchmark,
    "mitigation.frontier": _mitigation_benchmark,
    "storage.repair": _storage_benchmark,
}


def benchmark_names() -> List[str]:
    return sorted(BENCHMARKS) + ["kernel.scale<N>"]


def run_benchmark(benchmark: str, label: str = "head",
                  profile: bool = False,
                  overrides: Optional[Dict[str, Any]] = None
                  ) -> Dict[str, Any]:
    """Run the named benchmark and return its trajectory entry."""
    overrides = dict(overrides or {})
    match = _KERNEL_SCALE.match(benchmark)
    if match:
        return _kernel_benchmark(int(match.group(1)), label=label,
                                 profile=profile, **overrides)
    runner = BENCHMARKS.get(benchmark)
    if runner is None:
        raise UnknownBenchmark(
            f"unknown benchmark {benchmark!r}; choose from "
            f"{benchmark_names()}")
    return runner(label=label, profile=profile, **overrides)


# re-exported for callers building ad-hoc entries
__all__ = ["BENCHMARKS", "UnknownBenchmark", "benchmark_names",
           "default_path", "make_entry", "run_benchmark"]
