"""The unified benchmark registry: versioned trajectory artifacts,
named benchmark runners, and the regression gate.

- :mod:`repro.bench.schema` -- entry/trajectory schemas, the legacy
  ``BENCH_*`` snapshot migrator, append-only IO and the compare gate.
- :mod:`repro.bench.registry` -- named benchmarks (``kernel.scale<N>``,
  ``chaos.storm``, ``mitigation.frontier``) that produce entries.
- :mod:`repro.bench.cli` -- ``repro bench run/compare/history/migrate``.
"""

from repro.bench.registry import (BENCHMARKS, UnknownBenchmark,
                                  benchmark_names, default_path,
                                  run_benchmark)
from repro.bench.schema import (DEFAULT_TOLERANCE, ENTRY_SCHEMA,
                                TRAJECTORY_SCHEMA, BenchSchemaError,
                                append_entry, best_entry,
                                comparable_entries, compare_entry,
                                empty_trajectory, history_rows,
                                load_trajectory, make_entry,
                                migrate_snapshot, validate_entry,
                                write_trajectory)

__all__ = [
    "BENCHMARKS", "BenchSchemaError", "DEFAULT_TOLERANCE",
    "ENTRY_SCHEMA", "TRAJECTORY_SCHEMA", "UnknownBenchmark",
    "append_entry", "benchmark_names", "best_entry",
    "comparable_entries", "compare_entry", "default_path",
    "empty_trajectory", "history_rows", "load_trajectory", "make_entry",
    "migrate_snapshot", "run_benchmark", "validate_entry",
    "write_trajectory",
]
