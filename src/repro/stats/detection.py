"""Chi-squared coresidence detection (Fig. 1(b,c), Fig. 4(b)).

The paper's attacker collects ``n`` timing observations and runs a
chi-squared goodness-of-fit test of the null hypothesis "I am NOT
coresident with the victim" (observations ~ the no-victim distribution
``p``) against data actually drawn from the victim-influenced
distribution ``q``.  "Observations needed" is the smallest ``n`` at which
the test rejects the null at the requested confidence with probability at
least ``power`` (we use the conventional asymptotic: the test statistic
under ``q`` is noncentral chi-squared with noncentrality ``n * delta``
where ``delta = sum_i (q_i - p_i)^2 / p_i``).
"""

from typing import List, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.stats.distributions import Distribution


def equiprobable_bin_edges(dist: Distribution, bins: int = 10) -> List[float]:
    """Interior bin edges making ``bins`` equiprobable cells under ``dist``.

    Binning under the *null* distribution is the standard recipe: expected
    counts are equal, so the chi-squared approximation is well behaved.
    """
    if bins < 2:
        raise ValueError(f"need at least 2 bins, got {bins}")
    return [dist.quantile(i / bins) for i in range(1, bins)]


def bin_probabilities(dist: Distribution,
                      edges: Sequence[float]) -> np.ndarray:
    """Cell probabilities of ``dist`` over the bins defined by ``edges``
    (with implicit -inf / +inf outer edges)."""
    cdf_values = [0.0] + [dist.cdf(e) for e in edges] + [1.0]
    probs = np.diff(np.array(cdf_values))
    if np.any(probs < -1e-12):
        raise ValueError("bin edges must be sorted")
    return np.clip(probs, 0.0, 1.0)


def chi_square_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """``delta = sum (q_i - p_i)^2 / p_i`` -- per-observation noncentrality.

    Cells where the null probability is ~0 are dropped (the attacker would
    merge such cells in practice).
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("p and q must have the same number of cells")
    mask = p > 1e-12
    return float(np.sum((q[mask] - p[mask]) ** 2 / p[mask]))


def observations_to_detect(p: np.ndarray, q: np.ndarray, confidence: float,
                           power: float = 0.5, max_n: int = 10**7) -> int:
    """Smallest n such that a chi-squared test of null ``p`` on n draws
    from ``q`` rejects at the given ``confidence`` with prob >= ``power``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    if not 0.0 < power < 1.0:
        raise ValueError(f"power must be in (0,1), got {power}")
    delta = chi_square_divergence(p, q)
    if delta <= 0:
        return max_n  # indistinguishable distributions
    df = int(np.count_nonzero(np.asarray(p) > 1e-12)) - 1
    if df < 1:
        raise ValueError("need at least two non-empty cells")
    critical = scipy_stats.chi2.ppf(confidence, df)

    def detects(n: int) -> bool:
        return scipy_stats.ncx2.sf(critical, df, n * delta) >= power

    if detects(1):
        return 1
    low, high = 1, 2
    while not detects(high):
        low, high = high, high * 2
        if high > max_n:
            return max_n
    while high - low > 1:
        mid = (low + high) // 2
        if detects(mid):
            high = mid
        else:
            low = mid
    return high


def observations_curve(p: np.ndarray, q: np.ndarray,
                       confidences: Sequence[float],
                       power: float = 0.5) -> List[Tuple[float, int]]:
    """(confidence, observations needed) pairs -- one Fig. 1(b)/4(b) line."""
    return [(c, observations_to_detect(p, q, c, power=power))
            for c in confidences]


def empirical_observations_to_detect(null_dist: Distribution,
                                     alt_dist: Distribution,
                                     confidence: float, rng,
                                     bins: int = 10,
                                     trials: int = 200,
                                     power: float = 0.5,
                                     max_n: int = 10**6) -> int:
    """Monte-Carlo version: actually draw samples from ``alt_dist``, run
    Pearson's test against ``null_dist``'s cell probabilities, and find the
    smallest n detecting with frequency >= ``power``.

    Used to validate the analytic calculator and to process simulator
    traces (Fig. 4(b)).
    """
    edges = equiprobable_bin_edges(null_dist, bins)
    p = bin_probabilities(null_dist, edges)
    df = bins - 1
    critical = scipy_stats.chi2.ppf(confidence, df)
    edge_arr = np.array(edges)

    def reject_rate(n: int) -> float:
        rejections = 0
        for _ in range(trials):
            draws = np.array([alt_dist.sample(rng) for _ in range(n)])
            counts = np.bincount(np.searchsorted(edge_arr, draws),
                                 minlength=bins)[:bins]
            expected = p * n
            mask = expected > 0
            statistic = np.sum(
                (counts[mask] - expected[mask]) ** 2 / expected[mask])
            if statistic > critical:
                rejections += 1
        return rejections / trials

    n = 1
    while n <= max_n:
        if reject_rate(n) >= power:
            return n
        n = max(n + 1, int(n * 1.5))
    return max_n
