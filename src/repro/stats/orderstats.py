"""Order statistics and the appendix theorems.

Implements the general independent-but-not-identically-distributed
order-statistic CDF (Gungor et al., Result 2.4, as used in the paper's
appendix)::

    F_{r:m}(x) = sum_{l=r}^{m} (-1)^{l-r} C(l-1, r-1)
                 sum_{|I|=l} prod_{i in I} F_i(x)

plus the Kolmogorov-Smirnov distance and numeric checks of appendix
Theorems 3 and 4.
"""

import itertools
from math import comb
from typing import Callable, List, Sequence

import numpy as np

CdfFn = Callable[[float], float]


def order_statistic_cdf(cdfs: Sequence[CdfFn], r: int) -> CdfFn:
    """CDF of the r-th smallest of independent draws, one per CDF in
    ``cdfs`` (1-indexed r)."""
    m = len(cdfs)
    if not 1 <= r <= m:
        raise ValueError(f"order {r} out of range for {m} variables")

    def cdf(x: float) -> float:
        values = [f(x) for f in cdfs]
        total = 0.0
        for l in range(r, m + 1):
            sign = (-1) ** (l - r)
            coefficient = comb(l - 1, r - 1)
            subset_sum = 0.0
            for subset in itertools.combinations(range(m), l):
                product = 1.0
                for i in subset:
                    product *= values[i]
                subset_sum += product
            total += sign * coefficient * subset_sum
        return min(1.0, max(0.0, total))

    return cdf


def median_of_three_cdf(f1: CdfFn, f2: CdfFn, f3: CdfFn) -> CdfFn:
    """``F_{2:3}`` in closed form (cheaper than the general sum)::

        F1 F2 + F1 F3 + F2 F3 - 2 F1 F2 F3
    """

    def cdf(x: float) -> float:
        a, b, c = f1(x), f2(x), f3(x)
        return a * b + a * c + b * c - 2.0 * a * b * c

    return cdf


def ks_distance(f: CdfFn, g: CdfFn, grid: Sequence[float]) -> float:
    """``max_x |F(x) - G(x)|`` evaluated over ``grid``."""
    if len(grid) == 0:
        raise ValueError("ks_distance needs a non-empty grid")
    return max(abs(f(x) - g(x)) for x in grid)


def ks_distance_of_medians(f1: CdfFn, f1_victim: CdfFn, f2: CdfFn, f3: CdfFn,
                           grid: Sequence[float]) -> float:
    """``D(F_{2:3}, F'_{2:3})`` where the primed median replaces X1 with
    the victim-influenced X'1 (the quantity bounded by Theorem 3)."""
    med = median_of_three_cdf(f1, f2, f3)
    med_victim = median_of_three_cdf(f1_victim, f2, f3)
    return ks_distance(med, med_victim, grid)


def theorem3_bound_factor(f2: CdfFn, f3: CdfFn,
                          grid: Sequence[float]) -> float:
    """``max_x |F2 + F3 - 2 F2 F3|`` -- the attenuation factor from the
    proof of Theorem 3.

    The theorem states ``D(F_{2:3}, F'_{2:3}) <= factor * D(F1, F'1)`` with
    factor < 1 whenever F2, F3 overlap; Theorem 4 sharpens the factor to
    exactly 1/2 when F2 = F3.
    """
    return max(abs(f2(x) + f3(x) - 2.0 * f2(x) * f3(x)) for x in grid)


def default_grid(distributions, points: int = 2000) -> List[float]:
    """A grid covering the union of the distributions' supports."""
    lows, highs = zip(*(d.support() for d in distributions))
    return list(np.linspace(min(lows), max(highs), points))
