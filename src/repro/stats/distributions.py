"""Distribution objects used throughout the StopWatch analysis.

Every distribution exposes ``cdf(x)``, ``sample(rng)`` and ``mean()``.
The exponential family mirrors the paper's running example (baseline
``Exp(lambda)`` vs. victim ``Exp(lambda')``); :class:`MedianOfThree`
composes three component distributions into the distribution of their
median, which is the quantity StopWatch exposes to observers.
"""

import bisect
import math
from typing import List, Sequence

import numpy as np


class Distribution:
    """Abstract base: a real-valued distribution."""

    def cdf(self, x: float) -> float:
        raise NotImplementedError

    def sample(self, rng) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Expected value; numeric integration fallback for subclasses that
        do not override (assumes support in [lower, upper])."""
        lower, upper = self.support()
        xs = np.linspace(lower, upper, 20001)
        cdf = np.array([self.cdf(x) for x in xs])
        # E[X] = lower + integral of (1 - F) over [lower, upper] for
        # distributions bounded below.
        return lower + float(np.trapezoid(1.0 - cdf, xs))

    def support(self):
        """(lower, upper) with cdf(lower) ~ 0 and cdf(upper) ~ 1."""
        return (0.0, self.quantile(1.0 - 1e-9))

    def quantile(self, p: float) -> float:
        """Inverse CDF by bisection on :meth:`cdf` (override when closed
        form exists)."""
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile needs p in (0,1), got {p}")
        low, high = 0.0, 1.0
        while self.cdf(high) < p:
            high *= 2.0
            if high > 1e18:
                raise ValueError("quantile search diverged")
        for _ in range(200):
            mid = 0.5 * (low + high)
            if self.cdf(mid) < p:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    def samples(self, rng, n: int) -> List[float]:
        return [self.sample(rng) for _ in range(n)]


class Exponential(Distribution):
    """``Exp(rate)``: the paper's model for inter-event timings."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return 1.0 - math.exp(-self.rate * x)

    def quantile(self, p: float) -> float:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile needs p in (0,1), got {p}")
        return -math.log(1.0 - p) / self.rate

    def sample(self, rng) -> float:
        return rng.expovariate(self.rate)

    def mean(self) -> float:
        return 1.0 / self.rate

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate})"


class Uniform(Distribution):
    """``U(low, high)``: the classic timing-channel noise distribution."""

    def __init__(self, low: float, high: float):
        if high <= low:
            raise ValueError(f"need high > low, got [{low}, {high}]")
        self.low = low
        self.high = high

    def cdf(self, x: float) -> float:
        if x <= self.low:
            return 0.0
        if x >= self.high:
            return 1.0
        return (x - self.low) / (self.high - self.low)

    def quantile(self, p: float) -> float:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile needs p in (0,1), got {p}")
        return self.low + p * (self.high - self.low)

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def support(self):
        return (self.low, self.high)

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class Shifted(Distribution):
    """``X + offset`` for a base distribution ``X`` (e.g. X_{2:3} + Δn)."""

    def __init__(self, base: Distribution, offset: float):
        self.base = base
        self.offset = offset

    def cdf(self, x: float) -> float:
        return self.base.cdf(x - self.offset)

    def quantile(self, p: float) -> float:
        return self.base.quantile(p) + self.offset

    def sample(self, rng) -> float:
        return self.base.sample(rng) + self.offset

    def mean(self) -> float:
        return self.base.mean() + self.offset

    def support(self):
        lower, upper = self.base.support()
        return (lower + self.offset, upper + self.offset)

    def __repr__(self) -> str:
        return f"Shifted({self.base!r}, {self.offset})"


class Sum(Distribution):
    """``X + Y`` for independent X, Y (used for signal-plus-noise).

    The CDF is computed by numeric convolution over Y's support::

        P(X + Y <= x) = E_Y[ F_X(x - Y) ]
    """

    def __init__(self, x_dist: Distribution, y_dist: Distribution,
                 grid_points: int = 2001):
        self.x_dist = x_dist
        self.y_dist = y_dist
        y_low, y_high = y_dist.support()
        self._ys = np.linspace(y_low, y_high, grid_points)
        y_cdf = np.array([y_dist.cdf(y) for y in self._ys])
        # probability mass of each grid cell of Y
        self._weights = np.diff(y_cdf)
        self._mids = 0.5 * (self._ys[1:] + self._ys[:-1])

    def cdf(self, x: float) -> float:
        values = np.array([self.x_dist.cdf(x - y) for y in self._mids])
        total = float(self._weights.sum())
        if total <= 0:
            return self.x_dist.cdf(x - float(self._mids[0]))
        return float(np.dot(values, self._weights) / total)

    def sample(self, rng) -> float:
        return self.x_dist.sample(rng) + self.y_dist.sample(rng)

    def mean(self) -> float:
        return self.x_dist.mean() + self.y_dist.mean()

    def support(self):
        x_low, x_high = self.x_dist.support()
        y_low, y_high = self.y_dist.support()
        return (x_low + y_low, x_high + y_high)

    def __repr__(self) -> str:
        return f"Sum({self.x_dist!r}, {self.y_dist!r})"


class MedianOfThree(Distribution):
    """Distribution of ``median(X1, X2, X3)`` for independent components.

    This is exactly what a StopWatch replica (or the egress's external
    observer) sees.  The CDF comes from the order-statistics identity
    (appendix, Result 2.4 of Gungor et al.)::

        F_{2:3}(x) = F1 F2 + F1 F3 + F2 F3 - 2 F1 F2 F3
    """

    def __init__(self, d1: Distribution, d2: Distribution, d3: Distribution):
        self.components = (d1, d2, d3)

    def cdf(self, x: float) -> float:
        f1, f2, f3 = (d.cdf(x) for d in self.components)
        return f1 * f2 + f1 * f3 + f2 * f3 - 2.0 * f1 * f2 * f3

    def sample(self, rng) -> float:
        draws = sorted(d.sample(rng) for d in self.components)
        return draws[1]

    def support(self):
        lows, highs = zip(*(d.support() for d in self.components))
        return (min(lows), max(highs))

    def __repr__(self) -> str:
        return f"MedianOfThree{self.components!r}"


class Empirical(Distribution):
    """A distribution estimated from observed samples (simulator traces)."""

    def __init__(self, samples: Sequence[float]):
        if len(samples) == 0:
            raise ValueError("empirical distribution needs samples")
        self._sorted = sorted(float(s) for s in samples)
        self._n = len(self._sorted)

    def cdf(self, x: float) -> float:
        return bisect.bisect_right(self._sorted, x) / self._n

    def quantile(self, p: float) -> float:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile needs p in (0,1), got {p}")
        idx = min(self._n - 1, max(0, math.ceil(p * self._n) - 1))
        return self._sorted[idx]

    def sample(self, rng) -> float:
        return self._sorted[rng.randrange(self._n)]

    def mean(self) -> float:
        return sum(self._sorted) / self._n

    def support(self):
        return (self._sorted[0], self._sorted[-1])

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return f"Empirical(n={self._n})"
