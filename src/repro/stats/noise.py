"""StopWatch vs. uniform random noise (appendix, Fig. 8).

The alternative defense to StopWatch is adding noise ``XN ~ U(0, b)`` to
the event timings of a *single* (unreplicated) VM.  Following the
appendix's procedure: for each confidence level, compute the number of
observations ``n`` the attacker needs against StopWatch (distributions
``X_{2:3} + Δn`` vs. ``X'_{2:3} + Δn``); then find the minimum noise
bound ``b`` that forces the same ``n`` against the noise defense
(distributions ``X1 + XN`` vs. ``X'1 + XN``); finally compare the
expected delays the two defenses impose.

Two attacker models are provided (the paper does not fully specify its
test construction, so we implement both and report both):

- ``"chi2"`` -- Pearson chi-squared over a *fixed* binning grid taken
  from the undefended baseline's quantiles.  Against uniform noise the
  per-observation divergence decays like ``1/b``, so the noise bound
  needed grows linearly in the protection target.
- ``"kl"`` -- the asymptotically optimal likelihood-ratio (Stein)
  attacker: ``n = ln(1/(1-confidence)) / KL(q || p)``.  Uniform noise
  cannot suppress the exponential tail of the victim distribution, so
  ``KL`` again decays like ``1/b`` and the bound grows linearly in the
  target, whereas StopWatch's delay is a constant (Δn + E[median]).

The headline comparison (Fig. 8's "scales much better") is therefore
exposed directly by :func:`protection_cost_curve`: noise delay grows
without bound in the protection target; StopWatch's delay does not.
"""

import math
from typing import List, NamedTuple, Sequence

import numpy as np

from repro.stats.detection import (
    bin_probabilities,
    equiprobable_bin_edges,
    observations_to_detect,
)
from repro.stats.distributions import (
    Distribution,
    Exponential,
    MedianOfThree,
    Shifted,
)


class ExponentialPlusUniform(Distribution):
    """``Exp(rate) + U(0, b)`` with a closed-form CDF.

    For x >= 0::

        F(x) = (1/b) * [ (x - a) - (e^{-r a} - e^{-r x}) / r ],  a = max(0, x-b)
    """

    def __init__(self, rate: float, bound: float):
        if rate <= 0 or bound <= 0:
            raise ValueError("rate and bound must be positive")
        self.rate = rate
        self.bound = bound

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        r, b = self.rate, self.bound
        a = max(0.0, x - b)
        value = ((x - a) - (math.exp(-r * a) - math.exp(-r * x)) / r) / b
        return min(1.0, max(0.0, value))

    def pdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        r, b = self.rate, self.bound
        upper = 1.0 - math.exp(-r * x)
        lower = (1.0 - math.exp(-r * (x - b))) if x > b else 0.0
        return (upper - lower) / b

    def sample(self, rng) -> float:
        return rng.expovariate(self.rate) + rng.uniform(0.0, self.bound)

    def mean(self) -> float:
        return 1.0 / self.rate + 0.5 * self.bound

    def support(self):
        return (0.0, self.quantile(1.0 - 1e-9))

    def __repr__(self) -> str:
        return f"ExponentialPlusUniform(rate={self.rate}, b={self.bound})"


def abs_difference_cdf_exponentials(rate_1: float, rate_2: float,
                                    d: float) -> float:
    """``P[|X - Y| <= d]`` for independent ``X~Exp(rate_1), Y~Exp(rate_2)``.

    Closed form:  1 - e^{-r1 d} r2/(r1+r2) - e^{-r2 d} r1/(r1+r2).
    """
    if d < 0:
        return 0.0
    total = rate_1 + rate_2
    return (1.0
            - math.exp(-rate_1 * d) * rate_2 / total
            - math.exp(-rate_2 * d) * rate_1 / total)


def delta_n_for_sync_probability(baseline_rate: float, victim_rate: float,
                                 probability: float = 0.9999) -> float:
    """The Δn the appendix uses: the smallest offset such that
    ``P[|X1 - X'1| <= Δn] >= probability`` (desynchronisation probability
    below ``1 - probability``)."""
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0,1), got {probability}")
    low, high = 0.0, 1.0
    while abs_difference_cdf_exponentials(baseline_rate, victim_rate,
                                          high) < probability:
        high *= 2.0
        if high > 1e12:
            raise ValueError("delta_n search diverged")
    for _ in range(200):
        mid = 0.5 * (low + high)
        if abs_difference_cdf_exponentials(baseline_rate, victim_rate,
                                           mid) < probability:
            low = mid
        else:
            high = mid
    return high


# ---------------------------------------------------------------------------
# density helpers for the likelihood-ratio (Stein) attacker
# ---------------------------------------------------------------------------
def _median3_exponential_pdf(rates):
    """Density of the median of three independent exponentials."""
    r1, r2, r3 = rates

    def pdf(x: float) -> float:
        if x <= 0:
            return 0.0
        cdfs = [1.0 - math.exp(-r * x) for r in (r1, r2, r3)]
        pdfs = [r * math.exp(-r * x) for r in (r1, r2, r3)]
        f1, f2, f3 = cdfs
        d1, d2, d3 = pdfs
        return (d1 * f2 + f1 * d2 + d1 * f3 + f1 * d3 + d2 * f3 + f2 * d3
                - 2.0 * (d1 * f2 * f3 + f1 * d2 * f3 + f1 * f2 * d3))

    return pdf


def kl_divergence(p_pdf, q_pdf, xs) -> float:
    """``KL(q || p)`` by trapezoid integration over grid ``xs``."""
    xs = np.asarray(xs)
    p = np.array([p_pdf(x) for x in xs])
    q = np.array([q_pdf(x) for x in xs])
    mask = (p > 1e-300) & (q > 1e-300)
    integrand = np.zeros_like(xs)
    integrand[mask] = q[mask] * np.log(q[mask] / p[mask])
    return float(np.trapezoid(integrand, xs))


def stopwatch_kl(baseline_rate: float, victim_rate: float,
                 grid_points: int = 40000) -> float:
    """``KL`` between the two median distributions StopWatch exposes."""
    horizon = 60.0 / min(baseline_rate, victim_rate)
    xs = np.linspace(1e-9, horizon, grid_points)
    null_pdf = _median3_exponential_pdf((baseline_rate,) * 3)
    alt_pdf = _median3_exponential_pdf(
        (victim_rate, baseline_rate, baseline_rate))
    return kl_divergence(null_pdf, alt_pdf, xs)


def noise_kl(baseline_rate: float, victim_rate: float, bound: float,
             grid_points: int = 40000) -> float:
    """``KL`` between ``X'1 + U(0,b)`` and ``X1 + U(0,b)``."""
    horizon = bound + 60.0 / min(baseline_rate, victim_rate)
    xs = np.linspace(1e-9, horizon, grid_points)
    null_dist = ExponentialPlusUniform(baseline_rate, bound)
    alt_dist = ExponentialPlusUniform(victim_rate, bound)
    return kl_divergence(null_dist.pdf, alt_dist.pdf, xs)


def stein_observations(kl: float, confidence: float) -> int:
    """Stein-lemma observation count: ``ln(1/(1-conf)) / KL``."""
    if kl <= 0:
        return 10**9
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    return max(1, math.ceil(math.log(1.0 / (1.0 - confidence)) / kl))


# ---------------------------------------------------------------------------
# chi-squared attacker over a fixed grid
# ---------------------------------------------------------------------------
def fixed_grid_edges(baseline_rate: float, bins: int = 10) -> List[float]:
    """Binning grid at the *undefended* baseline's scale: equiprobable
    quantile edges of ``Exp(baseline_rate)``.  The same grid is applied to
    both the StopWatch pair and the noise pair."""
    return equiprobable_bin_edges(Exponential(baseline_rate), bins)


def stopwatch_observations(baseline_rate: float, victim_rate: float,
                           confidence: float, bins: int = 10,
                           power: float = 0.5,
                           attacker: str = "chi2") -> int:
    """Observations to distinguish the two median distributions.

    A constant Δn shift affects both distributions identically, so Δn
    cancels here.
    """
    if attacker == "kl":
        return stein_observations(
            stopwatch_kl(baseline_rate, victim_rate), confidence)
    base = Exponential(baseline_rate)
    victim = Exponential(victim_rate)
    edges = fixed_grid_edges(baseline_rate, bins)
    p = bin_probabilities(MedianOfThree(base, base, base), edges)
    q = bin_probabilities(MedianOfThree(victim, base, base), edges)
    return observations_to_detect(p, q, confidence, power=power)


def noise_observations(baseline_rate: float, victim_rate: float,
                       bound: float, confidence: float, bins: int = 10,
                       power: float = 0.5, attacker: str = "chi2") -> int:
    """Observations to distinguish ``X1+U(0,b)`` from ``X'1+U(0,b)``."""
    if attacker == "kl":
        return stein_observations(
            noise_kl(baseline_rate, victim_rate, bound), confidence)
    edges = fixed_grid_edges(baseline_rate, bins)
    p = bin_probabilities(ExponentialPlusUniform(baseline_rate, bound), edges)
    q = bin_probabilities(ExponentialPlusUniform(victim_rate, bound), edges)
    return observations_to_detect(p, q, confidence, power=power)


def min_noise_bound_matching_stopwatch(baseline_rate: float,
                                       victim_rate: float,
                                       confidence: float,
                                       target_observations: int,
                                       bins: int = 10,
                                       power: float = 0.5,
                                       attacker: str = "chi2",
                                       tolerance: float = 1e-3) -> float:
    """Smallest uniform-noise bound b forcing the attacker to need at
    least ``target_observations`` at the given confidence."""
    if target_observations < 1:
        raise ValueError("target_observations must be >= 1")

    def enough(bound: float) -> bool:
        return noise_observations(baseline_rate, victim_rate, bound,
                                  confidence, bins, power, attacker) \
            >= target_observations

    low, high = 1e-6, 1.0
    while not enough(high):
        low, high = high, high * 2.0
        if high > 1e9:
            raise ValueError("noise bound search diverged")
    while high - low > tolerance * max(1.0, high):
        mid = 0.5 * (low + high)
        if enough(mid):
            high = mid
        else:
            low = mid
    return high


class NoiseComparisonRow(NamedTuple):
    """One confidence level of Fig. 8."""

    confidence: float
    observations: int          # attacker cost vs. StopWatch (and vs. noise)
    delta_n: float             # StopWatch's synchronisation offset
    noise_bound: float         # minimum b for the noise defense
    stopwatch_delay_baseline: float   # E[X_{2:3} + Δn]
    stopwatch_delay_victim: float     # E[X'_{2:3} + Δn]
    noise_delay_baseline: float       # E[X1 + XN]
    noise_delay_victim: float         # E[X'1 + XN]


def noise_comparison_table(baseline_rate: float, victim_rate: float,
                           confidences: Sequence[float],
                           bins: int = 10,
                           power: float = 0.5,
                           attacker: str = "chi2") -> List[NoiseComparisonRow]:
    """Compute the full Fig. 8 comparison for one (λ, λ') pair."""
    delta_n = delta_n_for_sync_probability(baseline_rate, victim_rate)
    base = Exponential(baseline_rate)
    victim = Exponential(victim_rate)
    sw_baseline = Shifted(MedianOfThree(base, base, base), delta_n)
    sw_victim = Shifted(MedianOfThree(victim, base, base), delta_n)
    e_sw_baseline = sw_baseline.mean()
    e_sw_victim = sw_victim.mean()

    rows = []
    for confidence in confidences:
        n_obs = stopwatch_observations(baseline_rate, victim_rate,
                                       confidence, bins, power, attacker)
        bound = min_noise_bound_matching_stopwatch(
            baseline_rate, victim_rate, confidence, n_obs, bins, power,
            attacker)
        rows.append(NoiseComparisonRow(
            confidence=confidence,
            observations=n_obs,
            delta_n=delta_n,
            noise_bound=bound,
            stopwatch_delay_baseline=e_sw_baseline,
            stopwatch_delay_victim=e_sw_victim,
            noise_delay_baseline=1.0 / baseline_rate + 0.5 * bound,
            noise_delay_victim=1.0 / victim_rate + 0.5 * bound,
        ))
    return rows


class ProtectionCostPoint(NamedTuple):
    """One protection level of the scaling comparison."""

    target_observations: int
    noise_bound: float
    noise_delay: float         # E[X1 + XN] at that bound
    stopwatch_delay: float     # E[X_{2:3} + Δn] -- constant


def protection_cost_curve(baseline_rate: float, victim_rate: float,
                          targets: Sequence[int],
                          confidence: float = 0.95,
                          attacker: str = "kl") -> List[ProtectionCostPoint]:
    """Delay each defense must pay as the required attacker cost grows.

    This exposes the appendix's headline scaling claim directly: the
    noise bound (hence delay) grows roughly linearly in the protection
    target, while StopWatch's delay is the constant ``Δn + E[X_{2:3}]``.
    """
    delta_n = delta_n_for_sync_probability(baseline_rate, victim_rate)
    base = Exponential(baseline_rate)
    sw_delay = Shifted(MedianOfThree(base, base, base), delta_n).mean()
    points = []
    for target in targets:
        bound = min_noise_bound_matching_stopwatch(
            baseline_rate, victim_rate, confidence, target,
            attacker=attacker)
        points.append(ProtectionCostPoint(
            target_observations=target,
            noise_bound=bound,
            noise_delay=1.0 / baseline_rate + 0.5 * bound,
            stopwatch_delay=sw_delay,
        ))
    return points
