"""Binned mutual-information and channel-capacity estimation.

Companion to :mod:`repro.stats.detection`: where the chi-squared
machinery answers "how many observations until the attacker *detects*
the victim", these estimators answer "how many *bits* does one
observation carry about the secret" -- the leakage axis of the
mitigation frontier (``repro mitigate``).

The model: a discrete secret ``S`` (e.g. victim present/absent) and a
continuous observable ``X`` (an inter-arrival time, an RTT).  Samples
of ``X`` under each secret value are binned on pooled equiprobable
quantile edges, giving a joint histogram over ``(S, bin)``; the plug-in
estimate of ``I(S; X)`` follows, optionally Miller--Madow corrected for
the positive small-sample bias (the correction is what makes truly
independent samples report ~0 bits instead of ``O(bins/N)``).

For an upper bound over all secret priors, :func:`channel_capacity_bits`
runs Blahut--Arimoto on the binned conditional distributions.
"""

import math
from typing import List, Optional, Sequence

import numpy as np


def pooled_bin_edges(samples_by_class: Sequence[Sequence[float]],
                     bins: int) -> np.ndarray:
    """Interior bin edges at the pooled samples' equiprobable quantiles.

    Pooling makes the binning secret-blind: edges depend on the mixture
    only, so the estimator cannot manufacture information through a
    secret-dependent choice of bins.
    """
    if bins < 2:
        raise ValueError(f"need at least 2 bins, got {bins}")
    pooled = np.concatenate([np.asarray(s, dtype=float)
                             for s in samples_by_class])
    if pooled.size == 0:
        raise ValueError("no samples to bin")
    quantiles = np.arange(1, bins) / bins
    return np.quantile(pooled, quantiles)


def binned_joint_counts(samples_by_class: Sequence[Sequence[float]],
                        bins: int = 10,
                        edges: Optional[np.ndarray] = None) -> np.ndarray:
    """The ``(classes, bins)`` joint histogram of class vs binned value."""
    if edges is None:
        edges = pooled_bin_edges(samples_by_class, bins)
    edges = np.asarray(edges, dtype=float)
    width = edges.size + 1
    counts = np.zeros((len(samples_by_class), width), dtype=float)
    for row, samples in enumerate(samples_by_class):
        values = np.asarray(samples, dtype=float)
        if values.size == 0:
            raise ValueError(f"class {row} has no samples")
        cells = np.searchsorted(edges, values, side="right")
        counts[row] = np.bincount(cells, minlength=width)[:width]
    return counts


def mutual_information_bits(counts: np.ndarray,
                            correction: bool = False) -> float:
    """Plug-in ``I(S; X)`` in bits from a joint count matrix.

    With ``correction`` the Miller--Madow bias estimate
    ``(K_joint - K_rows - K_cols + 1) / (2 N ln 2)`` (``K`` = occupied
    cells) is subtracted and the result floored at zero.
    """
    counts = np.asarray(counts, dtype=float)
    total = counts.sum()
    if total <= 0:
        raise ValueError("empty joint histogram")
    joint = counts / total
    rows = joint.sum(axis=1, keepdims=True)
    cols = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    ratio = np.ones_like(joint)
    np.divide(joint, rows * cols, out=ratio, where=mask)
    bits = float(np.sum(joint[mask] * np.log2(ratio[mask])))
    if correction:
        k_joint = int(np.count_nonzero(counts))
        k_rows = int(np.count_nonzero(counts.sum(axis=1)))
        k_cols = int(np.count_nonzero(counts.sum(axis=0)))
        bias = (k_joint - k_rows - k_cols + 1) / (2.0 * total * math.log(2))
        bits = max(0.0, bits - bias)
    return max(0.0, bits)


def mi_bits(samples_by_class: Sequence[Sequence[float]],
            bins: int = 10, correction: bool = True,
            edges: Optional[np.ndarray] = None) -> float:
    """Leakage in bits between the class label and the binned samples."""
    counts = binned_joint_counts(samples_by_class, bins=bins, edges=edges)
    return mutual_information_bits(counts, correction=correction)


def channel_capacity_bits(conditionals: np.ndarray,
                          iterations: int = 2000,
                          tol: float = 1e-9) -> float:
    """Blahut--Arimoto capacity (bits/observation) of a discrete channel.

    ``conditionals`` is a ``(inputs, outputs)`` matrix of ``P(x | s)``
    rows.  Convergence uses the standard upper/lower capacity bounds;
    the returned value is the lower bound at termination, within
    ``tol`` bits of the optimum.
    """
    p = np.asarray(conditionals, dtype=float)
    if p.ndim != 2 or p.shape[0] < 1:
        raise ValueError(f"conditionals must be a 2-D matrix, "
                         f"got shape {p.shape}")
    sums = p.sum(axis=1)
    if np.any(sums <= 0):
        raise ValueError("every input needs a valid output distribution")
    p = p / sums[:, None]
    inputs = p.shape[0]
    prior = np.full(inputs, 1.0 / inputs)
    lower = 0.0
    for _ in range(iterations):
        marginal = prior @ p                     # q(x)
        # D(p(.|s) || q) per input, in bits
        mask = p > 0
        log_ratio = np.zeros_like(p)
        np.log2(p / np.maximum(marginal[None, :], 1e-300),
                out=log_ratio, where=mask)
        divergence = (p * log_ratio).sum(axis=1)
        upper = float(divergence.max())
        lower = float(np.log2(np.dot(prior, np.exp2(divergence))))
        if upper - lower < tol:
            break
        prior = prior * np.exp2(divergence)
        prior /= prior.sum()
    return max(0.0, lower)


def capacity_from_samples(samples_by_class: Sequence[Sequence[float]],
                          bins: int = 10) -> float:
    """Channel capacity of the binned observable over all secret priors."""
    counts = binned_joint_counts(samples_by_class, bins=bins)
    return channel_capacity_bits(counts)


def leakage_summary(samples_by_class: Sequence[Sequence[float]],
                    bins: int = 10) -> dict:
    """Both estimates plus the sample budget, for frontier rows."""
    counts = binned_joint_counts(samples_by_class, bins=bins)
    return {
        "mi_bits": mutual_information_bits(counts, correction=True),
        "mi_bits_raw": mutual_information_bits(counts, correction=False),
        "capacity_bits": channel_capacity_bits(counts),
        "samples": [int(n) for n in counts.sum(axis=1)],
        "bins": int(counts.shape[1]),
    }
