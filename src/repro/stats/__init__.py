"""Statistics for the StopWatch analysis (paper Sec. III, Appendix).

- :mod:`repro.stats.distributions` -- the distribution objects the
  analysis is phrased over (exponential baselines/victims, uniform noise,
  empirical distributions from simulator traces, shifted variants).
- :mod:`repro.stats.orderstats` -- order-statistic CDFs ``F_{r:m}``, the
  StopWatch median CDF ``F_{2:3}``, Kolmogorov-Smirnov distance, and the
  appendix Theorems 3 and 4.
- :mod:`repro.stats.detection` -- the chi-squared "observations needed to
  detect the victim" calculator used by Fig. 1(b,c) and Fig. 4(b).
- :mod:`repro.stats.noise` -- the uniform-random-noise alternative and the
  delay comparison of Fig. 8.
- :mod:`repro.stats.mi` -- binned mutual-information and Blahut-Arimoto
  channel-capacity estimators for the mitigation-frontier leakage axis.
"""

from repro.stats.distributions import (
    Distribution,
    Exponential,
    Uniform,
    Shifted,
    Empirical,
    MedianOfThree,
    Sum,
)
from repro.stats.orderstats import (
    order_statistic_cdf,
    median_of_three_cdf,
    ks_distance,
    ks_distance_of_medians,
    theorem3_bound_factor,
)
from repro.stats.detection import (
    equiprobable_bin_edges,
    bin_probabilities,
    chi_square_divergence,
    observations_to_detect,
    observations_curve,
    empirical_observations_to_detect,
)
from repro.stats.noise import (
    ExponentialPlusUniform,
    abs_difference_cdf_exponentials,
    delta_n_for_sync_probability,
    kl_divergence,
    min_noise_bound_matching_stopwatch,
    noise_comparison_table,
    noise_kl,
    noise_observations,
    protection_cost_curve,
    stein_observations,
    stopwatch_kl,
    stopwatch_observations,
    NoiseComparisonRow,
    ProtectionCostPoint,
)
from repro.stats.mi import (
    capacity_from_samples,
    channel_capacity_bits,
    leakage_summary,
    mi_bits,
    mutual_information_bits,
)

__all__ = [
    "Distribution",
    "Exponential",
    "Uniform",
    "Shifted",
    "Empirical",
    "MedianOfThree",
    "Sum",
    "order_statistic_cdf",
    "median_of_three_cdf",
    "ks_distance",
    "ks_distance_of_medians",
    "theorem3_bound_factor",
    "equiprobable_bin_edges",
    "bin_probabilities",
    "chi_square_divergence",
    "observations_to_detect",
    "observations_curve",
    "empirical_observations_to_detect",
    "ExponentialPlusUniform",
    "abs_difference_cdf_exponentials",
    "delta_n_for_sync_probability",
    "kl_divergence",
    "min_noise_bound_matching_stopwatch",
    "noise_comparison_table",
    "noise_kl",
    "noise_observations",
    "protection_cost_curve",
    "stein_observations",
    "stopwatch_kl",
    "stopwatch_observations",
    "NoiseComparisonRow",
    "ProtectionCostPoint",
    "capacity_from_samples",
    "channel_capacity_bits",
    "leakage_summary",
    "mi_bits",
    "mutual_information_bits",
]
