"""Seeded, deterministic fault injection and replica recovery.

- :class:`FaultSchedule` / :class:`FaultEvent` -- declarative campaigns
  of ``(time, fault, target)`` entries, literal or seeded-random.
- :class:`FaultInjector` -- arms a schedule against a cloud through the
  public fault seams of each layer (host crash, network partition, link
  degradation, coordination-multicast drops, dom0 stalls).
- :func:`rejoin_replica` -- rebuilds a crashed replica by strict replay
  of a survivor's recorded injection schedule, re-asserting the
  determinism invariant before the replica rejoins the quorum.
- :class:`EvacuationController` -- self-healing: rebuilds replicas of
  *permanently* lost machines on spare capacity, preserving the
  anti-affinity placement invariant (repro.faults.heal).
- :mod:`repro.faults.invariants` -- machine-checked safety/liveness/
  hygiene gates for randomized chaos campaigns.
"""

from repro.faults.schedule import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    ScheduleError,
)
from repro.faults.injector import FaultInjector, InjectionError
from repro.faults.recovery import RecoveryError, pick_survivor, \
    rejoin_replica
from repro.faults.heal import EvacuationController, HealError

__all__ = [
    "EvacuationController",
    "HealError",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "ScheduleError",
    "FaultInjector",
    "InjectionError",
    "RecoveryError",
    "pick_survivor",
    "rejoin_replica",
]
