"""Declarative fault schedules.

A :class:`FaultSchedule` is a validated, time-sorted list of
:class:`FaultEvent` entries -- *what* goes wrong, *where*, and *when*.
Schedules are data: they can be written literally in tests, built from
``(time, fault, target)`` tuples, or generated pseudo-randomly from a
seed (:meth:`FaultSchedule.seeded`), which keeps chaos runs fully
deterministic -- the same seed always yields the same campaign.

Fault kinds and their target syntax:

=================  =======================  =================================
kind               target                   effect
=================  =======================  =================================
``crash_replica``  ``"<vm>:<replica>"``     the replica's host machine dies
``restart_replica``  ``"<vm>:<replica>"``   host powers on; replica rebuilt
                                            by replaying a survivor's
                                            injection schedule
``partition_host``  ``"host:<id>"``         machine partitioned off the net
``heal_host``       ``"host:<id>"``         partition healed
``crash_host``      ``"host:<id>"``         machine *condemned*: it dies
                                            permanently and (with an
                                            EvacuationController armed) its
                                            replicas are evacuated onto
                                            spare capacity
``degrade_link``    ``"<src>-><dst>"``      loss/latency/jitter raised
                                            (params: ``loss``, ``latency``,
                                            ``jitter``)
``restore_link``    ``"<src>-><dst>"``      degradation undone
``drop_proposals``  ``"<vm>:<replica>"``    next ``count`` coordination
                                            multicasts swallowed (param
                                            ``purge`` defeats NAK repair)
``delay_dom0``      ``"host:<id>"``         dom0 stalled for ``duration`` s
``partition_edge``  ``"ingress:<vm>"`` or   the edge shard serving that VM
                    ``"egress:<vm>"``       partitioned off the network
``heal_edge``       ``"ingress:<vm>"`` or   the shard's partition healed
                    ``"egress:<vm>"``
=================  =======================  =================================

The edge faults resolve through the cloud's shard routing
(``Cloud.ingress_for``/``egress_for``), so on a sharded edge they take
down exactly the shard the named VM is pinned to -- co-sharded VMs are
collateral, VMs on other shards are untouched.
"""

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

FAULT_KINDS = (
    "crash_replica",
    "restart_replica",
    "partition_host",
    "heal_host",
    "crash_host",
    "degrade_link",
    "restore_link",
    "drop_proposals",
    "delay_dom0",
    "partition_edge",
    "heal_edge",
)


class ScheduleError(ValueError):
    """An ill-formed fault schedule."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: inject ``fault`` at ``target`` at ``time``."""

    time: float
    fault: str
    target: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.time < 0:
            raise ScheduleError(f"fault time must be >= 0: {self.time}")
        if self.fault not in FAULT_KINDS:
            raise ScheduleError(
                f"unknown fault kind {self.fault!r}; "
                f"expected one of {FAULT_KINDS}")
        if not self.target:
            raise ScheduleError(f"{self.fault} needs a target")

    def signature(self) -> Tuple:
        """Hashable identity used in determinism comparisons."""
        return (self.time, self.fault, self.target,
                tuple(sorted(self.params.items())))


class FaultSchedule:
    """A time-ordered fault campaign."""

    def __init__(self, events: Iterable[FaultEvent]):
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.time, e.fault, e.target))
        crashed = set()
        for event in self.events:
            if event.fault == "crash_replica":
                crashed.add(event.target)
            elif event.fault == "restart_replica" \
                    and event.target not in crashed:
                raise ScheduleError(
                    f"restart_replica at t={event.time} targets "
                    f"{event.target!r} with no earlier crash_replica")

    @classmethod
    def from_entries(cls, entries: Sequence) -> "FaultSchedule":
        """Build from ``(time, fault, target[, params])`` tuples."""
        events = []
        for entry in entries:
            if len(entry) == 3:
                time, fault, target = entry
                params: Dict[str, Any] = {}
            elif len(entry) == 4:
                time, fault, target, params = entry
            else:
                raise ScheduleError(
                    f"entry must be (time, fault, target[, params]): "
                    f"{entry!r}")
            events.append(FaultEvent(time, fault, target, dict(params)))
        return cls(events)

    @classmethod
    def seeded(cls, seed: int, duration: float,
               replica_targets: Sequence[str],
               host_targets: Sequence[str] = (),
               rate: float = 1.0,
               recovery_delay: float = 0.5,
               crash_hosts: Sequence[str] = (),
               edge_targets: Sequence[str] = (),
               max_host_crashes: int = 1,
               edge_heal_delay: float = 0.4,
               orphan_probability: float = 0.0) -> "FaultSchedule":
        """Generate a deterministic random campaign.

        Draws fault times from a Poisson process of ``rate`` faults per
        second over ``duration``.  Every generated crash is paired with
        a restart ``recovery_delay`` later (capped to the run), so the
        campaign always exercises the recovery path, not just the
        degraded one -- unless ``orphan_probability`` kicks in, which
        leaves the crash unrestarted so a healer's sustained-suspicion
        path has something real to chew on.

        ``crash_hosts`` enables *permanent* host loss (``crash_host``,
        at most ``max_host_crashes`` per storm) and ``edge_targets``
        enables ingress/egress shard partitions, each healed
        ``edge_heal_delay`` later.  All three extensions draw from the
        RNG only when their branch is taken, so a call with the old
        argument set generates the exact event stream it always did.
        """
        if duration <= 0:
            raise ScheduleError(f"duration must be > 0: {duration}")
        if not replica_targets:
            raise ScheduleError("need at least one replica target")
        if not 0.0 <= orphan_probability <= 1.0:
            raise ScheduleError(
                f"orphan_probability must be in [0, 1]: "
                f"{orphan_probability}")
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        crashed = set()
        condemned: set = set()
        t = rng.expovariate(rate)
        while t < duration:
            roll = rng.random()
            if roll < 0.4:
                candidates = [r for r in replica_targets
                              if r not in crashed]
                if candidates:
                    target = rng.choice(candidates)
                    crashed.add(target)
                    events.append(FaultEvent(t, "crash_replica", target))
                    if orphan_probability > 0.0 and \
                            rng.random() < orphan_probability:
                        pass  # orphaned: only a healer brings it back
                    else:
                        # a restart past `duration` simply never fires
                        events.append(FaultEvent(t + recovery_delay,
                                                 "restart_replica",
                                                 target))
            elif roll < 0.7:
                target = rng.choice(list(replica_targets))
                events.append(FaultEvent(
                    t, "drop_proposals", target,
                    {"count": rng.randint(1, 3), "purge": True}))
            elif roll < 0.9 and host_targets:
                target = rng.choice(list(host_targets))
                events.append(FaultEvent(
                    t, "delay_dom0", target,
                    {"duration": rng.uniform(0.005, 0.05)}))
            elif roll < 0.95 and edge_targets:
                target = rng.choice(list(edge_targets))
                events.append(FaultEvent(t, "partition_edge", target))
                events.append(FaultEvent(t + edge_heal_delay,
                                         "heal_edge", target))
            elif crash_hosts and len(condemned) < max_host_crashes:
                candidates = [h for h in crash_hosts
                              if h not in condemned]
                if candidates:
                    target = rng.choice(candidates)
                    condemned.add(target)
                    events.append(FaultEvent(t, "crash_host", target))
            t += rng.expovariate(rate)
        return cls(events)

    def signature(self) -> List[Tuple]:
        return [event.signature() for event in self.events]

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<FaultSchedule events={len(self.events)}>"
