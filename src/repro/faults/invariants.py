"""Machine-checked invariant gates for randomized chaos campaigns.

A chaos cell is only as good as what it *checks*: a storm that runs to
completion proves nothing if the fabric quietly leaked flows or parked
a replica on the wrong host.  This module turns the StopWatch
robustness contract into three checkable families, each returning
:class:`Violation` records instead of raising, so a campaign can
aggregate them per cell:

- **safety / placement** (:func:`check_placement`): after the storm and
  every heal, the placement scheduler's Sec. VIII invariants still hold
  (``verify()``), the *wired* fabric matches the scheduler's book
  (every replica VMM really sits on its assigned triangle), and every
  replica is live -- unless the healer explicitly gave up on it
  (``heal.failed`` trace record), which is a reported outcome, not a
  silent leak.
- **liveness** (:func:`check_liveness`): disruption is confined to a
  *disruption envelope* derived from the trace (first fault injection
  to last fault/recovery/heal activity, plus slack).  After the
  envelope closes, the client must demonstrably be served again, and
  no egress may sit on undelivered agreed packets.
- **hygiene** (:func:`check_hygiene`): nothing leaks.  Live replicas
  hold no stuck agreements or undelivered net injections, no ingress
  pause buffer survives the run, and the event queue drains to the
  steady-state floor (heartbeats + client timers), catching
  accidentally self-rescheduling timers.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: minimum quiet time (s) between envelope close and client stop for
#: the served-after-faults liveness check to be meaningful
MIN_TAIL_WINDOW = 0.2

#: slack (s) added after the last fault/recovery/heal activity before
#: the fabric is required to be fully serving again
ENVELOPE_SLACK = 0.5

#: event-queue floor: per-replica heartbeat + suspicion timers, plus
#: per-client pacing/retry timers, plus a fixed allowance
QUEUE_PER_REPLICA = 2
QUEUE_PER_CLIENT = 2
QUEUE_FIXED_ALLOWANCE = 16


@dataclass(frozen=True)
class Violation:
    """One failed invariant: which family, where, and what happened."""

    invariant: str   # "placement" | "liveness" | "hygiene"
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


def disruption_envelope(trace, slack: float = ENVELOPE_SLACK) \
        -> Optional[Tuple[float, float]]:
    """``(start, end)`` of the fault-disrupted window, or None if the
    run injected nothing.

    Starts at the first ``fault.*`` record; ends ``slack`` seconds
    after the last ``fault.*``/``recovery.*``/``heal.*`` record -- by
    then every repair the run is going to make has been made, so
    service degradation past the envelope is a liveness violation, not
    an excusable symptom.
    """
    starts = [r.time for r in trace.iter_records("fault")]
    if not starts:
        return None
    ends = list(starts)
    ends += [r.time for r in trace.iter_records("recovery")]
    ends += [r.time for r in trace.iter_records("heal")]
    return (min(starts), max(ends) + slack)


# ---------------------------------------------------------------------------
# safety: placement
# ---------------------------------------------------------------------------
def check_placement(cloud, placer) -> List[Violation]:
    """Scheduler invariants + wired-fabric agreement + replica health."""
    violations: List[Violation] = []
    if placer is not None and not placer.verify():
        violations.append(Violation(
            "placement", "PlacementScheduler.verify() failed: "
            "anti-affinity or capacity accounting broken"))
    trace = cloud.sim.trace
    failed_heals = {(r.payload.get("vm"), r.payload.get("replica"))
                    for r in trace.iter_records("heal.failed")}
    for vm_name, vm in cloud.vms.items():
        wired = tuple(sorted(vmm.host.host_id for vmm in vm.vmms))
        if placer is not None:
            assigned = placer.assignments.get(vm_name)
            if assigned is not None and wired != tuple(assigned):
                violations.append(Violation(
                    "placement",
                    f"{vm_name}: wired hosts {wired} != scheduler "
                    f"assignment {tuple(assigned)}"))
        if len(set(wired)) != len(wired):
            violations.append(Violation(
                "placement",
                f"{vm_name}: replicas share a host: {wired}"))
        for rid, vmm in enumerate(vm.vmms):
            if vmm.failed and (vm_name, rid) not in failed_heals:
                violations.append(Violation(
                    "placement",
                    f"{vm_name} r{rid}: dead at end of run with no "
                    f"heal.failed record (healer never gave up, never "
                    f"succeeded)"))
            elif not vmm.failed and not vmm.host.alive:
                violations.append(Violation(
                    "placement",
                    f"{vm_name} r{rid}: marked live on dead "
                    f"host {vmm.host.host_id}"))
    return violations


# ---------------------------------------------------------------------------
# liveness
# ---------------------------------------------------------------------------
def check_liveness(cloud, pingers, client_stop: float,
                   slack: float = ENVELOPE_SLACK) -> List[Violation]:
    """Service resumes after the disruption envelope; no stuck egress.

    ``pingers`` maps a label to its :class:`PingClient`;
    ``client_stop`` is the simulated time the drivers were stopped
    (end of the load window).
    """
    violations: List[Violation] = []
    pending = cloud.pending_releases
    if pending:
        violations.append(Violation(
            "liveness", f"{pending} agreed packets stuck in egress "
            f"pending_releases at end of run"))
    envelope = disruption_envelope(cloud.sim.trace, slack=slack)
    for label, pinger in pingers.items():
        if pinger.sent == 0:
            violations.append(Violation(
                "liveness", f"{label}: client never sent anything"))
            continue
        if envelope is None:
            if not pinger.reply_times:
                violations.append(Violation(
                    "liveness", f"{label}: no faults injected yet "
                    f"0/{pinger.sent} pings answered"))
            continue
        start, end = envelope
        tail = client_stop - end
        if tail < MIN_TAIL_WINDOW:
            violations.append(Violation(
                "liveness",
                f"{label}: only {tail:.3f}s of load after the "
                f"disruption envelope closed at {end:.3f} "
                f"(need >= {MIN_TAIL_WINDOW}); cell too short to "
                f"observe recovery"))
            continue
        after = [t for t in pinger.reply_times if t > end]
        if not after:
            violations.append(Violation(
                "liveness",
                f"{label}: no replies after the disruption envelope "
                f"[{start:.3f}, {end:.3f}] despite {tail:.3f}s of "
                f"subsequent load"))
    return violations


# ---------------------------------------------------------------------------
# hygiene
# ---------------------------------------------------------------------------
def check_hygiene(cloud, clients: int = 0) -> List[Violation]:
    """No leaked state: agreements, net injections, pause buffers,
    event queue."""
    violations: List[Violation] = []
    total_replicas = 0
    for vm_name, vm in cloud.vms.items():
        for rid, vmm in enumerate(vm.vmms):
            total_replicas += 1
            if vmm.failed:
                continue
            coordination = vmm.coordination
            if coordination is not None:
                if coordination._agreements:
                    violations.append(Violation(
                        "hygiene",
                        f"{vm_name} r{rid}: {len(coordination._agreements)} "
                        f"agreements never resolved "
                        f"(seqs {sorted(coordination._agreements)[:8]})"))
                if coordination._packets:
                    violations.append(Violation(
                        "hygiene",
                        f"{vm_name} r{rid}: {len(coordination._packets)} "
                        f"buffered packets never released"))
            if vmm._pending_net:
                violations.append(Violation(
                    "hygiene",
                    f"{vm_name} r{rid}: {len(vmm._pending_net)} net "
                    f"injections never delivered to the guest"))
    for ingress in cloud.ingresses:
        for vm_name, buffered in ingress._paused.items():
            violations.append(Violation(
                "hygiene",
                f"ingress {ingress.address}: {vm_name} still paused "
                f"with {len(buffered)} buffered packets (evacuation "
                f"never resumed it)"))
    ceiling = (QUEUE_PER_REPLICA * total_replicas
               + QUEUE_PER_CLIENT * clients + QUEUE_FIXED_ALLOWANCE)
    pending = cloud.sim.pending_events
    if pending > ceiling:
        violations.append(Violation(
            "hygiene",
            f"event queue holds {pending} live events at end of run "
            f"(steady-state ceiling {ceiling} for {total_replicas} "
            f"replicas + {clients} clients); something reschedules "
            f"itself forever"))
    return violations


def check_all(cloud, placer, pingers, client_stop: float,
              clients: Optional[int] = None) -> List[Violation]:
    """All three families, aggregated in a stable order."""
    if clients is None:
        clients = len(pingers)
    violations = check_placement(cloud, placer)
    violations += check_liveness(cloud, pingers, client_stop)
    violations += check_hygiene(cloud, clients=clients)
    return violations
