"""The fault injector: arms a :class:`FaultSchedule` against a cloud.

Every fault is applied through a public seam of the layer it targets --
``Host.fail``/``restore``, ``Network.isolate``, ``Link.degrade``,
``PgmSender.drop_next``, ``Dom0Executor.inject_stall`` -- so injection
exercises exactly the code paths real failures would.  All injections
are traced (``fault.inject``) and counted, and the whole campaign is
deterministic: the schedule is data and the hooks draw no randomness of
their own.
"""

from typing import Dict, Optional, Tuple

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.faults.recovery import RecoveryError, rejoin_replica
from repro.vmm.replay import ExecutionRecorder


class InjectionError(RuntimeError):
    """A fault's target could not be resolved against the cloud."""


class FaultInjector:
    """Applies a fault schedule to a :class:`~repro.cloud.fabric.Cloud`."""

    def __init__(self, cloud, schedule: FaultSchedule,
                 record_for_recovery: bool = True):
        self.cloud = cloud
        self.sim = cloud.sim
        self.schedule = schedule
        self.applied = []
        self._armed = False
        self._link_originals: Dict[Tuple[Optional[str], str], tuple] = {}
        if record_for_recovery:
            self._attach_recorders()

    def _attach_recorders(self) -> None:
        """Give every mediated replica an injection-schedule recorder, so
        any of them can serve as a recovery source later."""
        for vm in self.cloud.vms.values():
            for rid, vmm in enumerate(vm.vmms):
                if vmm.coordination is not None and rid not in vm.recorders:
                    vm.recorders[rid] = ExecutionRecorder(vmm)

    def arm(self) -> None:
        """Schedule every fault event on the simulator clock."""
        if self._armed:
            raise InjectionError("injector already armed")
        self._armed = True
        for event in self.schedule:
            self.sim.call_at(event.time, self._apply, event)

    # ------------------------------------------------------------------
    # target resolution
    # ------------------------------------------------------------------
    def _replica_target(self, event: FaultEvent):
        vm_name, sep, rid_text = event.target.rpartition(":")
        if not sep or not rid_text.isdigit():
            raise InjectionError(
                f"{event.fault} target must be '<vm>:<replica>': "
                f"{event.target!r}")
        vm = self.cloud.vms.get(vm_name)
        if vm is None:
            raise InjectionError(f"unknown VM {vm_name!r}")
        replica_id = int(rid_text)
        if not 0 <= replica_id < len(vm.vmms):
            raise InjectionError(
                f"{vm_name} has no replica {replica_id}")
        return vm, replica_id

    def _host_target(self, event: FaultEvent):
        text = event.target
        host_id = text[len("host:"):] if text.startswith("host:") else text
        if not host_id.isdigit() or int(host_id) >= len(self.cloud.hosts):
            raise InjectionError(
                f"{event.fault} target must name a host: {event.target!r}")
        return self.cloud.hosts[int(host_id)]

    def _link_target(self, event: FaultEvent):
        src, sep, dst = event.target.partition("->")
        if not sep or not dst:
            raise InjectionError(
                f"{event.fault} target must be '<src>-><dst>': "
                f"{event.target!r}")
        src_addr = src or None
        return (src_addr, dst), self.cloud.network.link_for(src_addr, dst)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        self.sim.trace.record(self.sim.now, "fault.inject",
                              fault=event.fault, target=event.target,
                              **event.params)
        self.sim.metrics.incr("fault.injected")
        handler = getattr(self, f"_do_{event.fault}")
        handler(event)
        self.applied.append(event)

    def _noop(self, event: FaultEvent, reason: str) -> None:
        """A randomized storm produced an overlapping or redundant
        event (crash of an already-dead replica, heal of a healthy
        host, ...): trace it and keep the campaign running instead of
        tearing the whole run down mid-flight."""
        self.sim.metrics.incr("fault.noops")
        self.sim.trace.record(self.sim.now, "fault.noop",
                              fault=event.fault, target=event.target,
                              reason=reason)

    def _do_crash_replica(self, event: FaultEvent) -> None:
        vm, replica_id = self._replica_target(event)
        host = self.cloud.host_for(vm.name, replica_id)
        if not host.alive:
            return self._noop(event, "host already down")
        host.fail()

    def _do_crash_host(self, event: FaultEvent) -> None:
        """Permanent machine loss: the host is condemned (never
        restored) and the healer, if armed, evacuates its replicas."""
        host = self._host_target(event)
        if host.condemned:
            return self._noop(event, "host already condemned")
        self.sim.trace.record(self.sim.now, "fault.condemn",
                              host=host.host_id)
        host.condemn()
        healer = getattr(self.cloud, "healer", None)
        if healer is not None:
            healer.host_condemned(host)

    def _do_restart_replica(self, event: FaultEvent) -> None:
        vm, replica_id = self._replica_target(event)
        vmm = vm.vmms[replica_id]
        if not vmm.failed:
            # never actually crashed (e.g. schedule beyond run end)
            return self._noop(event, "replica is live")
        try:
            rejoin_replica(self.cloud, vm.name, replica_id)
        except RecoveryError as exc:
            # e.g. condemned host or no survivor yet -- the healer's
            # retry loop owns those cases
            return self._noop(event, str(exc))

    def _do_partition_host(self, event: FaultEvent) -> None:
        host = self._host_target(event)
        if self.cloud.network.is_isolated(host.address):
            return self._noop(event, "host already partitioned")
        self.sim.trace.record(self.sim.now, "fault.partition",
                              host=host.host_id)
        self.cloud.network.isolate(host.address)

    def _do_heal_host(self, event: FaultEvent) -> None:
        host = self._host_target(event)
        if host.condemned:
            return self._noop(event, "host is condemned")
        if not self.cloud.network.is_isolated(host.address):
            return self._noop(event, "host was never partitioned")
        if not host.alive:
            return self._noop(event, "host crashed, not partitioned")
        self.sim.trace.record(self.sim.now, "recovery.heal",
                              host=host.host_id)
        self.cloud.network.restore(host.address)

    def _do_degrade_link(self, event: FaultEvent) -> None:
        key, link = self._link_target(event)
        if key not in self._link_originals:
            self._link_originals[key] = (link.loss, link.latency,
                                         link.jitter)
        link.degrade(loss=event.params.get("loss"),
                     latency=event.params.get("latency"),
                     jitter=event.params.get("jitter"))

    def _do_restore_link(self, event: FaultEvent) -> None:
        key, link = self._link_target(event)
        original = self._link_originals.pop(key, None)
        if original is None:
            return self._noop(event, "link was never degraded")
        loss, latency, jitter = original
        link.degrade(loss=loss, latency=latency, jitter=jitter)
        link.restore()

    def _do_drop_proposals(self, event: FaultEvent) -> None:
        vm, replica_id = self._replica_target(event)
        vmm = vm.vmms[replica_id]
        coordination = vmm.coordination
        if coordination is None:
            raise InjectionError(
                f"{vm.name} r{replica_id} is not mediated; it has no "
                f"coordination channel to drop from")
        if vmm.failed:
            return self._noop(event, "replica is down")
        coordination.sender.drop_next(event.params.get("count", 1),
                                      purge=event.params.get("purge", True))

    def _do_delay_dom0(self, event: FaultEvent) -> None:
        host = self._host_target(event)
        if not host.alive:
            return self._noop(event, "host is down")
        host.dom0.inject_stall(event.params.get("duration", 0.01))

    # -- edge (ingress/egress shard) faults ----------------------------
    def _edge_target(self, event: FaultEvent):
        """Resolve ``"ingress:<vm>"``/``"egress:<vm>"`` to the edge node
        serving that VM's shard."""
        side, sep, vm_name = event.target.partition(":")
        if not sep or side not in ("ingress", "egress"):
            raise InjectionError(
                f"{event.fault} target must be 'ingress:<vm>' or "
                f"'egress:<vm>': {event.target!r}")
        if vm_name not in self.cloud.vms:
            raise InjectionError(f"unknown VM {vm_name!r}")
        if side == "ingress":
            return self.cloud.ingress_for(vm_name)
        return self.cloud.egress_for(vm_name)

    def _do_partition_edge(self, event: FaultEvent) -> None:
        node = self._edge_target(event)
        if self.cloud.network.is_isolated(node.address):
            return self._noop(event, "edge already partitioned")
        self.sim.trace.record(self.sim.now, "fault.partition_edge",
                              address=node.address)
        self.cloud.network.isolate(node.address)

    def _do_heal_edge(self, event: FaultEvent) -> None:
        node = self._edge_target(event)
        if not self.cloud.network.is_isolated(node.address):
            return self._noop(event, "edge was never partitioned")
        self.sim.trace.record(self.sim.now, "recovery.heal_edge",
                              address=node.address)
        self.cloud.network.restore(node.address)

    def __repr__(self) -> str:
        return (f"<FaultInjector events={len(self.schedule)} "
                f"applied={len(self.applied)}>")
