"""Self-healing: replica evacuation onto spare capacity.

The base recovery path (:func:`repro.faults.recovery.rejoin_replica`)
rebuilds a crashed replica *in place* -- useless when the machine under
it is gone for good.  A permanently failed host would leave its tenants
degraded at 2-of-3 forever, eroding both availability and the
timing-channel guarantee the median construction provides (a 2-replica
median is just the pairwise max).  The :class:`EvacuationController`
closes that gap: it reacts to condemned hosts and sustained replica
suspicion by rebuilding the lost replica on a *spare* machine.

Evacuation state machine (per replica)::

    trigger (host condemned / suspicion confirmed)
      -> grace delay (a scheduled in-place restart may win the race)
      -> placement: remove the dead slot, place_at() a spare host that
         keeps the <=1-shared-host anti-affinity invariant, verify()
      -> replay a survivor's ExecutionRecording into a fresh VMM on the
         new host (strict: determinism re-asserted, not assumed)
      -> rewire: ingress PGM membership (new member subscribes at the
         replay horizon so NAK repair backfills from the retain
         buffer), survivors' coordination groups (replace_member +
         fresh stream), a fresh coordination endpoint for the new
         replica (sibling streams join at the survivors' current
         cursors -- in-flight datagrams were addressed to the dead
         host), and the old host's protocol endpoints are stripped
      -> start + announce_rejoin(floor): egress quorum restored via the
         fabric's rejoin path; a sibling pushes any decisions at or
         above the horizon that repair cannot recover

Failures (no live survivor yet, no legal spare slot) retry every
``config.heal_retry_interval`` up to ``config.heal_max_attempts`` times
before tracing ``heal.failed``.  Everything is driven off simulation
time and sorted iteration orders, so healing is fully seed-
deterministic -- same-seed storms heal byte-identically.
"""

import random
from typing import Dict, List, Optional

from repro.faults.recovery import RecoveryError, pick_survivor, \
    rejoin_replica
from repro.machine.host import Host, HostCapacityError
from repro.placement.scheduler import PlacementError
from repro.vmm.hypervisor import ReplicaVMM
from repro.vmm.replay import ExecutionRecorder, ReplayEngine


class HealError(RuntimeError):
    """One evacuation attempt failed (retried up to heal_max_attempts)."""


class EvacuationController:
    """Watches a cloud for permanently lost replicas and evacuates them.

    Registers itself as ``cloud.healer``; the fault injector notifies it
    of condemned hosts and the fabric forwards replica suspicions.
    """

    def __init__(self, cloud, placer=None):
        self.cloud = cloud
        self.sim = cloud.sim
        self.config = cloud.config
        # scenario-built clouds carry the placer on the BuiltScenario,
        # not the Cloud, so accept an explicit one
        self.placer = placer if placer is not None else cloud.placer
        self.evacuations: List[dict] = []
        self.failures: List[dict] = []
        #: observers called as ``fn(vm_name, replica_id, mode)`` after
        #: every completed heal (mode: skip/readmit/rejoin/evacuate) --
        #: lets workload-level repair (e.g. the storage tenant's
        #: RepairDaemon) re-verify state once the replica is back
        self.on_complete: List = []
        self._scheduled: set = set()   # (vm_name, replica_id) pending
        cloud.healer = self

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------
    def host_condemned(self, host: Host) -> None:
        """A ``crash_host`` fault permanently decommissioned ``host``:
        schedule evacuation of every replica it carried."""
        self.sim.trace.record(self.sim.now, "heal.condemned",
                              host=host.host_id,
                              replicas=len(host.vmms))
        for vmm in sorted(host.vmms,
                          key=lambda v: (v.vm_name, v.replica_id)):
            self._schedule(vmm.vm_name, vmm.replica_id,
                           reason="condemned",
                           delay=self.config.evacuation_grace)

    def replica_suspected(self, vm_name: str, replica_id: int) -> None:
        """The fabric's failure detector fired.  Wait out the confirm
        window first: a scheduled in-place restart usually wins."""
        self._schedule(vm_name, replica_id, reason="suspicion",
                       delay=self.config.suspect_confirm)

    def _schedule(self, vm_name: str, replica_id: int, reason: str,
                  delay: float) -> None:
        key = (vm_name, replica_id)
        if key in self._scheduled:
            return
        self._scheduled.add(key)
        self.sim.call_after(delay, self._attempt, vm_name, replica_id,
                            reason, 1, self.sim.now)

    # ------------------------------------------------------------------
    # the state machine
    # ------------------------------------------------------------------
    def _attempt(self, vm_name: str, replica_id: int, reason: str,
                 attempt: int, detected_at: float) -> None:
        self._scheduled.discard((vm_name, replica_id))
        vm = self.cloud.vms.get(vm_name)
        if vm is None:
            return
        vmm = vm.vmms[replica_id]
        if not vmm.failed:
            if self._suspected_by_peers(vm, replica_id):
                # falsely condemned: the replica is alive but its
                # outbound multicasts were lost (e.g. purged
                # proposals), so the survivors wrote it off and every
                # later agreement degrades.  Re-announce it; the
                # rejoin marks it live at the peers and restores the
                # egress quorum.
                vmm.coordination.announce_rejoin()
                mode = "readmit"
            else:
                # an in-place restart (or a previous evacuation) beat us
                self.sim.trace.record(self.sim.now, "heal.skip",
                                      vm=vm_name, replica=replica_id,
                                      reason="replica live")
                return
        else:
            host = self.cloud.host_for(vm_name, replica_id)
            try:
                mode = self._revive(vm, vm_name, replica_id, host,
                                    reason, detected_at)
            except (HealError, RecoveryError) as exc:
                self._retry(vm_name, replica_id, reason, attempt,
                            detected_at, str(exc))
                return
        elapsed = self.sim.now - detected_at
        self.sim.metrics.incr(f"heal.{mode}s")
        self.sim.metrics.observe("heal.recovery_time", elapsed)
        self.sim.trace.record(self.sim.now, "heal.complete",
                              vm=vm_name, replica=replica_id,
                              mode=mode, reason=reason, attempt=attempt,
                              elapsed=round(elapsed, 9))
        for listener in self.on_complete:
            listener(vm_name, replica_id, mode)

    def _suspected_by_peers(self, vm, replica_id: int) -> bool:
        """Does any live sibling's failure detector consider
        ``replica_id`` dead?"""
        for rid, sibling in enumerate(vm.vmms):
            if rid == replica_id or sibling.failed:
                continue
            coordination = sibling.coordination
            if coordination is not None \
                    and coordination.live.get(replica_id) is False:
                return True
        return False

    def _revive(self, vm, vm_name: str, replica_id: int, host,
                reason: str, detected_at: float) -> str:
        if host.alive and not host.condemned:
            # machine is fine, only the replica died: rebuild in place
            rejoin_replica(self.cloud, vm_name, replica_id)
            return "rejoin"
        self._evacuate(vm, replica_id, reason, detected_at)
        return "evacuate"

    def _retry(self, vm_name: str, replica_id: int, reason: str,
               attempt: int, detected_at: float, error: str) -> None:
        if attempt >= self.config.heal_max_attempts:
            self.sim.metrics.incr("heal.failures")
            self.sim.trace.record(self.sim.now, "heal.failed",
                                  vm=vm_name, replica=replica_id,
                                  reason=reason, attempts=attempt,
                                  error=error)
            self.failures.append({
                "time": self.sim.now, "vm": vm_name,
                "replica": replica_id, "reason": reason,
                "attempts": attempt, "error": error})
            return
        self.sim.trace.record(self.sim.now, "heal.retry",
                              vm=vm_name, replica=replica_id,
                              attempt=attempt, error=error)
        key = (vm_name, replica_id)
        self._scheduled.add(key)
        self.sim.call_after(self.config.heal_retry_interval,
                            self._attempt, vm_name, replica_id, reason,
                            attempt + 1, detected_at)

    # ------------------------------------------------------------------
    # placement churn
    # ------------------------------------------------------------------
    def _choose_host(self, vm, replica_id: int) -> int:
        """Pick the replacement machine, keeping anti-affinity legal.

        With a placer the dead slot is removed and every candidate is
        tried through ``place_at`` (so the <=1-shared-host invariant is
        checked by the scheduler itself, then re-``verify()``-ed); on
        total failure the original triangle is restored so the fleet
        state stays consistent.  Without a placer (legacy ad-hoc
        clouds), the first alive host with a free slot that carries no
        sibling is used.
        """
        survivors = sorted(h for rid, h in enumerate(vm.hosts)
                           if rid != replica_id)
        candidates = [
            host.host_id for host in self.cloud.hosts
            if host.alive and not host.condemned
            and host.host_id not in survivors
            and (host.capacity is None
                 or host.residents < host.capacity)
        ]
        candidates.sort(key=lambda hid: (
            self.placer.load_of(hid) if self.placer is not None else
            self.cloud.hosts[hid].residents, hid))
        placer = self.placer
        if placer is None or vm.name not in placer.assignments:
            if not candidates:
                raise HealError(
                    f"{vm.name} r{replica_id}: no live machine with a "
                    f"free slot off hosts {survivors}")
            return candidates[0]
        original = placer.assignments[vm.name]
        placer.remove(vm.name)
        for candidate in candidates:
            try:
                placer.place_at(vm.name,
                                sorted(survivors + [candidate]))
            except PlacementError:
                continue
            if not placer.verify():     # defence in depth; never expected
                placer.remove(vm.name)
                continue
            return candidate
        placer.place_at(vm.name, original)  # restore; stay degraded
        raise HealError(
            f"{vm.name} r{replica_id}: no spare slot preserves the "
            f"anti-affinity invariant (survivors on {survivors})")

    # ------------------------------------------------------------------
    # evacuation proper
    # ------------------------------------------------------------------
    def _evacuate(self, vm, replica_id: int, reason: str,
                  detected_at: float) -> None:
        cloud = self.cloud
        vm_name = vm.name
        if vm.workload_factory is None or vm.workload_seed is None:
            raise HealError(f"{vm_name} has no workload factory; "
                            f"cannot re-execute")
        survivor_id = pick_survivor(vm, exclude_replica=replica_id)
        if survivor_id is None:
            raise HealError(
                f"{vm_name} r{replica_id}: no live survivor with a "
                f"recorded injection schedule")
        recording = vm.recorders[survivor_id].recording

        old_host = cloud.host_for(vm_name, replica_id)
        new_host_id = self._choose_host(vm, replica_id)
        new_host = cloud.hosts[new_host_id]
        self.sim.trace.record(
            self.sim.now, "heal.placement", vm=vm_name,
            replica=replica_id, old_host=old_host.host_id,
            new_host=new_host_id,
            triangle=sorted(h for rid, h in enumerate(vm.hosts)
                            if rid != replica_id) + [new_host_id])

        # strict offline replay: determinism re-asserted before rejoin
        engine = ReplayEngine(recording, vm.workload_factory,
                              random.Random(vm.workload_seed),
                              strict=True)
        engine.run()
        self.sim.trace.record(self.sim.now, "heal.replay",
                              vm=vm_name, replica=replica_id,
                              source=survivor_id,
                              horizon=recording.horizon_instr,
                              outputs=len(engine.outputs))

        # hold admissions while the PGM membership is inconsistent
        ingress = cloud.ingress_for(vm_name)
        ingress.pause_vm(vm_name)
        try:
            new_vmm = ReplicaVMM(
                self.sim, new_host, vm_name, replica_id, cloud.config,
                workload_rng=random.Random(vm.workload_seed),
                egress_address=cloud.egresses[vm.shard].address,
                policy=vm.policy)
        except HostCapacityError as exc:
            ingress.resume_vm(vm_name)
            self._revert_placement(vm, replica_id, old_host.host_id,
                                   new_host_id)
            raise HealError(str(exc))
        new_vmm.failed = True            # adopt_replay requires a corpse
        new_vmm.adopt_replay(engine)
        floor = new_vmm._net_suppress_floor

        old_vmm = vm.vmms[replica_id]
        vm.vmms[replica_id] = new_vmm
        vm.hosts[replica_id] = new_host_id
        if replica_id < len(vm.workloads):
            vm.workloads[replica_id] = engine.workload
        vm.recorders[replica_id] = ExecutionRecorder(new_vmm,
                                                     base=recording)
        old_host.detach_vmm(old_vmm)
        self._strip_endpoints(vm_name, old_host)

        # ingress: swap the member, then join at the replay horizon so
        # the gap to the sender's cursor NAK-repairs from retained ODATA
        ingress.rewire_vm(vm_name, old_host.address, new_host.address)
        cloud.attach_ingress_receiver(vm, new_vmm, new_host,
                                      start_seq=floor)

        # coordination: every other replica (live or not -- a dead one
        # may itself rejoin later and must know the new address) learns
        # the new member; the new endpoint joins the survivors' streams
        # at their current cursors
        sibling_starts: Dict[int, int] = {}
        for rid, sibling in enumerate(vm.vmms):
            if rid == replica_id:
                continue
            coordination = sibling.coordination
            if coordination is None:
                continue
            coordination.rewire_sibling(replica_id, new_host.address)
            sibling_starts[rid] = coordination.sender.next_seq
        cloud.attach_coordination(vm, new_vmm, new_host,
                                  sibling_start_seqs=sibling_starts)
        ingress.resume_vm(vm_name)

        new_vmm.start()
        new_vmm.coordination.announce_rejoin(floor=floor)
        self.sim.metrics.incr("recovery.replays")
        self.evacuations.append({
            "time": self.sim.now, "vm": vm_name, "replica": replica_id,
            "reason": reason, "old_host": old_host.host_id,
            "new_host": new_host_id, "floor": floor,
            "elapsed": self.sim.now - detected_at})

    def _revert_placement(self, vm, replica_id: int, old_host_id: int,
                          new_host_id: int) -> None:
        placer = self.placer
        if placer is None or vm.name not in placer.assignments:
            return
        survivors = sorted(h for rid, h in enumerate(vm.hosts)
                           if rid != replica_id)
        placer.remove(vm.name)
        placer.place_at(vm.name, sorted(survivors + [old_host_id]))

    def _strip_endpoints(self, vm_name: str, old_host: Host) -> None:
        """Forget the dead host's per-VM protocol handlers so the
        machine can be reused (or the VM re-evacuated) without endpoint
        collisions."""
        node = old_host.node
        for protocol in (f"pgm.ingress.{vm_name}",
                         f"pgm.coord.{vm_name}",
                         f"pgm-nak.coord.{vm_name}",
                         f"coord-decided.{vm_name}"):
            node.unregister_protocol(protocol)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Plain-data summary (campaign cells pickle this)."""
        times = sorted(e["elapsed"] for e in self.evacuations)
        return {
            "evacuations": len(self.evacuations),
            "heal_failures": len(self.failures),
            "recovery_times": times,
        }
