"""Replay-based replica recovery (Sec. V-A's recovery footnote).

A crashed replica cannot simply be rebooted: its siblings have advanced,
and StopWatch correctness requires all three replicas to be at identical
guest states for identical instruction counts.  But determinism makes
recovery exact rather than approximate -- a replica's entire execution
is captured by its injection schedule, and the survivors have been
recording theirs (:class:`~repro.vmm.replay.ExecutionRecorder`).

:func:`rejoin_replica` therefore:

1. picks a live survivor with a recording;
2. re-executes the guest offline against that schedule with a strict
   :class:`~repro.vmm.replay.ReplayEngine` -- every output is checked
   against the survivor's, so the determinism invariant is re-asserted,
   not assumed (a mismatch raises :class:`ReplayMismatch` and aborts
   the rejoin);
3. transplants the replayed guest into the crashed VMM
   (:meth:`~repro.vmm.hypervisor.ReplicaVMM.adopt_replay`), which also
   sets the ingress-seq floor so late NAK repairs of pre-crash traffic
   are suppressed;
4. re-seeds a recorder from the survivor's history so the rejoined
   replica is itself a valid recovery source for the *next* failure;
5. restarts the engine and announces the rejoin, restoring the full
   3-replica quorum at the coordination and egress layers.
"""

import random
from typing import Optional

from repro.vmm.replay import ExecutionRecorder, ReplayEngine


class RecoveryError(RuntimeError):
    """The replica cannot be rebuilt (no survivor, no recording, ...)."""


def pick_survivor(vm, exclude_replica: int) -> Optional[int]:
    """Lowest-id live replica with a recording, or None."""
    for rid, vmm in enumerate(vm.vmms):
        if rid == exclude_replica or vmm.failed:
            continue
        if rid in vm.recorders:
            return rid
    return None


def rejoin_replica(cloud, vm_name: str, replica_id: int) -> ReplayEngine:
    """Rebuild a crashed replica from a survivor's injection schedule.

    Returns the finished :class:`ReplayEngine` (useful for inspecting
    the replayed outputs in tests).  Raises :class:`RecoveryError` if
    the replica is not actually down or no recovery source exists, and
    :class:`~repro.vmm.replay.ReplayMismatch` if the re-execution does
    not reproduce the survivor's outputs -- determinism is verified on
    every rejoin, never assumed.
    """
    vm = cloud.vms.get(vm_name)
    if vm is None:
        raise RecoveryError(f"unknown VM {vm_name!r}")
    if not 0 <= replica_id < len(vm.vmms):
        raise RecoveryError(f"{vm_name} has no replica {replica_id}")
    vmm = vm.vmms[replica_id]
    if not vmm.failed:
        raise RecoveryError(
            f"{vm_name} r{replica_id} is not down; nothing to recover")
    if vm.workload_factory is None or vm.workload_seed is None:
        raise RecoveryError(
            f"{vm_name} has no workload factory; cannot re-execute")

    # validate every recovery precondition *before* mutating the fabric,
    # so an impossible rejoin (all replicas dead, condemned machine)
    # leaves everything resumable for a later attempt
    host = cloud.host_for(vm_name, replica_id)
    if host.condemned:
        raise RecoveryError(
            f"{vm_name} r{replica_id}: host {host.host_id} is condemned; "
            f"in-place rejoin is impossible, evacuate instead "
            f"(repro.faults.heal)")
    survivor_id = pick_survivor(vm, exclude_replica=replica_id)
    if survivor_id is None:
        raise RecoveryError(
            f"{vm_name} r{replica_id}: no live survivor with a recorded "
            f"injection schedule (was the fault injector armed with "
            f"record_for_recovery?)")
    recording = vm.recorders[survivor_id].recording

    if not host.alive:
        host.restore()

    engine = ReplayEngine(recording, vm.workload_factory,
                          random.Random(vm.workload_seed), strict=True)
    engine.run()  # ReplayMismatch here aborts the rejoin
    cloud.sim.trace.record(cloud.sim.now, "recovery.replay",
                           vm=vm_name, replica=replica_id,
                           source=survivor_id,
                           horizon=recording.horizon_instr,
                           outputs=len(engine.outputs))
    cloud.sim.metrics.incr("recovery.replays")

    vmm.adopt_replay(engine)
    if replica_id < len(vm.workloads):
        vm.workloads[replica_id] = engine.workload
    # the rejoined replica inherits the survivor's history and records on
    vm.recorders[replica_id] = ExecutionRecorder(vmm, base=recording)
    vmm.start()
    if vmm.coordination is not None:
        # advertise the replay horizon: decisions at or above it that
        # NAK repair cannot recover are pushed by a live sibling after
        # config.rejoin_catchup_delay (see coordination docstring)
        vmm.coordination.announce_rejoin(floor=vmm._net_suppress_floor)
    return engine
