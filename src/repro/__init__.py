"""StopWatch (DSN 2013) reproduction.

A complete, deterministic discrete-event reconstruction of StopWatch --
Li, Gao and Reiter's replicated-VM defense against access-driven timing
side channels in IaaS clouds -- together with the substrate the paper's
Xen prototype relied on (machines, devices, network stacks, cloud
fabric), the workloads it was evaluated with, the placement theory of
Sec. VIII, and the statistical analysis of the appendix.

Typical entry points:

>>> from repro.sim import Simulator
>>> from repro.core import DEFAULT, PASSTHROUGH
>>> from repro.cloud import Cloud
>>> from repro.workloads import EchoServer
>>> sim = Simulator(seed=42)
>>> cloud = Cloud(sim, machines=3, config=DEFAULT)
>>> vm = cloud.create_vm("echo", EchoServer)
>>> client = cloud.add_client("client:1")
>>> cloud.run(until=1.0)

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (events, processes, channels,
    resources, RNG streams, tracing).
``repro.core``
    The paper's core mechanisms: virtual time (Eqn. 1 + epoch
    resynchronisation), median agreement, quorum release, configuration.
``repro.machine``
    Physical hosts (dom0 queue, disk, timing noise) and the
    deterministic guest runtime.
``repro.vmm``
    The replica hypervisor and the inter-VMM coordination protocol.
``repro.net``
    Links, routing, UDP, TCP and PGM reliable multicast.
``repro.cloud``
    Ingress/egress nodes and cluster assembly.
``repro.workloads``
    Guest workloads: file servers, NFS + nhfsstone, PARSEC kernels, echo.
``repro.placement``
    Edge-disjoint triangle placement (Theorems 1 and 2).
``repro.stats``
    Order statistics, chi-squared detection, noise comparison.
``repro.attacks``
    Attacker models: clock suite, coresidence detection, covert
    channel, collaborating attackers.
``repro.analysis``
    Experiment runners for every figure of the evaluation.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "core",
    "machine",
    "vmm",
    "net",
    "cloud",
    "workloads",
    "placement",
    "stats",
    "attacks",
    "analysis",
]
