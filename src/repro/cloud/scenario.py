"""Declarative multi-tenant scenarios: spec in, wired cloud out.

The paper's Sec. VI analysis is about *fleets*: replica triangles packed
onto ``n`` machines so any two VMs co-reside on at most one of them.
A :class:`ScenarioSpec` describes such a deployment declaratively --
host fleet size and capacity, edge shard count, tenant populations with
per-tenant workload mix, client counts and WAN profiles -- and loads
from TOML/JSON exactly like campaign specs::

    name = "consolidated"
    machines = 9
    shards = 2

    [[tenant]]
    name = "web"
    count = 4
    workload = "fileserver"
    clients = 2
    wan = "campus"
    file_bytes = 20000

    [[tenant]]
    name = "ping"
    count = 4
    workload = "echo"
    request_rate = 40.0

:class:`CloudBuilder` consumes the spec: it sizes the fleet, builds a
strict :class:`~repro.placement.scheduler.PlacementScheduler`, deploys
every tenant VM through it (so co-residency follows the paper's
edge-disjoint-triangle constraint), attaches the client populations
over their WAN profiles, and arms deterministic per-client load
drivers.  Everything is seeded through named RNG streams, so a scenario
run is bit-reproducible.
"""

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.config import StopWatchConfig, DEFAULT
from repro.placement.scheduler import PlacementScheduler, fleet_for


class ScenarioError(ValueError):
    """A malformed scenario spec."""


# ---------------------------------------------------------------------------
# WAN profiles
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WanProfile:
    """One client-to-cloud path class (latency s, bandwidth bit/s,
    jitter s) -- the ``add_client`` knobs under a reusable name."""

    latency: float = 0.002
    bandwidth: float = 100e6
    jitter: float = 0.0002

    def __post_init__(self) -> None:
        if self.latency < 0 or self.jitter < 0:
            raise ScenarioError(f"bad WAN timing in {self}")
        if self.bandwidth <= 0:
            raise ScenarioError(f"bandwidth must be positive in {self}")


#: built-in path classes; a spec's ``[wan.<name>]`` tables extend/override
BUILTIN_WAN: Dict[str, WanProfile] = {
    "lan": WanProfile(latency=0.0005, bandwidth=1e9, jitter=5e-5),
    "campus": WanProfile(latency=0.002, bandwidth=100e6, jitter=0.0002),
    "metro": WanProfile(latency=0.008, bandwidth=50e6, jitter=0.001),
    "wide": WanProfile(latency=0.040, bandwidth=20e6, jitter=0.004),
}


# ---------------------------------------------------------------------------
# tenants
# ---------------------------------------------------------------------------
@dataclass
class TenantSpec:
    """A population of identical guest VMs plus their client load.

    ``workload`` names an entry in the pluggable registry
    (:mod:`repro.workloads.registry`); ``workload_params`` carries the
    workload's own knobs (validated against the spec's declared
    defaults).  Registry specs with ``scope="vm"`` get ``clients``
    drivers per VM, each targeting that VM; ``scope="tenant"``
    workloads (e.g. ``storage``) get ``clients`` drivers per *tenant*,
    each handed the ordered list of all the tenant's VM addresses.
    """

    name: str
    count: int = 1
    workload: str = "echo"
    #: external client machines per VM (per tenant for tenant-scoped
    #: workloads)
    clients: int = 1
    #: WAN profile name the clients connect over
    wan: str = "campus"
    #: echo pings/s or NFS ops/s per client (ignored by fileserver)
    request_rate: float = 25.0
    #: file size each fileserver client downloads in a loop
    file_bytes: int = 20_000
    #: optional per-VM host pinning (list of host-id triples); None
    #: defers to the placement scheduler
    hosts: Optional[List[List[int]]] = None
    #: per-request client timeout (s); None disables retry entirely and
    #: keeps the historical byte-identical event stream
    request_timeout: Optional[float] = None
    #: retransmits per request once ``request_timeout`` is set
    max_retries: int = 3
    #: first-retry backoff (s); doubles per attempt, seeded jitter on top
    backoff_base: float = 0.05
    #: mitigation policy name (repro.mitigation.POLICIES); None runs
    #: the cloud's default (stopwatch under a mediated config)
    policy: Optional[str] = None
    #: constructor params for the policy (e.g. {"bound": 0.02})
    policy_params: Dict[str, Any] = field(default_factory=dict)
    #: workload-specific knobs (e.g. {"k": 2, "n": 3} for storage);
    #: validated against the registry spec's declared defaults
    workload_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        from repro.workloads import registry

        if not self.name or any(c in self.name for c in "/: "):
            raise ScenarioError(f"bad tenant name {self.name!r}")
        if self.count < 1:
            raise ScenarioError(
                f"tenant {self.name!r}: count must be >= 1, "
                f"got {self.count}")
        try:
            wspec = registry.get(self.workload)
        except registry.UnknownWorkloadError as exc:
            raise ScenarioError(
                f"tenant {self.name!r}: {exc}") from None
        try:
            wspec.params_for(self.workload_params)
        except ValueError as exc:
            raise ScenarioError(
                f"tenant {self.name!r}: {exc}") from None
        if self.clients < 0:
            raise ScenarioError(
                f"tenant {self.name!r}: clients must be >= 0")
        if self.clients and wspec.driver is None:
            raise ScenarioError(
                f"tenant {self.name!r}: workload {self.workload!r} "
                f"has no client driver; set clients = 0")
        if wspec.check is not None:
            problem = wspec.check(self)
            if problem:
                raise ScenarioError(
                    f"tenant {self.name!r}: {problem}")
        if self.request_rate <= 0:
            raise ScenarioError(
                f"tenant {self.name!r}: request_rate must be positive")
        if self.file_bytes < 1:
            raise ScenarioError(
                f"tenant {self.name!r}: file_bytes must be >= 1")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ScenarioError(
                f"tenant {self.name!r}: request_timeout must be "
                f"positive, got {self.request_timeout}")
        if self.max_retries < 0:
            raise ScenarioError(
                f"tenant {self.name!r}: max_retries must be >= 0")
        if self.backoff_base <= 0:
            raise ScenarioError(
                f"tenant {self.name!r}: backoff_base must be positive")
        if self.hosts is not None and len(self.hosts) != self.count:
            raise ScenarioError(
                f"tenant {self.name!r}: {len(self.hosts)} host pins for "
                f"{self.count} VMs")
        if self.policy_params and self.policy is None:
            raise ScenarioError(
                f"tenant {self.name!r}: policy_params without a policy")
        if self.policy is not None:
            # construct once to validate name and params eagerly
            from repro.mitigation import PolicyError
            try:
                self.make_policy()
            except PolicyError as exc:
                raise ScenarioError(
                    f"tenant {self.name!r}: {exc}") from exc

    def make_policy(self):
        """The tenant's :class:`~repro.mitigation.MitigationPolicy`
        instance, or ``None`` for the cloud default."""
        if self.policy is None:
            return None
        from repro.mitigation import make_policy
        return make_policy(self.policy, **self.policy_params)

    def vm_names(self) -> List[str]:
        if self.count == 1:
            return [self.name]
        return [f"{self.name}-{i}" for i in range(self.count)]


# ---------------------------------------------------------------------------
# the scenario spec
# ---------------------------------------------------------------------------
@dataclass
class ScenarioSpec:
    """A complete multi-tenant deployment, loadable from TOML/JSON."""

    name: str
    tenants: List[TenantSpec]
    #: physical fleet size; None auto-sizes to the tenant VM count
    machines: Optional[int] = None
    #: per-machine guest slots; None uses the structural max (n-1)//2
    capacity: Optional[int] = None
    #: ingress/egress shard count
    shards: int = 1
    #: StopWatchConfig field overrides (e.g. {"delta_net": 0.008})
    config: Dict[str, Any] = field(default_factory=dict)
    #: Host kwargs (jitter_sigma, contention_alpha, coresidency_beta,
    #: disk_kwargs); per-host capacity is injected from ``capacity``
    host: Dict[str, Any] = field(default_factory=dict)
    #: named WAN profile overrides/additions
    wan: Dict[str, WanProfile] = field(default_factory=dict)
    #: simulated seconds before the first client starts
    start_delay: float = 0.05
    #: extra start spacing per client (index-staggered, deterministic)
    stagger: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario needs a name")
        if not self.tenants:
            raise ScenarioError("scenario needs at least one [[tenant]]")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ScenarioError(f"duplicate tenant names in {names}")
        if self.machines is not None and self.machines < 3:
            raise ScenarioError(
                f"a StopWatch fleet needs >= 3 machines, "
                f"got {self.machines}")
        if self.shards < 1:
            raise ScenarioError(f"shards must be >= 1, got {self.shards}")
        if self.start_delay < 0 or self.stagger < 0:
            raise ScenarioError("start_delay/stagger must be >= 0")
        profiles = dict(BUILTIN_WAN)
        profiles.update(self.wan)
        self.wan = profiles
        for tenant in self.tenants:
            if tenant.wan not in self.wan:
                raise ScenarioError(
                    f"tenant {tenant.name!r}: unknown WAN profile "
                    f"{tenant.wan!r}; have {sorted(self.wan)}")

    @property
    def total_vms(self) -> int:
        return sum(t.count for t in self.tenants)

    def resolved_fleet(self) -> tuple:
        """The ``(machines, capacity)`` this scenario deploys onto."""
        if self.machines is None:
            return fleet_for(self.total_vms, self.capacity)
        capacity = self.capacity if self.capacity is not None \
            else max(1, (self.machines - 1) // 2)
        return self.machines, capacity

    def stopwatch_config(self) -> StopWatchConfig:
        try:
            return DEFAULT.with_overrides(**self.config) \
                if self.config else DEFAULT
        except TypeError as exc:
            raise ScenarioError(f"bad [config] override: {exc}") from exc

    # -- construction -------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        data = dict(data)
        raw_tenants = data.pop("tenant", data.pop("tenants", None))
        if not raw_tenants:
            raise ScenarioError("spec has no [[tenant]] entries")
        tenants = []
        for raw in raw_tenants:
            raw = dict(raw)
            try:
                tenants.append(TenantSpec(**raw))
            except TypeError as exc:
                raise ScenarioError(f"bad tenant entry: {exc}") from exc
        raw_wan = data.pop("wan", {})
        wan = {}
        for profile_name, fields in raw_wan.items():
            try:
                wan[profile_name] = WanProfile(**fields)
            except TypeError as exc:
                raise ScenarioError(
                    f"bad [wan.{profile_name}]: {exc}") from exc
        try:
            name = data.pop("name")
        except KeyError:
            raise ScenarioError("spec missing 'name'") from None
        known = {key: data.pop(key) for key in
                 ("machines", "capacity", "shards", "config", "host",
                  "start_delay", "stagger") if key in data}
        if data:
            raise ScenarioError(f"unknown spec keys {sorted(data)}")
        return cls(name=name, tenants=tenants, wan=wan, **known)

    @classmethod
    def from_file(cls, path: str) -> "ScenarioSpec":
        """Load a spec from ``.toml`` or ``.json``."""
        if path.endswith(".toml"):
            try:
                import tomllib
            except ModuleNotFoundError as exc:        # Python < 3.11
                raise ScenarioError(
                    "loading .toml specs requires Python 3.11+ "
                    "(tomllib); convert the spec to .json") from exc
            with open(path, "rb") as handle:
                return cls.from_dict(tomllib.load(handle))
        if path.endswith(".json"):
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        raise ScenarioError(
            f"spec path must end in .toml or .json: {path}")

    def build(self, sim) -> "BuiltScenario":
        """Convenience: ``CloudBuilder(self).build(sim)``."""
        return CloudBuilder(self).build(sim)


# ---------------------------------------------------------------------------
# client load drivers
# ---------------------------------------------------------------------------
def __getattr__(name: str):
    # DownloadLoop moved to repro.workloads.fileserver next to the
    # other client drivers; resolve the pre-registry import path
    # lazily so the spec layer stays import-light.
    if name == "DownloadLoop":
        from repro.workloads.fileserver import DownloadLoop
        return DownloadLoop
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ---------------------------------------------------------------------------
# the builder
# ---------------------------------------------------------------------------
@dataclass
class BuiltScenario:
    """A wired, ready-to-run deployment built from a spec."""

    spec: ScenarioSpec
    sim: Any
    cloud: Any
    placer: PlacementScheduler
    #: tenant name -> its VM names, in deployment order
    tenant_vms: Dict[str, List[str]]
    #: (vm_name, client_index) -> load driver
    drivers: Dict[tuple, Any]

    def run(self, until: float, drain: float = 0.5) -> None:
        """Run the deployment to ``until`` simulated seconds.

        The last ``drain`` seconds are quiesce time: client drivers are
        stopped so every replica can finish processing the identical
        inbound sequence -- afterwards per-VM replica output counts
        agree exactly (the determinism observable).  ``drain=0``
        disables quiescing and leaves replicas cut off mid-flight.
        """
        if drain > 0:
            cutoff = max(0.0, until - drain)
            for driver in self.drivers.values():
                self.sim.call_after(max(0.0, cutoff - self.sim.now),
                                    driver.stop)
        self.cloud.run(until=until)

    def verify_placement(self) -> bool:
        """Global Sec. VIII invariants on the *wired* fabric: scheduler
        invariants hold AND every VM's replicas actually sit on its
        assigned triangle."""
        if not self.placer.verify():
            return False
        for vm_name, triangle in self.placer.assignments.items():
            vm = self.cloud.vms[vm_name]
            wired = tuple(sorted(vmm.host.host_id for vmm in vm.vmms))
            if wired != tuple(triangle):
                return False
        return True

    def per_tenant_outputs(self) -> Dict[str, List[int]]:
        """Per-VM replica output counts, grouped by tenant -- the
        determinism observable (all replicas of a VM must agree)."""
        report: Dict[str, List[int]] = {}
        for tenant_name, vm_names in self.tenant_vms.items():
            counts = []
            for vm_name in vm_names:
                vm = self.cloud.vms[vm_name]
                replica_counts = {vmm.stats["outputs"] for vmm in vm.vmms}
                if len(replica_counts) != 1:
                    raise AssertionError(
                        f"{vm_name}: replica output counts diverge: "
                        f"{sorted(replica_counts)}")
                counts.append(replica_counts.pop())
            report[tenant_name] = counts
        return report


class CloudBuilder:
    """Builds a :class:`~repro.cloud.fabric.Cloud` from a spec."""

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec

    def build(self, sim) -> BuiltScenario:
        from repro.cloud.fabric import Cloud
        from repro.workloads import registry

        spec = self.spec
        machines, capacity = spec.resolved_fleet()
        config = spec.stopwatch_config()
        placer = PlacementScheduler(machines, capacity)
        host_kwargs = dict(spec.host)
        host_kwargs.setdefault("capacity", placer.capacity)
        cloud = Cloud(sim, machines=machines, config=config,
                      shards=spec.shards, placer=placer,
                      host_kwargs=host_kwargs)
        sim.trace.record(sim.now, "scenario.build", scenario=spec.name,
                         machines=machines, capacity=placer.capacity,
                         shards=spec.shards, vms=spec.total_vms)

        tenant_vms: Dict[str, List[str]] = {}
        drivers: Dict[tuple, Any] = {}
        client_index = 0
        loose_slot = 0   # round-robin host cursor for non-triangle VMs
        for tenant in spec.tenants:
            wspec = registry.get(tenant.workload)
            params = wspec.params_for(tenant.workload_params)
            server_factory = wspec.make_server(params)
            names = tenant.vm_names()
            tenant_vms[tenant.name] = names
            vm_policy = tenant.make_policy()
            replica_count = (vm_policy.replica_count(config)
                             if vm_policy is not None else config.replicas)
            wan = spec.wan[tenant.wan]
            for vm_index, vm_name in enumerate(names):
                if tenant.hosts is not None:
                    if replica_count == 3:
                        placer.place_at(vm_name, tenant.hosts[vm_index])
                    cloud.create_vm(vm_name, server_factory,
                                    hosts=list(tenant.hosts[vm_index]),
                                    policy=vm_policy,
                                    profile=wspec.profile)
                elif replica_count != 3:
                    # non-triangle (single-replica policy) VMs bypass
                    # the triangle placer: spread them round-robin,
                    # deterministically in deployment order
                    pins = [(loose_slot + i) % machines
                            for i in range(replica_count)]
                    loose_slot += replica_count
                    cloud.create_vm(vm_name, server_factory,
                                    hosts=pins, policy=vm_policy,
                                    profile=wspec.profile)
                else:
                    cloud.create_vm(vm_name, server_factory,
                                    policy=vm_policy,
                                    profile=wspec.profile)
                if wspec.scope != "vm":
                    continue
                for slot in range(tenant.clients):
                    port = cloud.add_client(
                        f"client:{vm_name}.{slot}",
                        latency=wan.latency, bandwidth=wan.bandwidth,
                        jitter=wan.jitter)
                    driver = wspec.make_driver(port, f"vm:{vm_name}",
                                               tenant, params)
                    drivers[(vm_name, slot)] = driver
                    start_at = spec.start_delay \
                        + spec.stagger * client_index
                    sim.call_after(start_at, driver.start)
                    client_index += 1
            if wspec.scope == "tenant":
                # tenant-scoped drivers see the whole VM population
                # (e.g. one erasure-coded object striped across it)
                targets = [f"vm:{vm_name}" for vm_name in names]
                for slot in range(tenant.clients):
                    port = cloud.add_client(
                        f"client:{tenant.name}.{slot}",
                        latency=wan.latency, bandwidth=wan.bandwidth,
                        jitter=wan.jitter)
                    driver = wspec.make_driver(port, targets, tenant,
                                               params)
                    drivers[(tenant.name, slot)] = driver
                    start_at = spec.start_delay \
                        + spec.stagger * client_index
                    sim.call_after(start_at, driver.start)
                    client_index += 1
        return BuiltScenario(spec=spec, sim=sim, cloud=cloud,
                             placer=placer, tenant_vms=tenant_vms,
                             drivers=drivers)
