"""Cluster assembly: the :class:`Cloud` builder.

Typical usage::

    sim = Simulator(seed=1)
    cloud = Cloud(sim, machines=3, config=DEFAULT)
    vm = cloud.create_vm("web", lambda guest: FileServer(guest))
    client = cloud.add_client("client:1")
    cloud.start()
    sim.run(until=30.0)

With ``config.mediate`` the fabric builds the full StopWatch pipeline
(ingress replication, per-VM coordination groups, egress); without it,
it wires the unmodified-Xen baseline: client traffic goes straight to
the single replica's dom0, and guest output leaves directly.

Placement (Sec. VIII): when ``hosts=`` is omitted on a mediated
3-replica VM, the fabric asks a :class:`~repro.placement.scheduler.
PlacementScheduler` for the VM's replica *triangle*, so any two VMs
co-reside on at most one machine.  Pass ``placer=None`` to restore the
legacy hosts ``0..r-1`` behaviour, or pass your own scheduler for
strict operator-controlled placement (a full cluster then raises
:class:`~repro.placement.scheduler.PlacementError` instead of falling
back).  Explicit ``hosts=`` always bypasses the placer.

Sharded edge: with ``shards=k`` the cloud runs ``k`` ingress and ``k``
egress nodes; each VM is pinned to one shard by a stable hash of its
name, so the edge is no longer a single serialization point at high
tenant counts.  ``shards=1`` (the default) keeps the historical single
``ingress``/``egress`` pair, byte-identical to previous releases.
"""

import hashlib
import random as _random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cloud.egress import EgressNode
from repro.cloud.ingress import IngressNode
from repro.core.config import StopWatchConfig, DEFAULT
from repro.machine.host import Host
from repro.mitigation import MitigationPolicy, resolve_policy
from repro.net.link import Link
from repro.net.network import Network, RealtimeNode
from repro.net.pgm import PgmReceiver
from repro.placement.scheduler import PlacementError, PlacementScheduler
from repro.sim.rng import _derive_seed
from repro.vmm.coordination import ReplicaCoordination
from repro.vmm.hypervisor import ReplicaVMM


@dataclass
class ReplicatedVM:
    """Book-keeping for one guest VM deployment."""

    name: str
    hosts: List[int]
    vmms: List[ReplicaVMM]
    workloads: List[object] = field(default_factory=list)
    #: edge shard this VM's traffic is pinned to
    shard: int = 0
    #: kept so a crashed replica can be rebuilt by replay (repro.faults)
    workload_factory: Optional[Callable] = None
    workload_seed: Optional[int] = None
    #: replica_id -> ExecutionRecorder, attached by the fault injector
    recorders: Dict[int, object] = field(default_factory=dict)
    #: the mitigation policy this VM's timing runs under
    policy: Optional[MitigationPolicy] = None
    #: declared cpu/disk/net demand weights
    #: (:class:`repro.workloads.registry.ResourceProfile`), read by the
    #: placement utilisation report; purely descriptive
    resource_profile: Optional[object] = None

    @property
    def address(self) -> str:
        return f"vm:{self.name}"

    def stat_sum(self, key: str) -> float:
        return sum(vmm.stats[key] for vmm in self.vmms)

    def stat_max(self, key: str) -> float:
        return max(vmm.stats[key] for vmm in self.vmms)


class ClientPort:
    """An external client machine: a RealtimeNode plus its WAN links."""

    def __init__(self, sim, network: Network, name: str,
                 latency: float, bandwidth: float, jitter: float):
        self.node = RealtimeNode(sim, network, name)
        self.name = name
        self.uplink = Link(sim, latency=latency, bandwidth=bandwidth,
                           jitter=jitter, name=f"wan.up.{name}")
        self.downlink = Link(sim, latency=latency, bandwidth=bandwidth,
                             jitter=jitter, name=f"wan.down.{name}")
        network.add_route(None, name, self.downlink)

    # Forward the NetHost interface so protocol stacks bind directly.
    def __getattr__(self, item):
        return getattr(self.node, item)


def shard_index(vm_name: str, shards: int) -> int:
    """Stable shard id for a VM name (SHA-256, not the salted builtin
    ``hash``), so shard routing is identical across runs and processes."""
    if shards <= 1:
        return 0
    digest = hashlib.sha256(vm_name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


class Cloud:
    """A StopWatch (or baseline) cloud on ``machines`` physical hosts."""

    def __init__(self, sim, machines: int = 3,
                 config: StopWatchConfig = DEFAULT,
                 internal_bandwidth: float = 1e9,
                 host_kwargs: Optional[dict] = None,
                 shards: int = 1,
                 placer="auto",
                 policy=None):
        if machines < config.replicas:
            raise ValueError(
                f"{config.replicas} replicas need at least that many "
                f"machines, got {machines}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.sim = sim
        self.config = config
        #: cloud-wide default mitigation policy; ``None`` derives the
        #: config's historical behaviour (stopwatch when mediated, the
        #: passthrough baseline otherwise).  ``create_vm(policy=...)``
        #: overrides it per tenant.
        self.policy = resolve_policy(policy, config)
        self.shards = shards
        self.network = Network(sim, default_link_kwargs={
            "latency": config.internal_latency,
            "jitter": config.internal_latency * config.internal_jitter,
            "bandwidth": internal_bandwidth,
        })
        self.hosts: List[Host] = [
            Host(sim, i, self.network, **(host_kwargs or {}))
            for i in range(machines)
        ]
        # shards == 1 keeps the historical "ingress"/"egress" addresses
        # (and hence their named RNG streams), so single-shard clouds
        # stay byte-identical to previous releases.
        ingress_addrs = (["ingress"] if shards == 1
                         else [f"ingress.{i}" for i in range(shards)])
        egress_addrs = (["egress"] if shards == 1
                        else [f"egress.{i}" for i in range(shards)])
        self.ingresses: List[IngressNode] = [
            IngressNode(sim, self.network, address=addr)
            for addr in ingress_addrs
        ]
        self.egresses: List[EgressNode] = [
            EgressNode(sim, self.network, address=addr,
                       stale_timeout=config.egress_stale_timeout)
            for addr in egress_addrs
        ]
        self.vms: Dict[str, ReplicatedVM] = {}
        self.clients: Dict[str, ClientPort] = {}
        self._down_replicas: Dict[str, set] = {}
        #: optional EvacuationController (repro.faults.heal) notified of
        #: suspicions and condemned hosts
        self.healer = None
        #: observers of replica membership events: ``fn(vm_name,
        #: replica_id, up)`` fires on every deduplicated suspicion
        #: (``up=False``) and rejoin (``up=True``) -- e.g. a storage
        #: tenant's repair daemon reconstructing at-risk shares
        self.replica_listeners: List[Callable] = []
        self._started = False
        if placer == "auto":
            self._placer_mode = "auto"
            self._placer: Optional[PlacementScheduler] = None
        elif placer is None:
            self._placer_mode = "off"
            self._placer = None
        else:
            self._placer_mode = "strict"
            self._placer = placer
            placer_machines = getattr(placer, "machines", machines)
            if placer_machines != machines:
                raise ValueError(
                    f"placer covers {placer_machines} machines but the "
                    f"fleet has {machines}")

    # ------------------------------------------------------------------
    # edge shards
    # ------------------------------------------------------------------
    @property
    def ingress(self) -> IngressNode:
        """The single ingress node (only meaningful with ``shards=1``)."""
        if self.shards != 1:
            raise RuntimeError(
                f"edge is sharded {self.shards} ways; use "
                f"ingress_for(vm_name) or .ingresses")
        return self.ingresses[0]

    @property
    def egress(self) -> EgressNode:
        """The single egress node (only meaningful with ``shards=1``)."""
        if self.shards != 1:
            raise RuntimeError(
                f"edge is sharded {self.shards} ways; use "
                f"egress_for(vm_name) or .egresses")
        return self.egresses[0]

    def shard_of(self, vm_name: str) -> int:
        return shard_index(vm_name, self.shards)

    def ingress_for(self, vm_name: str) -> IngressNode:
        return self.ingresses[self.shard_of(vm_name)]

    def egress_for(self, vm_name: str) -> EgressNode:
        return self.egresses[self.shard_of(vm_name)]

    @property
    def packets_replicated(self) -> int:
        """Total inbound packets replicated across all edge shards."""
        return sum(node.packets_replicated for node in self.ingresses)

    @property
    def packets_released(self) -> int:
        """Total outputs released across all edge shards."""
        return sum(node.packets_released for node in self.egresses)

    @property
    def pending_releases(self) -> int:
        return sum(node.pending_releases for node in self.egresses)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    @property
    def placer(self) -> Optional[PlacementScheduler]:
        """The scheduler that placed the no-``hosts=`` VMs (if any)."""
        return self._placer

    def _resolve_placer(self, replica_count: int):
        if self._placer_mode == "off":
            return None
        if self._placer_mode == "strict":
            if replica_count != 3:
                raise ValueError(
                    f"placement triangles need exactly 3 replicas, the "
                    f"config has {replica_count}; pass hosts= explicitly")
            return self._placer
        # auto: placement triangles only exist for mediated 3-replica
        # clouds on a 3+-machine fleet; everything else keeps the legacy
        # hosts 0..r-1 (byte-identical to previous releases).
        if (replica_count != 3 or not self.config.mediate
                or len(self.hosts) < 3):
            return None
        if self._placer is None:
            capacity = max(1, (len(self.hosts) - 1) // 2)
            self._placer = PlacementScheduler(len(self.hosts), capacity)
        return self._placer

    def _place(self, name: str, replica_count: int) -> List[int]:
        placer = self._resolve_placer(replica_count)
        if placer is None:
            return list(range(replica_count))
        try:
            triangle = placer.place(name)
        except PlacementError:
            if self._placer_mode == "strict":
                raise
            # auto mode degrades to the legacy single-tenant wiring so
            # small ad-hoc clouds keep working past the triangle pool
            hosts = list(range(replica_count))
            self.sim.trace.record(self.sim.now, "placement.fallback",
                                  vm=name, hosts=hosts)
            return hosts
        hosts = list(triangle)
        self.sim.trace.record(self.sim.now, "placement.assign", vm=name,
                              hosts=hosts, shard=self.shard_of(name))
        return hosts

    # ------------------------------------------------------------------
    # guests
    # ------------------------------------------------------------------
    def create_vm(self, name: str,
                  workload_factory: Optional[Callable] = None,
                  hosts: Optional[Sequence[int]] = None,
                  policy=None, profile=None) -> ReplicatedVM:
        """Deploy a guest VM (replicated per the config).

        ``workload_factory(guest_os)`` is called once per replica and must
        return an object with a ``start()`` method; all replicas get RNGs
        seeded identically, so the workload runs identically everywhere.

        With ``hosts=None`` the cloud's placer chooses the replica
        machines (see the module docstring); an explicit ``hosts=``
        sequence pins them and bypasses placement constraints.

        ``policy`` (a name or :class:`~repro.mitigation
        .MitigationPolicy`) overrides the cloud's default mitigation
        policy for this VM: it decides the replica count, whether the
        replicas coordinate through median agreement, and the
        injection/release timing discipline.  Single-replica policies
        in a mediated cloud still route output through the egress node
        (quorum 1) so the policy's release hook applies.
        """
        if name in self.vms:
            raise ValueError(f"VM {name!r} already exists")
        vm_policy = self.policy if policy is None \
            else resolve_policy(policy, self.config)
        replica_count = vm_policy.replica_count(self.config)
        if hosts is None:
            hosts = self._place(name, replica_count)
        hosts = list(hosts)
        if len(hosts) != replica_count:
            raise ValueError(
                f"need exactly {replica_count} host ids, got {hosts}"
            )
        fleet = len(self.hosts)
        for host_id in hosts:
            if not isinstance(host_id, int) or not 0 <= host_id < fleet:
                raise ValueError(
                    f"VM {name!r}: host id {host_id!r} is outside the "
                    f"{fleet}-machine fleet (valid ids: 0..{fleet - 1})")

        workload_seed = _derive_seed(self.sim.rng.root_seed,
                                     f"workload.{name}")
        shard = self.shard_of(name)
        egress_address = self.egresses[shard].address
        vmms: List[ReplicaVMM] = []
        for replica_id, host_id in enumerate(hosts):
            vmm = ReplicaVMM(
                self.sim, self.hosts[host_id], name, replica_id,
                self.config, workload_rng=_random.Random(workload_seed),
                egress_address=egress_address, policy=vm_policy)
            vmms.append(vmm)

        vm = ReplicatedVM(name=name, hosts=hosts, vmms=vmms, shard=shard,
                          workload_factory=workload_factory,
                          workload_seed=workload_seed, policy=vm_policy,
                          resource_profile=profile)
        self.vms[name] = vm

        if vm_policy.coordinated and replica_count > 1:
            self._wire_mediated(vm)
        else:
            self._wire_baseline(vm)

        if self.config.egress_enabled:
            self.egresses[shard].register_vm(name, replica_count,
                                             policy=vm_policy)

        if workload_factory is not None:
            for vmm in vmms:
                workload = workload_factory(vmm.guest)
                vm.workloads.append(workload)
                vmm.guest.schedule_at_instr(0, workload.start)

        # clients added before this VM need routes to it
        for client in self.clients.values():
            self.network.add_route(client.name, vm.address, client.uplink)
        return vm

    def _wire_mediated(self, vm: ReplicatedVM) -> None:
        ingress = self.ingresses[vm.shard]
        host_addresses = [self.hosts[h].address for h in vm.hosts]
        ingress.register_vm(vm.name, host_addresses)
        for replica_id, host_id in enumerate(vm.hosts):
            host = self.hosts[host_id]
            vmm = vm.vmms[replica_id]
            self.attach_coordination(vm, vmm, host)
            self.attach_ingress_receiver(vm, vmm, host)

    def lead_boundaries(self) -> int:
        """Pacing lead budget in barrier counts (Sec. V-A)."""
        return max(1, int(
            self.config.max_lead_virtual
            / (self.config.pacing_interval_branches
               * self.config.initial_slope)))

    def attach_coordination(self, vm: ReplicatedVM, vmm: ReplicaVMM,
                            host: Host,
                            sibling_start_seqs: Optional[Dict[int, int]]
                            = None) -> ReplicaCoordination:
        """Build one replica's coordination endpoint and hook its failure
        detector into the fabric.  ``sibling_start_seqs`` seeds the PGM
        stream cursors for an evacuated replica joining mid-stream."""
        siblings = {
            rid: self.hosts[h].address
            for rid, h in enumerate(vm.hosts) if rid != vmm.replica_id
        }
        vmm.coordination = ReplicaCoordination(
            self.sim, vmm, host, siblings, self.lead_boundaries(),
            sibling_start_seqs=sibling_start_seqs)
        vmm.coordination.on_suspect = (
            lambda rid, name=vm.name: self._replica_suspected(name, rid))
        vmm.coordination.on_rejoin = (
            lambda rid, name=vm.name: self._replica_rejoined(name, rid))
        return vmm.coordination

    def attach_ingress_receiver(self, vm: ReplicatedVM, vmm: ReplicaVMM,
                                host: Host,
                                start_seq: int = 0) -> PgmReceiver:
        """Subscribe one replica host to the VM's ingress replication
        group.  An evacuated replica subscribes at its replay horizon
        (``start_seq``) so the gap back to the sender's cursor is
        NAK-repaired from the ingress retain buffer."""
        ingress = self.ingresses[vm.shard]
        receiver = PgmReceiver(host.node, f"ingress.{vm.name}")
        receiver.subscribe(
            ingress.address,
            lambda envelope, seq, h=host, v=vmm:
            h.dom0.submit(self.config.dom0_packet_cost,
                          v.observe_inbound, envelope.seq,
                          envelope.inner),
            on_loss=lambda seq, v=vmm: self._ingress_loss(v, seq),
            start_seq=start_seq)
        return receiver

    def resource_load(self) -> Dict[int, Dict[str, float]]:
        """Per-host declared resource demand: each live replica adds
        its VM's normalized :class:`ResourceProfile` weights.  Purely
        observational (drives the ``repro workloads``/placement
        utilisation reports); VMs deployed without a profile count as
        replicas but add no weight."""
        report: Dict[int, Dict[str, float]] = {
            host.host_id: {"cpu": 0.0, "disk": 0.0, "net": 0.0,
                           "replicas": 0}
            for host in self.hosts}
        for vm in self.vms.values():
            profile = vm.resource_profile
            weights = profile.normalized() if profile is not None \
                else None
            for vmm in vm.vmms:
                if vmm.failed:
                    continue
                row = report[vmm.host.host_id]
                row["replicas"] += 1
                if weights is not None:
                    row["cpu"] += weights[0]
                    row["disk"] += weights[1]
                    row["net"] += weights[2]
        for row in report.values():
            for axis in ("cpu", "disk", "net"):
                row[axis] = round(row[axis], 9)
        return report

    # ------------------------------------------------------------------
    # failure propagation (coordination layer -> fabric -> egress)
    # ------------------------------------------------------------------
    def host_for(self, vm_name: str, replica_id: int) -> Host:
        vm = self.vms[vm_name]
        return self.hosts[vm.hosts[replica_id]]

    def _replica_suspected(self, vm_name: str, replica_id: int) -> None:
        """A survivor's failure detector fired.  All survivors report;
        the first report degrades the egress quorum, the rest are
        deduplicated here."""
        down = self._down_replicas.setdefault(vm_name, set())
        if replica_id in down:
            return
        down.add(replica_id)
        if self.config.egress_enabled:
            self.egress_for(vm_name).mark_replica_down(vm_name, replica_id)
        if self.healer is not None:
            self.healer.replica_suspected(vm_name, replica_id)
        for listener in self.replica_listeners:
            listener(vm_name, replica_id, False)

    def _replica_rejoined(self, vm_name: str, replica_id: int) -> None:
        down = self._down_replicas.get(vm_name)
        if not down or replica_id not in down:
            return
        down.discard(replica_id)
        if self.config.egress_enabled:
            self.egress_for(vm_name).mark_replica_up(vm_name, replica_id)
        for listener in self.replica_listeners:
            listener(vm_name, replica_id, True)

    def add_replica_listener(self, listener: Callable) -> None:
        """Register ``listener(vm_name, replica_id, up)`` for the
        deduplicated replica suspicion/rejoin stream (after the healer
        has been notified, so a listener observes the same membership
        view the heal pipeline acts on)."""
        self.replica_listeners.append(listener)

    def _ingress_loss(self, vmm: ReplicaVMM, pgm_seq: int) -> None:
        """NAK repair of an ingress datagram failed: this replica has
        permanently missed an inbound packet.  Its siblings' decided
        value (or a stale-agreement sweep) will eventually skip the
        slot; here it is just counted and traced."""
        self.sim.metrics.incr("fault.ingress_losses")
        self.sim.trace.record(self.sim.now, "fault.ingress_loss",
                              vm=vmm.vm_name, replica=vmm.replica_id,
                              seq=pgm_seq)

    def _wire_baseline(self, vm: ReplicatedVM) -> None:
        host = self.hosts[vm.hosts[0]]
        vmm = vm.vmms[0]
        self.network.attach(
            vm.address,
            lambda packet, h=host, v=vmm:
            h.dom0.submit(self.config.dom0_packet_cost,
                          v.observe_inbound, None, packet))

    # ------------------------------------------------------------------
    # clients
    # ------------------------------------------------------------------
    def add_client(self, name: str, latency: float = 0.002,
                   bandwidth: float = 100e6,
                   jitter: float = 0.0002) -> ClientPort:
        """Attach an external client machine over a WAN path."""
        if name in self.clients:
            raise ValueError(f"client {name!r} already exists")
        client = ClientPort(self.sim, self.network, name,
                            latency, bandwidth, jitter)
        self.clients[name] = client
        for vm in self.vms.values():
            self.network.add_route(name, vm.address, client.uplink)
        return client

    # ------------------------------------------------------------------
    # background traffic (Sec. VII-B: the testbed's /24 subnet broadcast
    # noise, ~50-100 packets/s, was present throughout all experiments)
    # ------------------------------------------------------------------
    def add_background_broadcast(self, rate: float = 75.0,
                                 size: int = 60) -> None:
        """Replicate ARP-style broadcast chatter to every VM.

        Each broadcast goes through the full mediation pipeline (ingress
        sequence numbers, proposals, median delivery) even though guests
        drop it -- exactly the background load the paper reports.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        from repro.net.packet import Packet

        rng = self.sim.rng.stream("background.broadcast")

        def emit():
            for vm in self.vms.values():
                self.network.send(Packet(
                    src="broadcast:0", dst=vm.address, protocol="arp",
                    payload=None, size=size))
            self.sim.call_after(rng.expovariate(rate), emit)

        self.sim.call_after(rng.expovariate(rate), emit)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot every replica VMM (idempotent while started)."""
        if self._started:
            return
        self._started = True
        for vm in self.vms.values():
            for vmm in vm.vmms:
                vmm.start()

    def stop(self) -> None:
        """Halt every replica VMM; :meth:`start` boots them again."""
        for vm in self.vms.values():
            for vmm in vm.vmms:
                vmm.stop()
        self._started = False

    def run(self, until: float) -> None:
        """Convenience: start (if needed) and run the simulation."""
        self.start()
        self.sim.run(until=until)
