"""The ingress node (Sec. V).

Every packet destined for a guest VM is routed to an ingress node,
which stamps it with a per-VM sequence number and replicates it via PGM
multicast to all machines hosting that VM's replicas.  (A real cloud
would run several ingress nodes; one suffices here and the abstraction
allows many.)
"""

from collections import deque
from typing import Deque, Dict, List

from repro.net.network import Network, RealtimeNode
from repro.net.packet import Packet, ReplicaEnvelope
from repro.net.pgm import PgmSender

#: per-VM admission buffer while the VM's replication is paused (an
#: evacuation swapping group membership); overflow is dropped and traced
PAUSE_BUFFER = 512


class IngressNode:
    """Replicates inbound guest traffic to the replica hosts."""

    def __init__(self, sim, network: Network, address: str = "ingress"):
        self.sim = sim
        self.network = network
        self.address = address
        self.node = RealtimeNode(sim, network, address)
        self._senders: Dict[str, PgmSender] = {}
        self._sequences: Dict[str, int] = {}
        self._paused: Dict[str, Deque[Packet]] = {}
        self.packets_replicated = 0
        self.pause_drops = 0

    def register_vm(self, vm_name: str, host_addresses: List[str]) -> None:
        """Start replicating traffic for ``vm:<vm_name>`` to the hosts."""
        if vm_name in self._senders:
            raise ValueError(f"VM {vm_name!r} already registered at ingress")
        self._senders[vm_name] = PgmSender(
            self.node, f"ingress.{vm_name}", list(host_addresses))
        self._sequences[vm_name] = 0
        self.network.attach(f"vm:{vm_name}",
                            lambda packet, name=vm_name:
                            self._on_guest_packet(name, packet))

    def pause_vm(self, vm_name: str) -> None:
        """Hold ``vm_name``'s admissions in a bounded buffer (idempotent).
        Used while an evacuation swaps the replication group membership,
        so no packet is admitted against a half-rewired member list."""
        if vm_name not in self._senders:
            raise ValueError(f"VM {vm_name!r} not registered at ingress")
        self._paused.setdefault(vm_name, deque())

    def resume_vm(self, vm_name: str) -> None:
        """Release the pause buffer in admission order (idempotent)."""
        buffered = self._paused.pop(vm_name, None)
        if buffered:
            self.sim.trace.record(self.sim.now, "ingress.resume",
                                  vm=vm_name, buffered=len(buffered))
        while buffered:
            self._on_guest_packet(vm_name, buffered.popleft())

    def paused_packets(self, vm_name: str) -> int:
        return len(self._paused.get(vm_name, ()))

    def rewire_vm(self, vm_name: str, old_address: str,
                  new_address: str) -> int:
        """Swap one replication-group member (replica evacuation) and
        return the sender's next sequence number -- the first seq the
        new member will see as live ODATA."""
        sender = self._senders.get(vm_name)
        if sender is None:
            raise ValueError(f"VM {vm_name!r} not registered at ingress")
        sender.replace_member(old_address, new_address)
        return sender.next_seq

    def sender_next_seq(self, vm_name: str) -> int:
        return self._senders[vm_name].next_seq

    def _on_guest_packet(self, vm_name: str, packet: Packet) -> None:
        buffered = self._paused.get(vm_name)
        if buffered is not None:
            if len(buffered) >= PAUSE_BUFFER:
                self.pause_drops += 1
                self.sim.trace.record(self.sim.now, "ingress.pause_drop",
                                      vm=vm_name)
                return
            buffered.append(packet)
            return
        seq = self._sequences[vm_name]
        self._sequences[vm_name] = seq + 1
        envelope = ReplicaEnvelope(vm=vm_name, direction="in", seq=seq,
                                   inner=packet)
        self.packets_replicated += 1
        sender = self._senders[vm_name]
        self.sim.trace.record(self.sim.now, "ingress.replicate",
                              vm=vm_name, seq=seq)
        self.sim.flows.flow_admitted(self.sim.now, vm_name, seq,
                                     replicas=len(sender.members))
        sender.multicast(envelope, data_len=envelope.wire_size())

    def __repr__(self) -> str:
        return f"<IngressNode {self.address} vms={len(self._senders)}>"
