"""The ingress node (Sec. V).

Every packet destined for a guest VM is routed to an ingress node,
which stamps it with a per-VM sequence number and replicates it via PGM
multicast to all machines hosting that VM's replicas.  (A real cloud
would run several ingress nodes; one suffices here and the abstraction
allows many.)
"""

from typing import Dict, List

from repro.net.network import Network, RealtimeNode
from repro.net.packet import Packet, ReplicaEnvelope
from repro.net.pgm import PgmSender


class IngressNode:
    """Replicates inbound guest traffic to the replica hosts."""

    def __init__(self, sim, network: Network, address: str = "ingress"):
        self.sim = sim
        self.network = network
        self.address = address
        self.node = RealtimeNode(sim, network, address)
        self._senders: Dict[str, PgmSender] = {}
        self._sequences: Dict[str, int] = {}
        self.packets_replicated = 0

    def register_vm(self, vm_name: str, host_addresses: List[str]) -> None:
        """Start replicating traffic for ``vm:<vm_name>`` to the hosts."""
        if vm_name in self._senders:
            raise ValueError(f"VM {vm_name!r} already registered at ingress")
        self._senders[vm_name] = PgmSender(
            self.node, f"ingress.{vm_name}", list(host_addresses))
        self._sequences[vm_name] = 0
        self.network.attach(f"vm:{vm_name}",
                            lambda packet, name=vm_name:
                            self._on_guest_packet(name, packet))

    def _on_guest_packet(self, vm_name: str, packet: Packet) -> None:
        seq = self._sequences[vm_name]
        self._sequences[vm_name] = seq + 1
        envelope = ReplicaEnvelope(vm=vm_name, direction="in", seq=seq,
                                   inner=packet)
        self.packets_replicated += 1
        sender = self._senders[vm_name]
        self.sim.trace.record(self.sim.now, "ingress.replicate",
                              vm=vm_name, seq=seq)
        self.sim.flows.flow_admitted(self.sim.now, vm_name, seq,
                                     replicas=len(sender.members))
        sender.multicast(envelope, data_len=envelope.wire_size())

    def __repr__(self) -> str:
        return f"<IngressNode {self.address} vms={len(self._senders)}>"
