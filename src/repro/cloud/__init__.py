"""The cloud fabric: ingress/egress nodes and cluster wiring.

:class:`Cloud` assembles a complete StopWatch deployment -- machines,
ingress (inbound packet replication, Sec. V), egress (median-timed
output release, Sec. VI), replica VMMs with their coordination groups,
guest workloads, and external clients -- or, with
``config=PASSTHROUGH``-style settings, an unmodified-Xen baseline on
the same substrate.

:mod:`repro.cloud.scenario` scales this to *fleets*: a declarative
:class:`ScenarioSpec` (loadable from TOML, like campaign specs)
describes machines, tenants, workloads, client populations and WAN
profiles; :class:`CloudBuilder` wires it all up through the placement
scheduler.
"""

from repro.cloud.ingress import IngressNode
from repro.cloud.egress import EgressNode
from repro.cloud.fabric import Cloud, ClientPort, shard_index
from repro.cloud.scenario import (
    BuiltScenario,
    CloudBuilder,
    ScenarioError,
    ScenarioSpec,
    TenantSpec,
    WanProfile,
    BUILTIN_WAN,
)

__all__ = [
    "IngressNode",
    "EgressNode",
    "Cloud",
    "ClientPort",
    "shard_index",
    "BuiltScenario",
    "CloudBuilder",
    "ScenarioError",
    "ScenarioSpec",
    "TenantSpec",
    "WanProfile",
    "BUILTIN_WAN",
]
