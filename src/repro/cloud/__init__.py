"""The cloud fabric: ingress/egress nodes and cluster wiring.

:class:`Cloud` assembles a complete StopWatch deployment -- machines,
ingress (inbound packet replication, Sec. V), egress (median-timed
output release, Sec. VI), replica VMMs with their coordination groups,
guest workloads, and external clients -- or, with
``config=PASSTHROUGH``-style settings, an unmodified-Xen baseline on
the same substrate.
"""

from repro.cloud.ingress import IngressNode
from repro.cloud.egress import EgressNode
from repro.cloud.fabric import Cloud, ClientPort

__all__ = ["IngressNode", "EgressNode", "Cloud", "ClientPort"]
