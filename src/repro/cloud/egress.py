"""The egress node (Sec. VI).

Replicas run deterministically, so they emit identical output-packet
sequences.  Each replica's dom0 tunnels outputs to the egress node,
which forwards a packet toward its real destination when the *second*
copy arrives -- the second arrival time of three is exactly the median
of the replicas' emission times, so an external observer only ever sees
median timing.
"""

from typing import Dict, Tuple

from repro.core.median import QuorumRelease
from repro.net.network import Network, RealtimeNode
from repro.net.packet import Packet, ReplicaEnvelope


class EgressNode:
    """Release-on-median-copy forwarding of guest output."""

    def __init__(self, sim, network: Network, address: str = "egress"):
        self.sim = sim
        self.network = network
        self.address = address
        self.node = RealtimeNode(sim, network, address)
        self.node.register_protocol("replica-out", self._on_replica_packet)
        self._expected: Dict[str, int] = {}
        self._releases: Dict[Tuple[str, int], QuorumRelease] = {}
        self.packets_released = 0

    def register_vm(self, vm_name: str, replicas: int) -> None:
        if vm_name in self._expected:
            raise ValueError(f"VM {vm_name!r} already registered at egress")
        self._expected[vm_name] = replicas

    def _on_replica_packet(self, packet: Packet) -> None:
        envelope: ReplicaEnvelope = packet.payload
        expected = self._expected.get(envelope.vm)
        if expected is None:
            return  # unknown VM; drop
        key = (envelope.vm, envelope.seq)
        release = self._releases.get(key)
        if release is None:
            release = QuorumRelease(key, expected=expected)
            self._releases[key] = release
        if release.arrive(envelope.replica_id, self.sim.now):
            self.packets_released += 1
            self.sim.trace.record(self.sim.now, "egress.release",
                                  vm=envelope.vm, seq=envelope.seq)
            self.network.send(envelope.inner)
        if release.complete:
            del self._releases[key]

    @property
    def pending_releases(self) -> int:
        return len(self._releases)

    def __repr__(self) -> str:
        return f"<EgressNode {self.address} vms={len(self._expected)}>"
