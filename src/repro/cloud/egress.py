"""The egress node (Sec. VI).

Replicas run deterministically, so they emit identical output-packet
sequences.  Each replica's dom0 tunnels outputs to the egress node,
which forwards a packet toward its real destination when the *second*
copy arrives -- the second arrival time of three is exactly the median
of the replicas' emission times, so an external observer only ever sees
median timing.

Degraded operation: the fabric tells the egress node when a replica is
suspected dead (:meth:`EgressNode.mark_replica_down`).  Release state
for that VM retargets to the live copy count -- with one of three
replicas down the release-on-2nd-copy rule is unchanged (2 live copies
still arrive), and with two down the sole survivor's copy releases
immediately, trading the timing protection for availability.  Entries
that can never finish (copies from crashed replicas) no longer leak:
a periodic sweep retires anything older than ``stale_timeout``.
"""

from typing import Dict, Optional, Tuple

from repro.core.median import QuorumRelease
from repro.mitigation import MitigationPolicy
from repro.net.network import Network, RealtimeNode
from repro.net.packet import Packet, ReplicaEnvelope

_Key = Tuple[str, int]


class EgressNode:
    """Release-on-median-copy forwarding of guest output."""

    def __init__(self, sim, network: Network, address: str = "egress",
                 stale_timeout: float = 2.0):
        if stale_timeout <= 0:
            raise ValueError(f"stale_timeout must be > 0: {stale_timeout}")
        self.sim = sim
        self.network = network
        self.address = address
        self.stale_timeout = stale_timeout
        self.node = RealtimeNode(sim, network, address)
        self.node.register_protocol("replica-out", self._on_replica_packet)
        self._expected: Dict[str, int] = {}
        self._policies: Dict[str, MitigationPolicy] = {}
        self._down: Dict[str, set] = {}
        self._releases: Dict[_Key, QuorumRelease] = {}
        self._envelopes: Dict[_Key, ReplicaEnvelope] = {}
        self._born: Dict[_Key, float] = {}
        self.packets_released = 0
        self.stale_swept = 0
        self._sweep_scheduled = False

    def register_vm(self, vm_name: str, replicas: int,
                    policy: Optional[MitigationPolicy] = None) -> None:
        """Expect ``replicas`` copies of each of the VM's outputs.

        ``policy`` (a :class:`~repro.mitigation.MitigationPolicy`)
        controls release timing: once the quorum completes, the
        policy's ``release_delay`` holds the forward for that many
        seconds.  ``None`` -- and every policy returning ``0.0``, e.g.
        ``stopwatch`` -- releases inline, byte-identical to the
        pre-policy pipeline.
        """
        if vm_name in self._expected:
            raise ValueError(f"VM {vm_name!r} already registered at egress")
        self._expected[vm_name] = replicas
        if policy is not None:
            self._policies[vm_name] = policy

    # ------------------------------------------------------------------
    # degraded quorum
    # ------------------------------------------------------------------
    def live_count(self, vm_name: str) -> int:
        return self._expected[vm_name] - len(self._down.get(vm_name, ()))

    def _live_floor(self, vm_name: str) -> int:
        """Copies the release rule waits for, floored at 1: with every
        replica suspected dead there is no median to wait for, but a
        zero-copy rule would be ill-formed and wedge the edge forever
        -- release on whatever copy still shows up, and let the healer
        rebuild the quorum."""
        return max(1, self.live_count(vm_name))

    def mark_replica_down(self, vm_name: str, replica_id: int) -> None:
        """A replica is suspected dead: stop waiting for its copies."""
        if vm_name not in self._expected:
            return
        down = self._down.setdefault(vm_name, set())
        if replica_id in down:
            return
        down.add(replica_id)
        live = self.live_count(vm_name)
        self.sim.metrics.incr("egress.degraded")
        self.sim.trace.record(self.sim.now, "egress.degraded",
                              vm=vm_name, replica=replica_id, live=live)
        self._retarget_vm(vm_name, self._live_floor(vm_name))

    def mark_replica_up(self, vm_name: str, replica_id: int) -> None:
        """A recovered replica rejoined: expect its copies again."""
        down = self._down.get(vm_name)
        if not down or replica_id not in down:
            return
        down.discard(replica_id)
        live = self.live_count(vm_name)
        self.sim.trace.record(self.sim.now, "egress.restored",
                              vm=vm_name, replica=replica_id, live=live)
        self._retarget_vm(vm_name, self._live_floor(vm_name))

    def _retarget_vm(self, vm_name: str, live: int) -> None:
        for key in sorted(k for k in self._releases if k[0] == vm_name):
            release = self._releases[key]
            if release.retarget(live, self.sim.now):
                self._forward(key)  # no single triggering copy
            if release.complete:
                self._cleanup(key)

    # ------------------------------------------------------------------
    # release pipeline
    # ------------------------------------------------------------------
    def _on_replica_packet(self, packet: Packet) -> None:
        envelope: ReplicaEnvelope = packet.payload
        expected = self._expected.get(envelope.vm)
        if expected is None:
            return  # unknown VM; drop
        key = (envelope.vm, envelope.seq)
        release = self._releases.get(key)
        if release is None:
            release = QuorumRelease(key, expected=expected)
            release.retarget(self._live_floor(envelope.vm), self.sim.now)
            self._releases[key] = release
            self._envelopes[key] = envelope
            self._born[key] = self.sim.now
            self._schedule_sweep()
        self.sim.flows.copy_arrived(self.sim.now, envelope.vm, envelope.seq,
                                    envelope.replica_id)
        if release.arrive(envelope.replica_id, self.sim.now):
            self._release(key, trigger=envelope.replica_id)
        if release.complete:
            self._cleanup(key)

    def _release(self, key: _Key, trigger: Optional[int]) -> None:
        """Forward a quorum-complete output, applying the VM policy's
        release delay.  Zero delay forwards inline (no event scheduled),
        keeping delay-free policies byte-identical."""
        policy = self._policies.get(key[0])
        delay = 0.0 if policy is None \
            else policy.release_delay(self, key[0])
        if delay <= 0.0:
            self._forward(key, trigger=trigger)
            return
        # the quorum entry may be cleaned up before the delay elapses,
        # so the held forward captures the envelope itself
        envelope = self._envelopes[key]
        self.sim.call_after(delay, self._forward_held, envelope, trigger)

    def _forward_held(self, envelope: ReplicaEnvelope,
                      trigger: Optional[int]) -> None:
        self.packets_released += 1
        self.sim.trace.record(self.sim.now, "egress.release",
                              vm=envelope.vm, seq=envelope.seq)
        self.sim.flows.output_released(self.sim.now, envelope.vm,
                                       envelope.seq, trigger)
        self.network.send(envelope.inner)

    def _forward(self, key: _Key, trigger: Optional[int] = None) -> None:
        """Forward toward the real destination.  ``trigger`` is the
        replica whose copy completed the quorum -- the flow layer's
        critical-path replica (``None`` for degraded retarget releases).
        """
        self._forward_held(self._envelopes[key], trigger)

    def _cleanup(self, key: _Key) -> None:
        self._releases.pop(key, None)
        self._envelopes.pop(key, None)
        self._born.pop(key, None)

    # ------------------------------------------------------------------
    # stale-entry sweeping
    # ------------------------------------------------------------------
    def _schedule_sweep(self) -> None:
        if self._sweep_scheduled or not self._releases:
            return
        self._sweep_scheduled = True
        self.sim.call_after(self.stale_timeout, self._sweep)

    def _sweep(self) -> None:
        self._sweep_scheduled = False
        cutoff = self.sim.now - self.stale_timeout
        stale = sorted(key for key, born in self._born.items()
                       if born <= cutoff)
        for key in stale:
            release = self._releases[key]
            self.stale_swept += 1
            self.sim.metrics.incr("egress.stale")
            self.sim.trace.record(self.sim.now, "egress.stale",
                                  vm=key[0], seq=key[1],
                                  released=release.released_at is not None,
                                  arrivals=len(release.arrivals))
            self._cleanup(key)
        self._schedule_sweep()

    @property
    def pending_releases(self) -> int:
        return len(self._releases)

    def __repr__(self) -> str:
        return f"<EgressNode {self.address} vms={len(self._expected)}>"
