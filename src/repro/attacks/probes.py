"""Policy-parameterised attack probes for the mitigation frontier.

Where :mod:`repro.attacks.sidechannel` reproduces the paper's Fig. 4
pair (unmodified Xen vs StopWatch), these probes take an arbitrary
:class:`~repro.mitigation.MitigationPolicy` and run the same
coresidency question under it, so ``repro mitigate`` can sweep the
whole policy family over one attack suite.

Each probe runs two conditions -- victim *absent* and victim
*present* (coresident with the attacker) -- and returns the attacker's
observable under each, as an :class:`AttackResult`.  Leakage is then
the mutual information between the condition bit and one observation
(:mod:`repro.stats.mi`); the victim's client latencies in the present
condition are the overhead axis.

Probes in this module observe from *outside* the cloud (the vantage the
paper's threat model cares most about):

- :func:`run_coresidency_probe` -- a colluding external client pings
  the attacker VM and measures inter-reply gaps in real time.  This is
  the probing attack of Zhou et al.'s co-residency detection, pointed
  at whatever release discipline the egress policy enforces.
- :func:`run_clock_probe` -- the attacker guest itself timestamps its
  network interrupts with its RT clock (Wray's IO-vs-RT comparison),
  testing the *inbound* injection discipline rather than egress.

:mod:`repro.attacks.scheduler` adds the scheduler-theft beacon probe.
"""

from typing import Dict, List, NamedTuple, Optional

from repro.attacks.clocks import ClockObserver
from repro.cloud.fabric import Cloud
from repro.core.config import DEFAULT, StopWatchConfig
from repro.mitigation import MitigationPolicy, resolve_policy
from repro.sim.kernel import Simulator
from repro.sim.monitor import Trace
from repro.workloads.echo import EchoServer, PingClient
from repro.workloads.fileserver import FileServer, HttpDownloader

VICTIM_WORKLOADS = ("fileserver", "echo")


class RttPingClient(PingClient):
    """A :class:`PingClient` that also records per-ping round trips.

    Inter-reply *gaps* are dominated by the sender's own exponential
    pacing; the round-trip time strips that self-noise out and measures
    exactly what coresidency perturbs -- the attacker VM's service
    time.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._send_times: Dict[int, float] = {}
        self.rtts: List[float] = []

    def _transmit(self, tag: int, attempt: int) -> None:
        self._send_times.setdefault(tag, self.node.now())
        super()._transmit(tag, attempt)

    def _on_reply(self, datagram, src: str) -> None:
        sent = self._send_times.pop(datagram.tag, None)
        if sent is not None:
            self.rtts.append(self.node.now() - sent)
        super()._on_reply(datagram, src)


class AttackResult(NamedTuple):
    """One attack's observables under both coresidency conditions."""

    attack: str
    policy: str
    samples_absent: List[float]    # attacker observable, victim absent
    samples_present: List[float]   # attacker observable, victim present
    latencies: List[float]         # victim client latencies (present run)
    meta: Dict[str, float]

    def leakage_bits(self, bins: int = 10) -> float:
        """Miller-Madow-corrected MI between coresidency and one
        observation, in bits."""
        from repro.stats.mi import mi_bits
        return mi_bits([self.samples_absent, self.samples_present],
                       bins=bins)

    def leakage(self, bins: int = 10) -> dict:
        """The full MI/capacity summary (:func:`repro.stats.mi
        .leakage_summary`)."""
        from repro.stats.mi import leakage_summary
        return leakage_summary(
            [self.samples_absent, self.samples_present], bins=bins)


def _policy_cell(policy, seed: int,
                 base_config: StopWatchConfig = DEFAULT,
                 host_kwargs: Optional[dict] = None):
    """One condition's cloud under ``policy``: simulator, fabric, and
    the attacker/victim host pinning.

    Multi-replica policies get the Fig. 4 layout (5 machines, attacker
    on 0-2, victim on 0,3,4 -- exactly one shared host); single-replica
    policies co-locate both VMs on the lone machine, the classic cloud
    coresidency setup.
    """
    policy = resolve_policy(policy, base_config)
    config = policy.configure(base_config)
    replicas = policy.replica_count(config)
    sim = Simulator(seed=seed, trace=Trace(
        categories={"vmm.divergence"}, max_per_category=4096))
    machines = 5 if replicas > 1 else 1
    cloud = Cloud(sim, machines=machines, config=config,
                  host_kwargs=host_kwargs or {"contention_alpha": 0.5},
                  policy=policy)
    if replicas > 1:
        attacker_hosts = [0, 1, 2]
        victim_hosts = [0, 3, 4]    # shares exactly host 0 with attacker
    else:
        attacker_hosts = [0]
        victim_hosts = [0]
    return sim, cloud, attacker_hosts, victim_hosts


def _keep_downloading(sim, downloader, size: int) -> None:
    """Loop downloads back-to-back for the whole run."""

    def again(_latency=None):
        downloader.download(size, on_done=again)

    again()


def _deploy_victim(sim, cloud, victim_hosts, workload: str,
                   clients: int, file_bytes: int, ping_mean: float):
    """Create the victim VM plus its client drivers; returns the
    drivers so :func:`_victim_latencies` can read overhead off them."""
    if workload not in VICTIM_WORKLOADS:
        raise ValueError(f"unknown victim workload {workload!r}; "
                         f"choose from {VICTIM_WORKLOADS}")
    drivers = []
    if workload == "fileserver":
        cloud.create_vm("victim", FileServer, hosts=victim_hosts)
        for index in range(clients):
            node = cloud.add_client(f"victim-client:{index}")
            downloader = HttpDownloader(node, "vm:victim")
            drivers.append(downloader)
            sim.call_after(0.05, _keep_downloading, sim, downloader,
                           file_bytes)
    else:
        cloud.create_vm("victim", EchoServer, hosts=victim_hosts)
        for index in range(clients):
            node = cloud.add_client(f"victim-client:{index}")
            pinger = PingClient(node, "vm:victim",
                                mean_interval=ping_mean)
            drivers.append(pinger)
            sim.call_after(0.05, pinger.start)
    return drivers


def _victim_latencies(drivers) -> List[float]:
    """The victim clients' service observable: download latencies for
    the fileserver workload, inter-reply gaps for echo."""
    latencies: List[float] = []
    for driver in drivers:
        if hasattr(driver, "latencies"):
            latencies.extend(driver.latencies)
        else:
            times = driver.reply_times
            latencies.extend(b - a for a, b in zip(times, times[1:]))
    return latencies


def _gaps(times: List[float]) -> List[float]:
    return [b - a for a, b in zip(times, times[1:])]


def run_coresidency_probe(policy="stopwatch",
                          duration: float = 20.0,
                          seed: int = 7,
                          ping_mean: float = 0.020,
                          workload: str = "fileserver",
                          victim_clients: int = 3,
                          victim_file_bytes: int = 300_000,
                          base_config: StopWatchConfig = DEFAULT,
                          ) -> AttackResult:
    """Zhou-style co-residency probing from outside the cloud.

    The attacker VM echoes a paced external ping stream; the colluding
    client's per-ping round trips (real time, downstream of the egress
    policy) are the observable.
    """
    samples = {}
    latencies: List[float] = []
    divergences = 0.0
    for present in (False, True):
        sim, cloud, attacker_hosts, victim_hosts = _policy_cell(
            policy, seed, base_config)
        cloud.create_vm("attacker", ClockObserver, hosts=attacker_hosts)
        pinger_node = cloud.add_client("pinger:1")
        pinger = RttPingClient(pinger_node, "vm:attacker",
                               mean_interval=ping_mean)
        drivers = []
        if present:
            drivers = _deploy_victim(sim, cloud, victim_hosts, workload,
                                     victim_clients, victim_file_bytes,
                                     ping_mean)
        sim.call_after(0.1, pinger.start)
        cloud.run(until=duration)
        samples[present] = list(pinger.rtts)
        if present:
            latencies = _victim_latencies(drivers)
            divergences = cloud.vms["attacker"].stat_sum("divergences")
    return AttackResult(
        attack="probe",
        policy=cloud.policy.name,
        samples_absent=samples[False],
        samples_present=samples[True],
        latencies=latencies,
        meta={"divergences": divergences,
              "pings_sent": float(pinger.sent)},
    )


def run_clock_probe(policy="stopwatch",
                    duration: float = 20.0,
                    seed: int = 7,
                    ping_mean: float = 0.020,
                    workload: str = "fileserver",
                    victim_clients: int = 3,
                    victim_file_bytes: int = 300_000,
                    base_config: StopWatchConfig = DEFAULT,
                    ) -> AttackResult:
    """Wray IO-clock probing from inside the attacker guest.

    The attacker guest timestamps each network-interrupt arrival with
    its RT (virtual) clock; inter-arrival virts are the observable.
    This exercises the *inbound injection* discipline -- median under
    stopwatch, boundary-quantised under deterland, jittered under
    uniform-noise, raw under none.
    """
    samples = {}
    latencies: List[float] = []
    divergences = 0.0
    observers = []

    def factory(guest):
        observer = ClockObserver(guest)
        observers.append(observer)
        return observer

    for present in (False, True):
        observers.clear()
        sim, cloud, attacker_hosts, victim_hosts = _policy_cell(
            policy, seed, base_config)
        cloud.create_vm("attacker", factory, hosts=attacker_hosts)
        pinger_node = cloud.add_client("pinger:1")
        pinger = PingClient(pinger_node, "vm:attacker",
                            mean_interval=ping_mean)
        drivers = []
        if present:
            drivers = _deploy_victim(sim, cloud, victim_hosts, workload,
                                     victim_clients, victim_file_bytes,
                                     ping_mean)
        sim.call_after(0.1, pinger.start)
        cloud.run(until=duration)
        # replicas record identical virts; read the first replica
        samples[present] = observers[0].inter_arrival_virts()
        if present:
            latencies = _victim_latencies(drivers)
            divergences = cloud.vms["attacker"].stat_sum("divergences")
    return AttackResult(
        attack="clocks",
        policy=cloud.policy.name,
        samples_absent=samples[False],
        samples_present=samples[True],
        latencies=latencies,
        meta={"divergences": divergences,
              "pings_sent": float(pinger.sent)},
    )
