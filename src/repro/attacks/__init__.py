"""Attacker models and side-channel experiments.

- :mod:`repro.attacks.clocks` -- Wray's clock taxonomy realised inside a
  guest: an attacker workload that timestamps its observable events with
  every clock the guest can build (RT = virtual time, IO = interrupt
  arrivals, TL = branch counter, PIT ticks).
- :mod:`repro.attacks.sidechannel` -- the Fig. 4 experiment: an attacker
  VM measuring inter-packet delivery times while a victim VM serving
  files is (or is not) coresident with one of its replicas.
- :mod:`repro.attacks.covert` -- an access-driven timing covert channel:
  a Trojan victim modulates host load in time slots; the attacker
  decodes bits from its own event timings.
- :mod:`repro.attacks.collab` -- Sec. IX's collaborating attackers:
  a second attacker VM loads one replica host to marginalise it from
  the median.
- :mod:`repro.attacks.probes` -- policy-parameterised coresidency and
  IO-clock probes for the mitigation frontier (``repro mitigate``).
- :mod:`repro.attacks.scheduler` -- the scheduler-theft beacon probe
  (Zhou et al.'s cycle-stealing measurement) against any policy.
"""

from repro.attacks.clocks import ClockObserver, ClockSample
from repro.attacks.sidechannel import (
    CoresidenceResult,
    run_coresidence_experiment,
    observations_needed_from_samples,
)
from repro.attacks.covert import CovertChannelResult, run_covert_channel
from repro.attacks.collab import CollabResult, run_collab_experiment
from repro.attacks.probes import (
    AttackResult,
    run_coresidency_probe,
    run_clock_probe,
)
from repro.attacks.scheduler import TheftProbe, run_scheduler_theft

#: attack name -> runner, the suite ``repro mitigate`` sweeps.  Every
#: runner shares the signature ``(policy=..., duration=..., seed=...,
#: workload=..., **knobs) -> AttackResult``.
ATTACK_SUITE = {
    "probe": run_coresidency_probe,
    "theft": run_scheduler_theft,
    "clocks": run_clock_probe,
}

__all__ = [
    "ClockObserver",
    "ClockSample",
    "CoresidenceResult",
    "run_coresidence_experiment",
    "observations_needed_from_samples",
    "CovertChannelResult",
    "run_covert_channel",
    "CollabResult",
    "run_collab_experiment",
    "AttackResult",
    "run_coresidency_probe",
    "run_clock_probe",
    "TheftProbe",
    "run_scheduler_theft",
    "ATTACK_SUITE",
]
