"""Attacker models and side-channel experiments.

- :mod:`repro.attacks.clocks` -- Wray's clock taxonomy realised inside a
  guest: an attacker workload that timestamps its observable events with
  every clock the guest can build (RT = virtual time, IO = interrupt
  arrivals, TL = branch counter, PIT ticks).
- :mod:`repro.attacks.sidechannel` -- the Fig. 4 experiment: an attacker
  VM measuring inter-packet delivery times while a victim VM serving
  files is (or is not) coresident with one of its replicas.
- :mod:`repro.attacks.covert` -- an access-driven timing covert channel:
  a Trojan victim modulates host load in time slots; the attacker
  decodes bits from its own event timings.
- :mod:`repro.attacks.collab` -- Sec. IX's collaborating attackers:
  a second attacker VM loads one replica host to marginalise it from
  the median.
"""

from repro.attacks.clocks import ClockObserver, ClockSample
from repro.attacks.sidechannel import (
    CoresidenceResult,
    run_coresidence_experiment,
    observations_needed_from_samples,
)
from repro.attacks.covert import CovertChannelResult, run_covert_channel
from repro.attacks.collab import CollabResult, run_collab_experiment

__all__ = [
    "ClockObserver",
    "ClockSample",
    "CoresidenceResult",
    "run_coresidence_experiment",
    "observations_needed_from_samples",
    "CovertChannelResult",
    "run_covert_channel",
    "CollabResult",
    "run_collab_experiment",
]
