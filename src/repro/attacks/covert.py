"""An access-driven timing covert channel (Sec. I / threat model).

A Trojan-infected victim VM signals bits to a coresident attacker VM by
modulating its activity in fixed time slots: bit 1 = burst of I/O
(dom0 load and cache pressure), bit 0 = idle.  The attacker receives a
constant-rate ping stream and decodes bits from per-slot mean
inter-arrival times measured on its own (virtual) clock.

Under unmodified Xen the channel works; under StopWatch the attacker's
observations are medians over replicas, at most one of which coresides
with the Trojan, so the bit error rate collapses toward 1/2.
"""

from typing import List, NamedTuple, Optional

from repro.attacks.clocks import ClockObserver
from repro.cloud.fabric import Cloud
from repro.core.config import StopWatchConfig, DEFAULT, PASSTHROUGH
from repro.net.udp import UdpStack
from repro.sim.kernel import Simulator
from repro.sim.monitor import Trace
from repro.workloads.base import GuestWorkload
from repro.workloads.echo import PingClient

SINK_PORT = 7900


class BurstSender(GuestWorkload):
    """A guest that emits datagram bursts on command (dom0 load source).

    ``schedule`` is a list of (start_virt, stop_virt) windows during
    which the guest sends ``rate`` datagrams per virtual second to an
    external sink.  With an empty schedule plus ``always_on=True`` it
    loads the host continuously (the Sec. IX collaborator).
    """

    def __init__(self, guest, sink_addr: str,
                 schedule: Optional[List[tuple]] = None,
                 rate: float = 4000.0, always_on: bool = False):
        super().__init__(guest)
        self.sink_addr = sink_addr
        self.windows = list(schedule or [])
        self.interval = 1.0 / rate
        self.always_on = always_on
        self.udp = UdpStack(guest)
        self.sent = 0

    def start(self) -> None:
        if self.always_on:
            self._tick_forever()
            return
        for start_virt, stop_virt in self.windows:
            self.guest.schedule(max(0.0, start_virt - self.guest.now()),
                                self._burst_until, stop_virt)

    def _tick_forever(self) -> None:
        self._send_one()
        self.guest.schedule(self.interval, self._tick_forever)

    def _burst_until(self, stop_virt: float) -> None:
        if self.guest.now() >= stop_virt:
            return
        self._send_one()
        self.guest.schedule(self.interval, self._burst_until, stop_virt)

    def _send_one(self) -> None:
        self.sent += 1
        self.udp.send(self.sink_addr, SINK_PORT, SINK_PORT, 256,
                      tag=self.sent)


class CovertChannelResult(NamedTuple):
    mediated: bool
    bits_sent: List[int]
    bits_decoded: List[int]

    @property
    def bit_error_rate(self) -> float:
        errors = sum(1 for a, b in zip(self.bits_sent, self.bits_decoded)
                     if a != b)
        return errors / len(self.bits_sent) if self.bits_sent else 1.0


def _decode(samples, slot: float, n_bits: int,
            first_slot_virt: float) -> List[int]:
    """Per-slot mean inter-arrival vs. the global median -> bits."""
    arrivals = [s.virt for s in samples]
    gaps = [(b - a, 0.5 * (a + b))
            for a, b in zip(arrivals, arrivals[1:])]
    per_slot: List[List[float]] = [[] for _ in range(n_bits)]
    for gap, mid in gaps:
        index = int((mid - first_slot_virt) / slot)
        if 0 <= index < n_bits:
            per_slot[index].append(gap)
    means = [sum(g) / len(g) if g else float("nan") for g in per_slot]
    finite = sorted(m for m in means if m == m)
    if not finite:
        return [0] * n_bits
    threshold = finite[len(finite) // 2]
    # bit 1 = victim active = host contended = attacker virt runs slow
    # relative to real time = smaller measured virtual gaps
    return [1 if (m == m and m < threshold) else 0 for m in means]


def run_covert_channel(mediated: bool = True,
                       n_bits: int = 24,
                       slot: float = 0.4,
                       ping_interval: float = 0.005,
                       seed: int = 11,
                       config: Optional[StopWatchConfig] = None,
                       host_kwargs: Optional[dict] = None,
                       start_delay: float = 0.5) -> CovertChannelResult:
    """Run the covert channel once; returns sent vs. decoded bits."""
    if config is None:
        config = DEFAULT if mediated else PASSTHROUGH
    if host_kwargs is None:
        host_kwargs = {"contention_alpha": 0.5}
    sim = Simulator(seed=seed, trace=Trace(
        categories={"vmm.divergence"}, max_per_category=65_536))
    machines = 5 if config.replicas > 1 else 1
    cloud = Cloud(sim, machines=machines, config=config,
                  host_kwargs=host_kwargs)

    rng = sim.rng.stream("covert.bits")
    bits = [rng.randrange(2) for _ in range(n_bits)]
    windows = [(start_delay + i * slot, start_delay + (i + 1) * slot)
               for i, bit in enumerate(bits) if bit == 1]

    if config.replicas > 1:
        attacker_hosts, victim_hosts = [0, 1, 2], [2, 3, 4]
    else:
        attacker_hosts, victim_hosts = [0], [0]

    holder: list = []
    cloud.create_vm("attacker",
                    lambda guest: holder.append(ClockObserver(guest))
                    or holder[-1],
                    hosts=attacker_hosts)
    cloud.create_vm("trojan",
                    lambda guest: BurstSender(guest, "sink:1",
                                              schedule=windows),
                    hosts=victim_hosts)
    sink = cloud.add_client("sink:1")
    UdpStack(sink).bind(SINK_PORT, lambda d, s: None)
    pinger_node = cloud.add_client("pinger:1")
    pinger = PingClient(pinger_node, "vm:attacker",
                        spacing_fn=lambda _rng: ping_interval)
    sim.call_after(0.05, pinger.start)
    cloud.run(until=start_delay + n_bits * slot + 0.5)

    attacker = holder[0]
    decoded = _decode(attacker.samples, slot, n_bits, start_delay)
    return CovertChannelResult(mediated=mediated, bits_sent=bits,
                               bits_decoded=decoded)
