"""The coresidence-detection side channel (Fig. 4).

Setup: the attacker VM receives a steady ping stream from a colluding
external client and measures virtual inter-packet delivery times (its
IO clock read against its RT clock).  A victim VM continuously serves
file downloads; in the *coresident* condition one attacker replica
shares a machine with one victim replica; in the *control* condition
the victim is absent (or hosted elsewhere).  The attacker then asks:
can I distinguish the two timing distributions, and with how many
observations?

Under unmodified Xen the attacker and victim share a machine directly
and the victim's dom0/cache activity shifts the attacker's measurements
visibly.  Under StopWatch the attacker sees only the median of three
replicas' timings, at most one of which is perturbed.
"""

from typing import List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.clocks import ClockObserver
from repro.cloud.fabric import Cloud
from repro.core.config import StopWatchConfig, DEFAULT, PASSTHROUGH
from repro.sim.kernel import Simulator
from repro.sim.monitor import Trace
from repro.stats.detection import observations_to_detect
from repro.stats.distributions import Empirical
from repro.workloads.echo import PingClient
from repro.workloads.fileserver import FileServer, HttpDownloader


def observations_needed_from_samples(
        null_samples: Sequence[float], alt_samples: Sequence[float],
        confidences: Sequence[float], bins: int = 10,
        power: float = 0.5) -> List[Tuple[float, int]]:
    """Fig. 4(b): observation counts from two empirical sample sets.

    Bins are the null distribution's equiprobable quantiles; cell
    probabilities for both conditions come from the samples.
    """
    null_dist = Empirical(null_samples)
    edges = [null_dist.quantile(i / bins) for i in range(1, bins)]
    edge_arr = np.array(edges)

    def cell_probs(samples: Sequence[float]) -> np.ndarray:
        counts = np.bincount(np.searchsorted(edge_arr, np.array(samples)),
                             minlength=bins)[:bins]
        return counts / len(samples)

    p = cell_probs(null_samples)
    q = cell_probs(alt_samples)
    return [(c, observations_to_detect(p, q, c, power=power))
            for c in confidences]


class CoresidenceResult(NamedTuple):
    """Both conditions' samples plus the detection curve."""

    mediated: bool
    samples_victim: List[float]      # inter-arrival virts, victim present
    samples_control: List[float]     # inter-arrival virts, no victim
    divergences: int

    def detection_curve(self, confidences=(0.70, 0.75, 0.80, 0.85, 0.90,
                                           0.95, 0.99),
                        bins: int = 10) -> List[Tuple[float, int]]:
        return observations_needed_from_samples(
            self.samples_control, self.samples_victim, confidences,
            bins=bins)


def _build_attack_cloud(config: StopWatchConfig, seed: int,
                        with_victim: bool, ping_mean: float,
                        victim_file_bytes: int,
                        victim_clients: int,
                        host_kwargs: Optional[dict]):
    """One condition's cloud: attacker VM + optional coresident victim."""
    sim = Simulator(seed=seed, trace=Trace(
        categories={"vmm.divergence", "ingress.replicate"},
        max_per_category=65_536))
    machines = 5 if config.replicas > 1 else 1
    cloud = Cloud(sim, machines=machines, config=config,
                  host_kwargs=host_kwargs)

    if config.replicas > 1:
        attacker_hosts = [0, 1, 2]
        victim_hosts = [0, 3, 4]     # shares exactly host 0 with attacker
        # (host 0 carries attacker replica 0 -- the "leader" in the
        # aggregation ablation -- so leader-dictated timing demonstrably
        # copies the victim's perturbation)
    else:
        attacker_hosts = [0]
        victim_hosts = [0]           # direct coresidence (baseline)

    attacker_holder = []
    cloud.create_vm("attacker",
                    lambda guest: _remember(attacker_holder,
                                            ClockObserver(guest)),
                    hosts=attacker_hosts)
    pinger_node = cloud.add_client("pinger:1")
    pinger = PingClient(pinger_node, "vm:attacker", mean_interval=ping_mean)

    downloaders = []
    if with_victim:
        cloud.create_vm("victim", FileServer, hosts=victim_hosts)
        for index in range(victim_clients):
            node = cloud.add_client(f"victim-client:{index}")
            downloader = HttpDownloader(node, "vm:victim")
            downloaders.append(downloader)

    return sim, cloud, attacker_holder, pinger, downloaders


def _remember(holder: list, workload):
    holder.append(workload)
    return workload


def _keep_downloading(sim, downloader, size: int) -> None:
    """Loop downloads back-to-back for the whole run."""

    def again(_latency=None):
        downloader.download(size, on_done=again)

    again()


def run_coresidence_experiment(
        mediated: bool = True,
        duration: float = 40.0,
        seed: int = 7,
        ping_mean: float = 0.020,
        victim_file_bytes: int = 300_000,
        victim_clients: int = 3,
        config: Optional[StopWatchConfig] = None,
        host_kwargs: Optional[dict] = None) -> CoresidenceResult:
    """Run both conditions and return the attacker's sample sets."""
    if config is None:
        config = DEFAULT if mediated else PASSTHROUGH
    if host_kwargs is None:
        host_kwargs = {"contention_alpha": 0.5}

    samples = {}
    divergences = 0
    for with_victim in (False, True):
        sim, cloud, holder, pinger, downloaders = _build_attack_cloud(
            config, seed, with_victim, ping_mean, victim_file_bytes,
            victim_clients, host_kwargs)
        sim.call_after(0.1, pinger.start)
        for downloader in downloaders:
            sim.call_after(0.05, _keep_downloading, sim, downloader,
                           victim_file_bytes)
        cloud.run(until=duration)
        attacker = holder[0]   # all replicas record identical virts;
        # use the first replica's observations
        samples[with_victim] = attacker.inter_arrival_virts()
        if with_victim:
            divergences = int(
                cloud.vms["attacker"].stat_sum("divergences"))
    return CoresidenceResult(
        mediated=mediated,
        samples_victim=samples[True],
        samples_control=samples[False],
        divergences=divergences,
    )
