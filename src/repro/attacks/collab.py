"""Collaborating attacker VMs (Sec. IX).

The scenario: attacker VM1's replicas sit on machines A, B, C; a second
attacker VM2 has a replica on A; a victim replica sits on C.  VM2
floods its machine, slowing VM1's replica on A so that A's delivery
proposals lag and the median is decided between B and C -- the replica
coresident with the victim regains influence.

Countermeasure (also Sec. IX): more replicas.  With five replicas the
collaborator must marginalise several replicas at once to matter.

The experiment measures how much the victim's activity shifts the
attacker's observed inter-arrival distribution (a) without the
collaborator, (b) with it, and (c) with it but five replicas, and
reports the chi-squared observation counts for each.
"""

from typing import List, NamedTuple, Optional, Tuple

from repro.attacks.clocks import ClockObserver
from repro.attacks.covert import BurstSender, SINK_PORT
from repro.attacks.sidechannel import observations_needed_from_samples
from repro.cloud.fabric import Cloud
from repro.core.config import StopWatchConfig, DEFAULT
from repro.net.udp import UdpStack
from repro.sim.kernel import Simulator
from repro.sim.monitor import Trace
from repro.workloads.echo import PingClient
from repro.workloads.fileserver import FileServer, HttpDownloader


class CollabResult(NamedTuple):
    replicas: int
    collaborator: bool
    samples_victim: List[float]
    samples_control: List[float]

    def observations_needed(self, confidence: float = 0.95,
                            bins: int = 10) -> int:
        curve = observations_needed_from_samples(
            self.samples_control, self.samples_victim, [confidence],
            bins=bins)
        return curve[0][1]


def _placement(replicas: int) -> Tuple[int, list, list, list]:
    """(machines, attacker_hosts, victim_hosts, collaborator_hosts) with
    the triangle/cliques pairwise edge-disjoint and the Sec. IX overlap
    pattern: collaborator shares machine 0 with the attacker; victim
    shares the attacker's last machine."""
    if replicas == 3:
        return 8, [0, 1, 2], [2, 3, 4], [0, 5, 6]
    if replicas == 5:
        return 14, [0, 1, 2, 3, 4], [4, 5, 6, 7, 8], [0, 9, 10, 11, 12]
    raise ValueError(f"unsupported replica count {replicas}")


def run_collab_experiment(replicas: int = 3,
                          collaborator: bool = True,
                          duration: float = 30.0,
                          seed: int = 13,
                          ping_mean: float = 0.020,
                          victim_file_bytes: int = 300_000,
                          victim_clients: int = 3,
                          host_kwargs: Optional[dict] = None) -> CollabResult:
    """Run victim-present and control conditions; return both sample sets."""
    if host_kwargs is None:
        host_kwargs = {"contention_alpha": 0.5}
    config = DEFAULT.with_overrides(replicas=replicas)
    machines, attacker_hosts, victim_hosts, collab_hosts = \
        _placement(replicas)

    samples = {}
    for with_victim in (False, True):
        sim = Simulator(seed=seed, trace=Trace(
            categories={"vmm.divergence"}, max_per_category=65_536))
        cloud = Cloud(sim, machines=machines, config=config,
                      host_kwargs=host_kwargs)
        holder: list = []
        cloud.create_vm(
            "attacker",
            lambda guest: holder.append(ClockObserver(guest)) or holder[-1],
            hosts=attacker_hosts)
        sink = cloud.add_client("sink:1")
        UdpStack(sink).bind(SINK_PORT, lambda d, s: None)
        if collaborator:
            cloud.create_vm(
                "collab",
                lambda guest: BurstSender(guest, "sink:1", always_on=True),
                hosts=collab_hosts)
        if with_victim:
            cloud.create_vm("victim", FileServer, hosts=victim_hosts)
            for index in range(victim_clients):
                node = cloud.add_client(f"vclient:{index}")
                downloader = HttpDownloader(node, "vm:victim")

                def loop(dl=downloader):
                    dl.download(victim_file_bytes,
                                on_done=lambda _lat: loop(dl))

                sim.call_after(0.05, loop)
        pinger_node = cloud.add_client("pinger:1")
        pinger = PingClient(pinger_node, "vm:attacker",
                            mean_interval=ping_mean)
        sim.call_after(0.1, pinger.start)
        cloud.run(until=duration)
        samples[with_victim] = holder[0].inter_arrival_virts()

    return CollabResult(
        replicas=replicas,
        collaborator=collaborator,
        samples_victim=samples[True],
        samples_control=samples[False],
    )
