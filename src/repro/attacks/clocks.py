"""Wray's clock taxonomy, as seen from inside a StopWatch guest.

Wray [32] classifies the clocks an attacker can measure with:

- **RT** -- real-time clocks (here: the guest's virtual clock, since
  StopWatch replaces every real-time source with virtual time);
- **IO** -- the I/O subsystem (network/disk interrupt arrivals);
- **TL** -- a CPU timing loop (here: the branch counter);
- **Mem** -- the memory subsystem (functionally equivalent to TL in a
  uniprocessor guest; represented by the branch counter as well).

:class:`ClockObserver` is an attacker workload that stamps every
observable event with all of these clocks at once.  Under StopWatch,
RT/TL/PIT are all deterministic functions of guest progress, so the
only externally influenced clock is IO -- and IO timings are medians.
The determinism tests assert exactly this collapse.
"""

from typing import List, NamedTuple

from repro.net.udp import UdpStack
from repro.workloads.base import GuestWorkload

ATTACKER_PORT = 7


class ClockSample(NamedTuple):
    """One observable event stamped with every guest-buildable clock."""

    event_index: int
    virt: float          # RT clock (virtualised)
    instr: int           # TL / Mem clock (branch counter)
    pit_ticks: int       # timer-interrupt count


class ClockObserver(GuestWorkload):
    """Attacker guest: echoes pings and stamps each arrival."""

    def __init__(self, guest, compute_branches: int = 15000):
        super().__init__(guest)
        self.compute_branches = compute_branches
        self.udp = UdpStack(guest)
        self.samples: List[ClockSample] = []
        self._pit_ticks = 0

    def start(self) -> None:
        self.guest.on_timer_tick(self._on_tick)
        self.udp.bind(ATTACKER_PORT, self._on_datagram)

    def _on_tick(self, index: int) -> None:
        self._pit_ticks = index

    def _on_datagram(self, datagram, src: str) -> None:
        self.samples.append(ClockSample(
            event_index=len(self.samples),
            virt=self.guest.now(),
            instr=self.guest.instr,
            pit_ticks=self._pit_ticks,
        ))
        self.guest.compute(self.compute_branches, self._reply, src,
                           datagram)

    def _reply(self, src: str, datagram) -> None:
        self.udp.send(src, ATTACKER_PORT, datagram.src_port,
                      datagram.data_len, tag=datagram.tag)

    # -- derived clock readings ----------------------------------------
    def inter_arrival_virts(self) -> List[float]:
        """IO-event spacing measured with the RT (virtual) clock."""
        return [b.virt - a.virt
                for a, b in zip(self.samples, self.samples[1:])]

    def inter_arrival_instrs(self) -> List[int]:
        """IO-event spacing measured with the TL clock (branches)."""
        return [b.instr - a.instr
                for a, b in zip(self.samples, self.samples[1:])]

    def inter_arrival_ticks(self) -> List[int]:
        """IO-event spacing measured by counting PIT interrupts."""
        return [b.pit_ticks - a.pit_ticks
                for a, b in zip(self.samples, self.samples[1:])]
