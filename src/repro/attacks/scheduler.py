"""The scheduler-theft probe (Zhou et al.'s cycle-stealing attack).

The attacker guest spins CPU-bound and emits a beacon packet every
``burst_branches`` branches to a colluding external sink.  The guest
cannot see real time, but the *sink* can: how long a fixed branch
budget takes in wall-clock depends on how much of the shared host's
CPU the attacker actually got, so beacon inter-arrival gaps at the
sink measure the coresident victim's CPU theft.

Under StopWatch the beacons leave through the egress median of three
replicas, at most one of which shares a host with the victim, so the
gap distribution barely moves.  Under ``none`` the single shared host's
contention shows directly.
"""

from typing import List

from repro.attacks.probes import (
    AttackResult,
    _deploy_victim,
    _gaps,
    _policy_cell,
    _victim_latencies,
)
from repro.core.config import DEFAULT, StopWatchConfig
from repro.net.packet import Packet
from repro.workloads.base import GuestWorkload

BEACON_PROTOCOL = "beacon"
BEACON_SIZE = 120


class TheftProbe(GuestWorkload):
    """Attacker guest: spin a fixed branch budget, beacon, repeat."""

    def __init__(self, guest, sink_addr: str,
                 burst_branches: int = 40_000):
        super().__init__(guest)
        self.sink_addr = sink_addr
        self.burst_branches = burst_branches
        self.beacons_sent = 0

    def start(self) -> None:
        self._spin()

    def _spin(self) -> None:
        self.guest.compute(self.burst_branches, self._beacon)

    def _beacon(self) -> None:
        self.guest.send_packet(Packet(
            src=self.guest.address, dst=self.sink_addr,
            protocol=BEACON_PROTOCOL, payload=self.beacons_sent,
            size=BEACON_SIZE))
        self.beacons_sent += 1
        self._spin()


def run_scheduler_theft(policy="stopwatch",
                        duration: float = 20.0,
                        seed: int = 7,
                        burst_branches: int = 40_000,
                        workload: str = "fileserver",
                        victim_clients: int = 3,
                        victim_file_bytes: int = 300_000,
                        ping_mean: float = 0.020,
                        base_config: StopWatchConfig = DEFAULT,
                        ) -> AttackResult:
    """Run the theft probe with and without the coresident victim."""
    samples = {}
    latencies: List[float] = []
    beacons = 0.0
    policy_name = ""
    for present in (False, True):
        sim, cloud, attacker_hosts, victim_hosts = _policy_cell(
            policy, seed, base_config)
        sink = cloud.add_client("sink:1")
        arrivals: List[float] = []
        sink.register_protocol(
            BEACON_PROTOCOL,
            lambda packet, sim=sim, arrivals=arrivals:
            arrivals.append(sim.now))
        probes = []
        cloud.create_vm(
            "attacker",
            lambda guest: _remember(probes, TheftProbe(
                guest, "sink:1", burst_branches=burst_branches)),
            hosts=attacker_hosts)
        drivers = []
        if present:
            drivers = _deploy_victim(sim, cloud, victim_hosts, workload,
                                     victim_clients, victim_file_bytes,
                                     ping_mean)
        cloud.run(until=duration)
        samples[present] = _gaps(arrivals)
        policy_name = cloud.policy.name
        if present:
            latencies = _victim_latencies(drivers)
            beacons = float(probes[0].beacons_sent)
    return AttackResult(
        attack="theft",
        policy=policy_name,
        samples_absent=samples[False],
        samples_present=samples[True],
        latencies=latencies,
        meta={"beacons_sent": beacons},
    )


def _remember(holder: list, workload):
    holder.append(workload)
    return workload
