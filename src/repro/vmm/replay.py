"""Deterministic execution record/replay.

StopWatch's determinism means a replica's entire execution is captured
by the schedule of events injected into it: network interrupts, disk
completions and PIT ticks, each pinned to a branch count, plus any
epoch resynchronisations of the virtual clock.  This module records
that schedule from a live replica and re-executes the guest **offline**
-- no hosts, no network, no simulated real time -- reproducing the same
instruction-for-instruction behaviour and the same outputs.

This serves three purposes:

- it is the strongest possible determinism check (used in tests);
- it reconstructs the VM-replay capability the paper relates to
  (ReTrace/VEE'08) on top of StopWatch's own mechanisms;
- it is how a diverged replica would be recovered in a deployment:
  re-run the guest against the healthy replicas' injection schedule.
"""

import heapq
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.config import StopWatchConfig
from repro.core.virtual_time import EpochSample, VirtualClock
from repro.machine.guest import GuestOS


@dataclass
class ExecutionRecording:
    """Everything needed to re-execute one replica."""

    vm_name: str
    config: StopWatchConfig
    #: (ingress seq, delivery instr, packet)
    net: List[Tuple[int, int, Any]] = field(default_factory=list)
    #: (request id, delivery instr) -- in request order
    disk: List[Tuple[int, int]] = field(default_factory=list)
    #: (tick index, delivery instr)
    ticks: List[Tuple[int, int]] = field(default_factory=list)
    #: (epoch index, samples)
    epochs: List[Tuple[int, List[EpochSample]]] = field(
        default_factory=list)
    #: (output seq, emission instr, packet) -- the ground truth to match
    outputs: List[Tuple[int, int, Any]] = field(default_factory=list)

    @property
    def horizon_instr(self) -> int:
        """The last recorded event's instruction count."""
        candidates = [0]
        for collection in (self.net, self.disk, self.ticks, self.outputs):
            candidates.extend(item[1] for item in collection)
        return max(candidates)

    def clone(self) -> "ExecutionRecording":
        """A snapshot copy whose event lists can grow independently --
        used to seed a rejoined replica's recorder from a survivor's."""
        return ExecutionRecording(
            vm_name=self.vm_name, config=self.config,
            net=list(self.net), disk=list(self.disk),
            ticks=list(self.ticks), epochs=list(self.epochs),
            outputs=list(self.outputs))


class ExecutionRecorder:
    """Attach to a live ReplicaVMM to capture its injection schedule.

    ``base`` resumes recording on top of a cloned prior recording -- how
    a replica rebuilt by replay becomes a valid recovery source itself:
    its recorder carries the survivor's history up to the rejoin point
    and appends everything the rejoined replica does afterwards.
    """

    def __init__(self, vmm, base: Optional[ExecutionRecording] = None):
        if base is not None:
            self.recording = base.clone()
        else:
            self.recording = ExecutionRecording(vm_name=vmm.vm_name,
                                                config=vmm.config)
        vmm.on_net_delivery = self._on_net
        vmm.on_disk_delivery = self._on_disk
        vmm.on_tick = self._on_tick
        vmm.on_output = self._on_output
        vmm.on_epoch = self._on_epoch

    def _on_net(self, seq, instr, packet) -> None:
        self.recording.net.append((seq, instr, packet))

    def _on_disk(self, request_id, instr) -> None:
        self.recording.disk.append((request_id, instr))

    def _on_tick(self, index, instr) -> None:
        self.recording.ticks.append((index, instr))

    def _on_output(self, seq, instr, packet) -> None:
        self.recording.outputs.append((seq, instr, packet))

    def _on_epoch(self, index, samples) -> None:
        self.recording.epochs.append((index, list(samples)))


class ReplayMismatch(RuntimeError):
    """The replayed execution deviated from the recording."""


class ReplayEngine:
    """Re-executes a guest from an :class:`ExecutionRecording`.

    Provides exactly the VMM surface :class:`GuestOS` consumes, driven
    purely by instruction counts -- replay takes no simulated time at
    all.  Outputs are checked against the recording as they are emitted.
    """

    def __init__(self, recording: ExecutionRecording, workload_factory,
                 workload_rng, strict: bool = True):
        self.recording = recording
        self.config = recording.config
        self.strict = strict
        self.vm_name = recording.vm_name
        self.vm_address = f"vm:{recording.vm_name}"
        self.clock = VirtualClock(
            start=0.0, slope=self.config.initial_slope,
            slope_range=self.config.slope_range,
            epoch_instructions=self.config.epoch_instructions)
        self.instr = 0
        self.guest = GuestOS(self, workload_rng)
        self.outputs: List[Tuple[int, int, Any]] = []
        self._out_seq = 0
        self._disk_cursor = 0
        # pending replay events: (instr, order, kind, payload)
        self._events: List[Tuple[int, int, str, Any]] = []
        self._order = 0
        for seq, instr, packet in recording.net:
            self._push(instr, "net", packet)
        for index, instr in recording.ticks:
            self._push(instr, "tick", index)
        self._epochs = list(recording.epochs)
        self.workload = workload_factory(self.guest)
        self.guest.schedule_at_instr(0, self.workload.start)

    # ------------------------------------------------------------------
    # the VMM surface GuestOS uses
    # ------------------------------------------------------------------
    def current_virt(self) -> float:
        return self.clock.time_at(self.instr)

    def notify_guest_event(self) -> None:
        pass

    def guest_output(self, packet) -> None:
        seq = self._out_seq
        self._out_seq += 1
        self.outputs.append((seq, self.instr, packet))
        if self.strict and seq < len(self.recording.outputs):
            expected_seq, expected_instr, _ = self.recording.outputs[seq]
            if (seq, self.instr) != (expected_seq, expected_instr):
                raise ReplayMismatch(
                    f"output {seq} emitted at instr {self.instr}, "
                    f"recorded at {expected_instr}"
                )
        elif self.strict:
            raise ReplayMismatch(
                f"replay produced extra output seq {seq} at instr "
                f"{self.instr}"
            )

    def request_disk(self, blocks, fn, args, write) -> None:
        """Disk requests are matched positionally to recorded deliveries
        (the guest issues them in the same deterministic order)."""
        if self._disk_cursor >= len(self.recording.disk):
            if self.strict:
                raise ReplayMismatch(
                    f"replay issued more disk requests than recorded "
                    f"({self._disk_cursor + 1})"
                )
            return
        _, delivery_instr = self.recording.disk[self._disk_cursor]
        self._disk_cursor += 1
        if delivery_instr < self.instr:
            raise ReplayMismatch(
                f"recorded disk delivery at instr {delivery_instr} "
                f"precedes the request at {self.instr}"
            )
        self._push(delivery_instr, "disk", (fn, args))

    # ------------------------------------------------------------------
    # replay loop
    # ------------------------------------------------------------------
    def _push(self, instr: int, kind: str, payload) -> None:
        heapq.heappush(self._events, (instr, self._order, kind, payload))
        self._order += 1

    def _apply_due_epochs(self, target: int) -> None:
        while self._epochs:
            boundary = self.clock.next_epoch_boundary()
            if boundary is None or boundary > target:
                return
            index, samples = self._epochs[0]
            if index != self.clock.epoch_index:
                raise ReplayMismatch(
                    f"epoch ordering mismatch: recorded {index}, "
                    f"clock at {self.clock.epoch_index}"
                )
            self._epochs.pop(0)
            self.clock.apply_epoch_resync(samples)

    def run(self) -> List[Tuple[int, int, Any]]:
        """Replay to the recording's horizon; returns the outputs."""
        horizon = self.recording.horizon_instr
        while True:
            guest_next = self.guest.next_event_instr()
            replay_next = self._events[0][0] if self._events else None
            candidates = [c for c in (guest_next, replay_next)
                          if c is not None]
            if not candidates:
                break
            target = min(candidates)
            if target > horizon and replay_next is None:
                break
            self._apply_due_epochs(target)
            self.instr = max(self.instr, target)
            self.guest.run_due_events(self.instr)
            while self._events and self._events[0][0] <= self.instr:
                _, _, kind, payload = heapq.heappop(self._events)
                if kind == "net":
                    self.guest.deliver_packet(payload)
                elif kind == "tick":
                    self.guest.deliver_tick(payload)
                else:  # disk
                    fn, args = payload
                    fn(*args)
        if self.strict and len(self.outputs) != len(self.recording.outputs):
            raise ReplayMismatch(
                f"replay produced {len(self.outputs)} outputs, recording "
                f"has {len(self.recording.outputs)}"
            )
        return self.outputs
