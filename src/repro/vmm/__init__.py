"""The StopWatch VMM (hypervisor) layer.

- :class:`ReplicaVMM` -- one replica's hypervisor: drives guest
  execution in branch-count quanta, takes guest-execution VM exits,
  injects timer/disk/network interrupts at virtual-time deadlines,
  emits guest output through the egress node, and participates in the
  replica pacing/epoch protocols.
- :class:`ReplicaCoordination` -- the PGM-multicast channel among the
  VMMs hosting one guest VM's replicas: delivery-time proposals (median
  agreement), pacing progress reports, and epoch resynchronisation
  samples.
"""

from repro.vmm.hypervisor import ReplicaVMM
from repro.vmm.coordination import ReplicaCoordination
from repro.vmm.replay import (
    ExecutionRecorder,
    ExecutionRecording,
    ReplayEngine,
    ReplayMismatch,
)

__all__ = [
    "ReplicaVMM",
    "ReplicaCoordination",
    "ExecutionRecorder",
    "ExecutionRecording",
    "ReplayEngine",
    "ReplayMismatch",
]
