"""One replica's hypervisor: the execution engine and device models.

The engine runs the guest in branch-count quanta.  VM exits caused by
guest execution happen every ``exit_interval_branches`` branches; those
exits are the **only** points where interrupts are injected (Sec. IV-B),
which quantises all guest-visible event timing onto the guest's own
progress -- exactly the paper's mechanism.

Interrupt sources and their delivery disciplines (Sec. IV-V):

- PIT timer: injected on the virtual-time schedule ``k / pit_hz``.
- Disk/DMA: delivery at ``request_virt + Δd``; the physical access is
  started immediately and must finish by then (violations are counted).
- Network: the VMM proposes ``last_exit_virt + Δn``, the replicas'
  median is adopted, delivery happens at the first guest-execution exit
  whose virtual time passes the median.  A median that already passed
  marks a divergence (synchrony violation, Sec. V-A footnote 4).

With ``config.mediate = False`` the same engine models unmodified Xen:
one replica, interrupts delivered as soon as the device model finishes
(the engine is poked mid-quantum so baseline latency is not quantised),
guest outputs sent directly.
"""

from collections import deque
from typing import Callable, Optional

from repro.core.config import StopWatchConfig
from repro.core.virtual_time import EpochSample, VirtualClock
from repro.machine.guest import GuestOS
from repro.mitigation import MitigationPolicy, default_policy
from repro.net.packet import Packet, ReplicaEnvelope
from repro.sim.errors import Interrupt


class _NetInjection:
    __slots__ = ("seq", "packet", "delivery_virt")

    def __init__(self, seq, packet, delivery_virt):
        self.seq = seq
        self.packet = packet
        self.delivery_virt = delivery_virt


class _DiskInjection:
    __slots__ = ("request_id", "delivery_virt", "callback", "args", "ready",
                 "flow")

    def __init__(self, request_id, delivery_virt, callback, args,
                 flow=None):
        self.request_id = request_id
        self.delivery_virt = delivery_virt
        self.callback = callback
        self.args = args
        self.ready = False
        self.flow = flow


class ReplicaVMM:
    """The hypervisor instance for one replica of one guest VM."""

    def __init__(self, sim, host, vm_name: str, replica_id: int,
                 config: StopWatchConfig, workload_rng,
                 egress_address: str = "egress",
                 policy: Optional[MitigationPolicy] = None):
        self.sim = sim
        self.host = host
        self.vm_name = vm_name
        self.vm_address = f"vm:{vm_name}"
        self.replica_id = replica_id
        self.config = config
        # injection/release timing discipline; the default derives from
        # the config so pre-subsystem callers behave identically
        self.policy = policy if policy is not None \
            else default_policy(config)
        self.egress_address = egress_address
        self.clock = VirtualClock(
            start=0.0, slope=config.initial_slope,
            slope_range=config.slope_range,
            epoch_instructions=config.epoch_instructions,
        )
        self.instr = 0
        self.last_exit_virt = 0.0
        self.guest = GuestOS(self, workload_rng)
        self.coordination = None  # wired by the cloud fabric when replicated

        # injection state
        self._pending_net = {}
        self._net_seq_baseline = 0          # local seq counter (baseline)
        self._next_net_delivery_seq = 0
        self._net_commit_floor = 0.0        # FIFO clamp on delivery times
        self._net_suppress_floor = 0        # seqs below this came via replay
        self._pending_disk = deque()

        # timer state
        self._next_pit_virt = config.pit_period_virtual
        self.pit_ticks = 0

        # output state
        self._out_seq = 0

        # engine state
        self.running = False
        self.failed = False
        self._engine_proc = None
        self._sleeping = False
        self._epoch_start_real = 0.0
        self._spb = 1.0 / config.base_branch_rate

        # optional observation hooks (used by the record/replay facility)
        self.on_net_delivery = None    # fn(seq, instr, packet)
        self.on_disk_delivery = None   # fn(request_id, instr)
        self.on_tick = None            # fn(tick_index, instr)
        self.on_output = None          # fn(seq, instr, packet)
        self.on_epoch = None           # fn(epoch_index, samples)

        self.stats = {
            "vm_exits": 0,
            "net_interrupts": 0,
            "disk_interrupts": 0,
            "timer_interrupts": 0,
            "divergences": 0,
            "delta_d_waits": 0,
            "pacing_stalls": 0,
            "pacing_stall_time": 0.0,
            "outputs": 0,
            "skipped_deliveries": 0,
        }
        host.attach_vmm(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._epoch_start_real = self.sim.now
        self._engine_proc = self.sim.process(
            self._engine(),
            name=f"vmm.{self.vm_name}.r{self.replica_id}")

    def stop(self) -> None:
        self.running = False

    def fail(self) -> None:
        """Simulate the replica host dying: the engine halts mid-quantum
        and the device model stops observing packets and making
        proposals.  Without failure detection the siblings' median
        agreements for subsequent packets can then never complete -- the
        availability cost Sec. V-A's recovery footnote addresses; with
        ``config.failure_detection`` the siblings degrade to the live
        quorum and this replica can later be rebuilt from their
        injection schedule (:func:`repro.faults.recovery.rejoin_replica`).
        """
        if self.failed:
            return
        self.failed = True
        self.stop()
        self.sim.trace.record(self.sim.now, "fault.vmm_down",
                              vm=self.vm_name, replica=self.replica_id,
                              instr=self.instr)
        if self._sleeping and self._engine_proc is not None \
                and self._engine_proc.alive:
            self._sleeping = False
            self._engine_proc.interrupt("crash")

    # ------------------------------------------------------------------
    # guest-facing API (called synchronously from guest events)
    # ------------------------------------------------------------------
    def current_virt(self) -> float:
        return self.clock.time_at(self.instr)

    def notify_guest_event(self) -> None:
        # Guest events are only created while the engine is awake (guest
        # code runs inside engine steps), so no poke is needed; the engine
        # recomputes its next target after every step.
        pass

    def guest_output(self, packet: Packet) -> None:
        """Guest emitted a packet at the current instruction count."""
        seq = self._out_seq
        self._out_seq += 1
        self.stats["outputs"] += 1
        if self.on_output is not None:
            self.on_output(seq, self.instr, packet)
        self.host.dom0.submit(self.config.dom0_output_cost,
                              self._emit_output, seq, packet,
                              self.guest.current_flow())

    def _emit_output(self, seq: int, packet: Packet,
                     flow: Optional[int] = None) -> None:
        self.sim.trace.record(self.sim.now, "vmm.emit", vm=self.vm_name,
                              replica=self.replica_id, seq=seq)
        self.sim.flows.output_emitted(self.sim.now, self.vm_name, seq,
                                      self.replica_id, flow)
        if self.config.egress_enabled:
            envelope = ReplicaEnvelope(vm=self.vm_name, direction="out",
                                       seq=seq, inner=packet,
                                       replica_id=self.replica_id)
            self.host.node.send_packet(Packet(
                src=self.host.address, dst=self.egress_address,
                protocol="replica-out", payload=envelope,
                size=envelope.wire_size(),
            ))
        else:
            self.host.node.network.send(packet)

    def request_disk(self, blocks: int, fn: Callable, args: tuple,
                     write: bool) -> None:
        """Guest issued a disk/DMA request at the current virtual time."""
        request_virt = self.current_virt()
        delivery_virt = self.policy.disk_delivery_virt(self, request_virt)
        request_id = len(self._pending_disk) + self.stats["disk_interrupts"]
        injection = _DiskInjection(request_id, delivery_virt, fn, args,
                                   flow=self.guest.current_flow())
        self.sim.trace.record(self.sim.now, "vmm.disk.request",
                              vm=self.vm_name, replica=self.replica_id,
                              req=request_id, write=write)
        self._pending_disk.append(injection)
        self.host.dom0.submit(self.config.dom0_disk_cost,
                              self._start_disk_access, blocks, injection)

    def _start_disk_access(self, blocks: int,
                           injection: _DiskInjection) -> None:
        self.host.disk.request(blocks, self._disk_ready, injection)

    def _disk_ready(self, injection: _DiskInjection) -> None:
        injection.ready = True
        if self.policy.disk_poke:
            self._poke()

    # ------------------------------------------------------------------
    # inbound network path (called by the host device model / fabric)
    # ------------------------------------------------------------------
    def observe_inbound(self, seq: Optional[int], packet: Packet) -> None:
        """The dom0 device model finished processing an inbound packet.

        Under StopWatch ``seq`` is the ingress-assigned sequence number;
        under the baseline it is ignored and a local counter is used.
        """
        if self.failed:
            return
        if seq is not None and seq < self._net_suppress_floor:
            # NAK recovery re-delivered an inbound packet this replica
            # already incorporated through replay-based rejoin
            self.sim.trace.record(self.sim.now, "recovery.suppress",
                                  vm=self.vm_name, replica=self.replica_id,
                                  seq=seq)
            return
        if not self.policy.coordinated or self.coordination is None:
            local_seq = self._net_seq_baseline
            self._net_seq_baseline += 1
            self._pending_net[local_seq] = _NetInjection(
                local_seq, packet,
                self.policy.inbound_delivery_virt(self))
            if self.policy.immediate_injection:
                self._poke()
            return
        proposal = self.policy.network_proposal_virt(self)
        self.sim.trace.record(self.sim.now, "vmm.propose", vm=self.vm_name,
                              replica=self.replica_id, seq=seq,
                              proposal=proposal)
        self.sim.flows.packet_observed(self.sim.now, self.vm_name, seq,
                                       self.replica_id, proposal=proposal)
        self.coordination.local_proposal(seq, packet, proposal)

    def commit_network_delivery(self, seq: int, median_virt: float,
                                packet: Optional[Packet]) -> None:
        """The median proposal for packet ``seq`` was decided.

        ``packet`` may be ``None`` when the group decided a slot this
        replica never observed (ingress loss, or a stale agreement swept
        under degraded operation): the slot is *skipped* at delivery
        time so FIFO injection keeps moving.
        """
        if seq < self._next_net_delivery_seq:
            return  # late decision for a slot already delivered/skipped
        self.sim.flows.decision_committed(self.sim.now, self.vm_name, seq,
                                          self.replica_id, median_virt)
        delivery = max(median_virt, self._net_commit_floor)
        self._net_commit_floor = delivery
        if median_virt < self.last_exit_virt:
            # the chosen median already passed here: synchrony violated
            self.stats["divergences"] += 1
            self.sim.trace.record(self.sim.now, "vmm.divergence",
                                  vm=self.vm_name, replica=self.replica_id,
                                  seq=seq)
        self._pending_net[seq] = _NetInjection(seq, packet, delivery)

    # ------------------------------------------------------------------
    # the execution engine
    # ------------------------------------------------------------------
    def _poke(self) -> None:
        """Wake the engine mid-quantum (baseline immediate injection)."""
        if self._sleeping and self._engine_proc is not None \
                and self._engine_proc.alive:
            self._sleeping = False
            self._engine_proc.interrupt("inject")

    def _engine(self):
        config = self.config
        exit_interval = config.exit_interval_branches
        pacing_interval = config.pacing_interval_branches
        paced = config.mediate and self.coordination is not None
        # stable collaborators, bound once: this generator resumes about
        # 1e5 times per simulated second
        sim = self.sim
        guest = self.guest
        next_epoch_boundary = self.clock.next_epoch_boundary
        next_event_instr = guest.next_event_instr
        run_due_events = guest.run_due_events
        slowdown_factor = self.host.slowdown_factor
        timeout = sim.timeout
        spb = self._spb
        while self.running:
            instr = self.instr
            target = ((instr // exit_interval) + 1) * exit_interval
            if paced:
                next_pace = ((instr // pacing_interval) + 1) \
                    * pacing_interval
                if next_pace < target:
                    target = next_pace
            epoch_boundary = next_epoch_boundary()
            if epoch_boundary is not None and instr < epoch_boundary \
                    and epoch_boundary < target:
                target = epoch_boundary
            guest_event = next_event_instr()
            if guest_event is not None and guest_event < target:
                target = guest_event if guest_event > instr else instr

            branches = target - instr
            if branches > 0:
                duration = branches * spb * slowdown_factor()
                started, base_instr = sim.now, instr
                self._sleeping = True
                try:
                    yield timeout(duration)
                except Interrupt:
                    if self.failed or not self.running:
                        return  # crashed mid-quantum: no final VM exit
                    # baseline-mode immediate injection: exit right here
                    elapsed = sim.now - started
                    fraction = 1.0
                    if duration > 0:
                        fraction = min(1.0, max(0.0, elapsed / duration))
                    self.instr = base_instr + int(branches * fraction)
                    run_due_events(self.instr)
                    self._vm_exit()
                    continue
                self._sleeping = False
                self.instr = instr = target

            run_due_events(instr)
            if instr % exit_interval == 0 and instr > 0:
                self._vm_exit()
            if paced and instr % pacing_interval == 0 and instr > 0:
                yield from self._pacing_barrier()
            if epoch_boundary is not None and instr == epoch_boundary:
                yield from self._epoch_barrier()

    # ------------------------------------------------------------------
    # VM exit processing
    # ------------------------------------------------------------------
    def _vm_exit(self) -> None:
        virt = self.clock.time_at(self.instr)
        self.last_exit_virt = virt
        self.stats["vm_exits"] += 1
        config = self.config

        if config.timer_interrupts:
            tick_gate = self.policy.timer_gate_virt(self, virt)
            while self._next_pit_virt <= tick_gate:
                self.pit_ticks += 1
                self.stats["timer_interrupts"] += 1
                if self.on_tick is not None:
                    self.on_tick(self.pit_ticks, self.instr)
                self.guest.deliver_tick(self.pit_ticks)
                self._next_pit_virt += config.pit_period_virtual

        while self._pending_disk:
            head = self._pending_disk[0]
            due = head.delivery_virt is None or head.delivery_virt <= virt
            if not due:
                break
            if not head.ready:
                # Δd too small for this access: the data is not in the
                # buffer yet; the interrupt waits for a later exit.
                self.stats["delta_d_waits"] += 1
                break
            self._pending_disk.popleft()
            self.stats["disk_interrupts"] += 1
            self.sim.trace.record(self.sim.now, "vmm.deliver.disk",
                                  vm=self.vm_name, replica=self.replica_id,
                                  req=head.request_id, virt=virt)
            if self.on_disk_delivery is not None:
                self.on_disk_delivery(head.request_id, self.instr)
            # the completion runs under the flow that issued the request,
            # so outputs it triggers stay attributed to that flow
            self.guest.set_flow(head.flow)
            try:
                head.callback(*head.args)
            finally:
                self.guest.set_flow(None)

        pending_net = self._pending_net
        while pending_net:
            injection = pending_net.get(self._next_net_delivery_seq)
            if injection is None or injection.delivery_virt > virt:
                break
            del self._pending_net[self._next_net_delivery_seq]
            self._next_net_delivery_seq += 1
            if injection.packet is None:
                # a decided-but-unobserved slot: skip it (traced; the
                # guest never sees the packet, which is a divergence
                # from replicas that did observe it)
                self.stats["skipped_deliveries"] += 1
                self.sim.trace.record(self.sim.now, "fault.skipped_delivery",
                                      vm=self.vm_name,
                                      replica=self.replica_id,
                                      seq=injection.seq, virt=virt)
                self.sim.flows.net_injected(self.sim.now, self.vm_name,
                                            injection.seq, self.replica_id,
                                            virt, skipped=True)
                continue
            self.stats["net_interrupts"] += 1
            self.sim.trace.record(self.sim.now, "vmm.deliver.net",
                                  vm=self.vm_name, replica=self.replica_id,
                                  seq=injection.seq, virt=virt)
            self.sim.flows.net_injected(self.sim.now, self.vm_name,
                                        injection.seq, self.replica_id,
                                        virt)
            if self.on_net_delivery is not None:
                self.on_net_delivery(injection.seq, self.instr,
                                     injection.packet)
            # the guest handler (and anything it schedules) runs in this
            # flow's context; mediated injections carry the ingress seq
            flow = injection.seq if self.config.mediate \
                and self.coordination is not None else None
            self.guest.set_flow(flow)
            try:
                self.guest.deliver_packet(injection.packet)
            finally:
                self.guest.set_flow(None)

    # ------------------------------------------------------------------
    # replay-based recovery
    # ------------------------------------------------------------------
    def adopt_replay(self, engine) -> None:
        """Transplant a finished :class:`~repro.vmm.replay.ReplayEngine`'s
        guest state into this (crashed) VMM.

        The engine re-executed a survivor's injection schedule, so its
        guest, virtual clock and instruction count are exactly what this
        replica's would have been had it not crashed.  Delivery state is
        reset to continue from the replayed horizon: the next expected
        ingress seq is one past the highest replayed one, and anything
        below that floor arriving late (NAK repair of pre-crash traffic)
        is suppressed.  Call :meth:`start` afterwards to resume
        execution, then ``coordination.announce_rejoin()``.
        """
        if not self.failed:
            raise RuntimeError(
                f"{self.vm_name} r{self.replica_id} is live; refusing to "
                f"overwrite its state with a replay")
        recording = engine.recording
        self.guest = engine.guest
        self.guest.vmm = self
        self.clock = engine.clock
        self.instr = engine.instr
        self.last_exit_virt = self.clock.time_at(self.instr)

        floor = 0
        if recording.net:
            floor = max(seq for seq, _, _ in recording.net) + 1
        self._pending_net = {}
        self._pending_disk.clear()
        self._net_suppress_floor = floor
        self._next_net_delivery_seq = floor
        self._net_commit_floor = self.last_exit_virt
        self._out_seq = engine._out_seq
        if recording.ticks:
            self.pit_ticks = recording.ticks[-1][0]
        self._next_pit_virt = (self.pit_ticks + 1) \
            * self.config.pit_period_virtual

        self.failed = False
        self.stats["outputs"] = self._out_seq
        self.sim.metrics.incr("recovery.adoptions")
        self.sim.trace.record(self.sim.now, "recovery.adopt",
                              vm=self.vm_name, replica=self.replica_id,
                              instr=self.instr, net_floor=floor,
                              outputs=self._out_seq)

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------
    def _pacing_barrier(self):
        boundary = self.instr // self.config.pacing_interval_branches
        self.coordination.report_progress(boundary)
        stalled_at = None
        while self.running and not self.coordination.can_proceed(boundary):
            if stalled_at is None:
                stalled_at = self.sim.now
                self.stats["pacing_stalls"] += 1
            yield self.coordination.wait_progress()
        if stalled_at is not None:
            self.stats["pacing_stall_time"] += self.sim.now - stalled_at

    def _epoch_barrier(self):
        k = self.clock.epoch_index
        sample = EpochSample(self.replica_id,
                             self.sim.now - self._epoch_start_real,
                             self.sim.now)
        if self.coordination is None:
            samples = [sample]
        else:
            self.coordination.broadcast_epoch_sample(k, sample)
            while self.running and not self.coordination.epoch_ready(k):
                yield self.coordination.wait_epoch(k)
            if not self.running:
                return
            samples = self.coordination.epoch_samples(k)
        if self.on_epoch is not None:
            self.on_epoch(k, samples)
        self.clock.apply_epoch_resync(samples)
        self._epoch_start_real = self.sim.now

    def __repr__(self) -> str:
        return (f"<ReplicaVMM {self.vm_name} r{self.replica_id} "
                f"instr={self.instr}>")
