"""Inter-VMM coordination for one guest VM's replicas (Sec. V, VII-A).

Each replica's VMM owns one :class:`ReplicaCoordination` instance.  All
traffic rides a per-VM PGM multicast group among the replica hosts'
dom0 endpoints.  Message kinds:

- ``("proposal", seq, replica_id, virt)`` -- proposed virtual delivery
  time for inbound packet ``seq``; collected into a
  :class:`~repro.core.median.MedianAgreement`, whose decision is handed
  to the VMM.
- ``("progress", replica_id, boundary)`` -- pacing: the sender reached
  pacing boundary ``boundary``; the fastest replica stalls until enough
  siblings are close behind (this enforces the paper's "maximum allowed
  difference between the fastest two replicas' virtual times").
- ``("epoch", k, replica_id, duration, real_time)`` -- a Sec. IV-A
  epoch resynchronisation sample.
- ``("heartbeat", replica_id)`` -- failure-detection liveness beacon
  (only with ``config.failure_detection``).
- ``("rejoin", replica_id[, floor])`` -- a recovered replica announcing
  that it is live again and will participate in future agreements.  The
  optional ``floor`` is its ingress-sequence replay horizon: decisions at
  or above it may never reach the rejoiner (they were addressed to its
  old incarnation), so the lowest-id live sibling schedules a delayed
  catch-up push of its cached decisions from ``floor`` upward.  The
  delay (``config.rejoin_catchup_delay``) exceeds the NAK repair window,
  so the lossless ODATA/RDATA path wins whenever it can and the push is
  a deduplicated no-op; it matters only for gaps repair cannot close.

Failure detection and degraded operation
----------------------------------------

With ``config.failure_detection`` enabled, every replica multicasts a
heartbeat each ``heartbeat_interval`` and tracks when it last heard
*anything* from each sibling.  A sibling silent for longer than
``suspicion_timeout`` -- or whose PGM stream reports an unrepairable
loss -- is suspected dead, and the whole mediation pipeline degrades to
the live quorum instead of deadlocking:

- open median agreements :meth:`~repro.core.median.MedianAgreement.retarget`
  to the live replica count (2-of-3: the decision is the median of the
  survivors' proposals, mirroring the egress release-on-2nd-copy rule);
- pacing ignores the dead sibling's stale progress;
- epoch resynchronisation proceeds on the live samples;
- agreements that still cannot complete (e.g. the packet only the dead
  replica saw) are swept after ``stale_agreement_timeout`` so FIFO
  injection keeps moving.

Every decision is remembered in a bounded cache; a proposal arriving
for an already-decided packet (a recovered replica catching up) is
answered with a unicast ``("decided", seq, virt)`` so the latecomer
converges on the group's decision instead of stranding an agreement.
"""

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.core.median import MedianAgreement
from repro.core.virtual_time import EpochSample
from repro.net.packet import Packet
from repro.net.pgm import PgmReceiver, PgmSender

#: retained (seq -> decided virtual time) entries for late-proposal replies
DECISION_CACHE = 4096


class ReplicaCoordination:
    """One replica's view of its VM's coordination group."""

    def __init__(self, sim, vmm, host, sibling_addresses: Dict[int, str],
                 lead_boundaries: int,
                 sibling_start_seqs: Optional[Dict[int, int]] = None):
        self.sim = sim
        self.vmm = vmm
        self.host = host
        self.vm_name = vmm.vm_name
        self.replica_id = vmm.replica_id
        self.sibling_addresses = dict(sibling_addresses)
        self.expected = len(sibling_addresses) + 1
        self.lead_boundaries = max(1, lead_boundaries)

        group = f"coord.{self.vm_name}"
        members = [host.address] + list(sibling_addresses.values())
        self.sender = PgmSender(host.node, group, members)
        self.receiver = PgmReceiver(host.node, group)
        start_seqs = sibling_start_seqs or {}
        for rid, address in sibling_addresses.items():
            self.receiver.subscribe(
                address,
                lambda message, seq, r=rid: self._on_message(r, message),
                on_loss=lambda seq, r=rid: self._on_stream_loss(r, seq),
                start_seq=start_seqs.get(rid, 0))
        host.node.register_protocol(f"coord-decided.{self.vm_name}",
                                    self._on_decided)

        self._agreements: Dict[int, MedianAgreement] = {}
        self._packets: Dict[int, object] = {}
        self._agreement_born: Dict[int, float] = {}
        self._decisions: Dict[int, float] = {}
        self._decision_order: deque = deque()
        self.sibling_progress: Dict[int, int] = {
            rid: -1 for rid in sibling_addresses
        }
        self._progress_waiters: List = []
        self._epoch_samples: Dict[int, Dict[int, EpochSample]] = {}
        self._epoch_waiters: Dict[int, List] = {}
        self._epoch_floor = 0

        # failure detection state
        self.live: Dict[int, bool] = {rid: True for rid in sibling_addresses}
        self.last_heard: Dict[int, float] = {
            rid: sim.now for rid in sibling_addresses
        }
        self.stream_losses: Dict[int, int] = {
            rid: 0 for rid in sibling_addresses
        }
        self.on_suspect: Optional[Callable] = None   # fn(replica_id)
        self.on_rejoin: Optional[Callable] = None    # fn(replica_id)
        self.detection_enabled = bool(vmm.config.failure_detection)
        self._detection_running = False
        self._sweep_scheduled = False
        if self.detection_enabled:
            self._start_detection()

    # ------------------------------------------------------------------
    # group membership
    # ------------------------------------------------------------------
    @property
    def live_expected(self) -> int:
        """Replicas currently believed alive, including this one."""
        return 1 + sum(1 for ok in self.live.values() if ok)

    def is_live(self, replica_id: int) -> bool:
        return self.live.get(replica_id, False)

    def rewire_sibling(self, replica_id: int, new_address: str) -> None:
        """An evacuation moved ``replica_id`` to ``new_address``: swap the
        multicast membership and start a fresh receive stream (the new
        incarnation's sender counts from zero)."""
        old_address = self.sibling_addresses.get(replica_id)
        if old_address is None:
            raise ValueError(f"{self.vm_name} r{self.replica_id}: no "
                             f"sibling {replica_id}")
        if old_address == new_address:
            return
        self.sibling_addresses[replica_id] = new_address
        self.sender.replace_member(old_address, new_address)
        self.receiver.unsubscribe(old_address)
        self.receiver.subscribe(
            new_address,
            lambda message, seq, r=replica_id: self._on_message(r, message),
            on_loss=lambda seq, r=replica_id: self._on_stream_loss(r, seq))
        self.last_heard[replica_id] = self.sim.now

    # ------------------------------------------------------------------
    # proposals / median agreement
    # ------------------------------------------------------------------
    def local_proposal(self, seq: int, packet, proposed_virt: float) -> None:
        """This replica observed inbound packet ``seq``: buffer it, record
        our own proposal, and multicast it to the siblings."""
        decided = self._decisions.get(seq)
        if decided is not None:
            # the group already agreed while we were away: adopt it
            self.vmm.commit_network_delivery(seq, decided, packet)
            return
        self._packets[seq] = packet
        self.sender.multicast(("proposal", seq, self.replica_id,
                               proposed_virt))
        self._feed(seq, self.replica_id, proposed_virt)

    def _feed(self, seq: int, replica_id: int, proposed_virt: float) -> None:
        if seq in self._decisions:
            return  # late proposal for a decided packet; reply handled
        agreement = self._agreements.get(seq)
        if agreement is None:
            agreement = MedianAgreement(seq, expected=self.live_expected)
            self._agreements[seq] = agreement
            self._agreement_born[seq] = self.sim.now
            if self.detection_enabled:
                self._schedule_agreement_sweep()
        agreement.retarget(self.live_expected)
        if replica_id not in agreement.proposals and not agreement.decided:
            agreement.propose(replica_id, proposed_virt)
        if agreement.decided:
            self._commit(seq, agreement)

    def _commit(self, seq: int, agreement: MedianAgreement) -> None:
        packet = self._packets.pop(seq, None)
        self._agreements.pop(seq, None)
        self._agreement_born.pop(seq, None)
        decision = agreement.decision(self.vmm.config.aggregation)
        self._remember_decision(seq, decision)
        degraded = len(agreement.proposals) < self.expected
        if degraded:
            self.sim.trace.record(self.sim.now, "fault.degraded_agreement",
                                  vm=self.vm_name, replica=self.replica_id,
                                  seq=seq,
                                  proposals=len(agreement.proposals))
            self.sim.metrics.incr("fault.degraded_agreements")
        self.sim.flows.flow_annotate(self.vm_name, seq,
                                     proposals=len(agreement.proposals),
                                     spread=agreement.spread(),
                                     degraded=degraded)
        self.vmm.commit_network_delivery(seq, decision, packet)

    def _remember_decision(self, seq: int, decision: float) -> None:
        if seq not in self._decisions:
            self._decision_order.append(seq)
            if len(self._decision_order) > DECISION_CACHE:
                self._decisions.pop(self._decision_order.popleft(), None)
        self._decisions[seq] = decision

    def _send_decided(self, replica_id: int, seq: int) -> None:
        """Answer a late proposal with the authoritative decision."""
        address = self.sibling_addresses.get(replica_id)
        if address is None:
            return
        self.host.node.send_packet(Packet(
            src=self.host.address, dst=address,
            protocol=f"coord-decided.{self.vm_name}",
            payload=("decided", seq, self._decisions[seq]), size=32))

    def _on_decided(self, packet: Packet) -> None:
        _, seq, decision = packet.payload
        if seq in self._decisions:
            return
        agreement = self._agreements.pop(seq, None)
        self._agreement_born.pop(seq, None)
        buffered = self._packets.pop(seq, None)
        self._remember_decision(seq, decision)
        self.sim.trace.record(self.sim.now, "recovery.adopted_decision",
                              vm=self.vm_name, replica=self.replica_id,
                              seq=seq, had_packet=buffered is not None,
                              had_agreement=agreement is not None)
        self.sim.flows.flow_annotate(self.vm_name, seq, source="decided")
        self.vmm.commit_network_delivery(seq, decision, buffered)

    # ------------------------------------------------------------------
    # pacing
    # ------------------------------------------------------------------
    def report_progress(self, boundary: int) -> None:
        self.sender.multicast(("progress", self.replica_id, boundary))

    def can_proceed(self, boundary: int) -> bool:
        """True unless this replica is too far ahead of its live siblings.

        Requires at least ``floor(live/2)`` live siblings within
        ``lead_boundaries`` -- which keeps the median replica close to the
        fastest, bounding the spread Δn must absorb.  Dead siblings'
        stale progress is excluded, so a crash cannot stall the
        survivors' pacing forever.
        """
        need = self.live_expected // 2
        if need == 0:
            return True
        progress = self.sibling_progress
        progresses = sorted((progress[rid]
                             for rid, ok in self.live.items() if ok),
                            reverse=True)
        if not progresses:
            return True
        reference = progresses[min(need, len(progresses)) - 1]
        return boundary - reference <= self.lead_boundaries

    def wait_progress(self):
        """A waitable triggered by the next progress report received."""
        event = self.sim.event()
        self._progress_waiters.append(event)
        return event

    def _wake_progress_waiters(self) -> None:
        waiters = self._progress_waiters
        if not waiters:
            return
        self._progress_waiters = []
        for event in waiters:
            if not event.triggered:
                event.trigger()

    # ------------------------------------------------------------------
    # epoch resynchronisation
    # ------------------------------------------------------------------
    def broadcast_epoch_sample(self, k: int, sample: EpochSample) -> None:
        self.sender.multicast(("epoch", k, sample.replica_id,
                               sample.duration, sample.real_time))
        self._store_epoch(k, sample)

    def _store_epoch(self, k: int, sample: EpochSample) -> None:
        if k < self._epoch_floor:
            return  # stragglers for an epoch already resynchronised
        bucket = self._epoch_samples.setdefault(k, {})
        bucket[sample.replica_id] = sample
        if len(bucket) >= self.live_expected:
            for event in self._epoch_waiters.pop(k, []):
                if not event.triggered:
                    event.trigger()

    def epoch_ready(self, k: int) -> bool:
        if k < self._epoch_floor:
            return True
        return len(self._epoch_samples.get(k, {})) >= self.live_expected

    def epoch_samples(self, k: int) -> List[EpochSample]:
        self._epoch_floor = max(self._epoch_floor, k + 1)
        bucket = self._epoch_samples.pop(k, {})
        return [bucket[rid] for rid in sorted(bucket)]

    def wait_epoch(self, k: int):
        event = self.sim.event()
        self._epoch_waiters.setdefault(k, []).append(event)
        return event

    # ------------------------------------------------------------------
    # failure detection
    # ------------------------------------------------------------------
    def _start_detection(self) -> None:
        if self._detection_running:
            return
        self._detection_running = True
        config = self.vmm.config
        # both recurring timers ride the simulation-wide timer wheel: a
        # fleet's in-phase heartbeats share one kernel entry per cycle
        # instead of one per replica (same fire times as the old
        # call_after chains: heartbeat after one interval, the liveness
        # sweep after one suspicion window, both every interval after)
        wheel = self.sim.shared_wheel(config.heartbeat_interval)
        wheel.add(self._heartbeat)
        wheel.add(self._check_liveness, phase=config.suspicion_timeout)

    def _detection_alive(self) -> bool:
        if self.vmm.failed or not self.host.alive:
            self._detection_running = False
            return False
        return True

    def _heartbeat(self):
        if not self._detection_alive():
            return False   # unregister from the wheel
        self.sender.multicast(("heartbeat", self.replica_id), data_len=16)
        return None

    def _check_liveness(self):
        if not self._detection_alive():
            return False   # unregister from the wheel
        timeout = self.vmm.config.suspicion_timeout
        for rid in sorted(self.live):
            if self.live[rid] and \
                    self.sim.now - self.last_heard[rid] > timeout:
                self._suspect(rid, reason="timeout")
        return None

    def _on_stream_loss(self, replica_id: int, pgm_seq: int) -> None:
        """NAK repair of one of ``replica_id``'s datagrams failed for
        good: the message (e.g. a proposal) is unrecoverable.  Counted,
        traced, and fed to the suspicion path -- an unrepairable stream
        is the strongest failure evidence short of silence."""
        self.stream_losses[replica_id] += 1
        self.sim.metrics.incr("fault.pgm_losses")
        self.sim.trace.record(self.sim.now, "fault.pgm_loss",
                              vm=self.vm_name, observer=self.replica_id,
                              replica=replica_id, seq=pgm_seq)
        if self.detection_enabled and self.live.get(replica_id, False):
            self._suspect(replica_id, reason="pgm_loss")

    def _suspect(self, replica_id: int, reason: str) -> None:
        if not self.live.get(replica_id, False):
            return
        self.live[replica_id] = False
        self.sim.metrics.incr("fault.suspicions")
        self.sim.trace.record(self.sim.now, "fault.suspect",
                              vm=self.vm_name, observer=self.replica_id,
                              replica=replica_id, reason=reason)
        if self.on_suspect is not None:
            self.on_suspect(replica_id)
        self._reevaluate_view()

    def _mark_rejoined(self, replica_id: int,
                       floor: Optional[int] = None) -> None:
        if self.live.get(replica_id, True):
            return
        self.live[replica_id] = True
        self.last_heard[replica_id] = self.sim.now
        self.sim.metrics.incr("recovery.rejoins_seen")
        self.sim.trace.record(self.sim.now, "recovery.rejoin",
                              vm=self.vm_name, observer=self.replica_id,
                              replica=replica_id)
        if floor is not None and self._catchup_pusher(replica_id):
            self.sim.call_after(self.vmm.config.rejoin_catchup_delay,
                                self._push_decisions, replica_id, floor)
        if self.on_rejoin is not None:
            self.on_rejoin(replica_id)
        self._reevaluate_view()

    def _catchup_pusher(self, rejoiner: int) -> bool:
        """Exactly one live sibling owns the catch-up push: the lowest
        id among those each observer believes alive (including itself).
        Split views can elect two pushers; duplicates dedupe at the
        receiver, so that costs packets, not correctness."""
        live_ids = [self.replica_id] + [
            rid for rid, ok in self.live.items()
            if ok and rid != rejoiner]
        return self.replica_id == min(live_ids)

    def _push_decisions(self, replica_id: int, floor: int) -> None:
        """Backstop for a rejoined replica's unrepairable gaps: unicast
        every cached decision at or above its replay horizon.  Runs
        after the NAK repair window, so anything the lossless path
        already delivered is ignored by the receiver's decision cache."""
        if self.vmm.failed or not self.host.alive:
            return
        if not self.live.get(replica_id, False):
            return  # re-suspected before the push fired
        pending = sorted(seq for seq in self._decisions if seq >= floor)
        if not pending:
            return
        self.sim.metrics.incr("heal.catchup_pushes")
        self.sim.trace.record(self.sim.now, "heal.catchup",
                              vm=self.vm_name, observer=self.replica_id,
                              replica=replica_id, floor=floor,
                              count=len(pending))
        for seq in pending:
            self._send_decided(replica_id, seq)

    def announce_rejoin(self, floor: Optional[int] = None) -> None:
        """Called on a recovered replica once its state is rebuilt: tell
        the siblings, reset our own (stale) view, restart detection.
        ``floor`` is the replay horizon (first ingress seq this replica
        has not executed); advertising it lets a sibling push decisions
        the rejoiner can no longer receive first-hand."""
        for rid in self.live:
            self.live[rid] = True
            self.last_heard[rid] = self.sim.now
        if floor is None:
            self.sender.multicast(("rejoin", self.replica_id))
        else:
            self.sender.multicast(("rejoin", self.replica_id, floor))
        if self.detection_enabled:
            self._start_detection()

    def _reevaluate_view(self) -> None:
        """Group membership changed: retarget open agreements to the new
        live count, re-check epoch readiness, and wake pacing waiters so
        stalled engines recompute against the live set."""
        need = self.live_expected
        for seq in sorted(self._agreements):
            agreement = self._agreements.get(seq)
            if agreement is not None and agreement.retarget(need):
                self._commit(seq, agreement)
        for k in sorted(self._epoch_waiters):
            if len(self._epoch_samples.get(k, {})) >= need:
                for event in self._epoch_waiters.pop(k, []):
                    if not event.triggered:
                        event.trigger()
        self._wake_progress_waiters()

    # ------------------------------------------------------------------
    # stale-agreement sweeping
    # ------------------------------------------------------------------
    def _schedule_agreement_sweep(self) -> None:
        if self._sweep_scheduled:
            return
        self._sweep_scheduled = True
        self.sim.call_after(self.vmm.config.stale_agreement_timeout,
                            self._sweep_agreements)

    def _sweep_agreements(self) -> None:
        self._sweep_scheduled = False
        if self.vmm.failed:
            return
        cutoff = self.sim.now - self.vmm.config.stale_agreement_timeout
        stale = sorted(seq for seq, born in self._agreement_born.items()
                       if born <= cutoff)
        for seq in stale:
            self._agreements.pop(seq, None)
            self._agreement_born.pop(seq, None)
            packet = self._packets.pop(seq, None)
            self.sim.metrics.incr("fault.stale_agreements")
            self.sim.trace.record(self.sim.now, "fault.stale_agreement",
                                  vm=self.vm_name, replica=self.replica_id,
                                  seq=seq, had_packet=packet is not None)
            # keep FIFO injection moving: skip the slot (divergence is
            # traced by the VMM if the packet existed but went nowhere)
            decision = self.vmm.last_exit_virt \
                + self.vmm.config.delta_net
            self._remember_decision(seq, decision)
            self.sim.flows.flow_annotate(self.vm_name, seq, swept=True)
            self.vmm.commit_network_delivery(seq, decision, packet)
        if self._agreements:
            self._schedule_agreement_sweep()

    # ------------------------------------------------------------------
    # inbound dispatch
    # ------------------------------------------------------------------
    def _on_message(self, sender_id: int, message) -> None:
        self.last_heard[sender_id] = self.sim.now
        kind = message[0]
        if kind == "proposal":
            _, pkt_seq, replica_id, proposed_virt = message
            if pkt_seq in self._decisions:
                self._send_decided(sender_id, pkt_seq)
                return
            self._feed(pkt_seq, replica_id, proposed_virt)
        elif kind == "progress":
            _, replica_id, boundary = message
            if boundary > self.sibling_progress.get(replica_id, -1):
                self.sibling_progress[replica_id] = boundary
            self._wake_progress_waiters()
        elif kind == "epoch":
            _, k, replica_id, duration, real_time = message
            self._store_epoch(k, EpochSample(replica_id, duration,
                                             real_time))
        elif kind == "heartbeat":
            pass  # the last_heard update above is the whole point
        elif kind == "rejoin":
            replica_id = message[1]
            floor = message[2] if len(message) > 2 else None
            self._mark_rejoined(replica_id, floor)
        else:
            raise ValueError(f"unknown coordination message kind {kind!r}")
