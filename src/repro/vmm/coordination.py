"""Inter-VMM coordination for one guest VM's replicas (Sec. V, VII-A).

Each replica's VMM owns one :class:`ReplicaCoordination` instance.  All
traffic rides a per-VM PGM multicast group among the replica hosts'
dom0 endpoints.  Three message kinds:

- ``("proposal", seq, replica_id, virt)`` -- proposed virtual delivery
  time for inbound packet ``seq``; collected into a
  :class:`~repro.core.median.MedianAgreement`, whose decision is handed
  to the VMM.
- ``("progress", replica_id, boundary)`` -- pacing: the sender reached
  pacing boundary ``boundary``; the fastest replica stalls until enough
  siblings are close behind (this enforces the paper's "maximum allowed
  difference between the fastest two replicas' virtual times").
- ``("epoch", k, replica_id, duration, real_time)`` -- a Sec. IV-A
  epoch resynchronisation sample.
"""

from typing import Dict, List

from repro.core.median import MedianAgreement
from repro.core.virtual_time import EpochSample
from repro.net.pgm import PgmReceiver, PgmSender


class ReplicaCoordination:
    """One replica's view of its VM's coordination group."""

    def __init__(self, sim, vmm, host, sibling_addresses: Dict[int, str],
                 lead_boundaries: int):
        self.sim = sim
        self.vmm = vmm
        self.host = host
        self.vm_name = vmm.vm_name
        self.replica_id = vmm.replica_id
        self.expected = len(sibling_addresses) + 1
        self.lead_boundaries = max(1, lead_boundaries)

        group = f"coord.{self.vm_name}"
        members = [host.address] + list(sibling_addresses.values())
        self.sender = PgmSender(host.node, group, members)
        self.receiver = PgmReceiver(host.node, group)
        for address in sibling_addresses.values():
            self.receiver.subscribe(address, self._on_message)

        self._agreements: Dict[int, MedianAgreement] = {}
        self._packets: Dict[int, object] = {}
        self.sibling_progress: Dict[int, int] = {
            rid: -1 for rid in sibling_addresses
        }
        self._progress_waiters: List = []
        self._epoch_samples: Dict[int, Dict[int, EpochSample]] = {}
        self._epoch_waiters: Dict[int, List] = {}

    # ------------------------------------------------------------------
    # proposals / median agreement
    # ------------------------------------------------------------------
    def local_proposal(self, seq: int, packet, proposed_virt: float) -> None:
        """This replica observed inbound packet ``seq``: buffer it, record
        our own proposal, and multicast it to the siblings."""
        self._packets[seq] = packet
        self.sender.multicast(("proposal", seq, self.replica_id,
                               proposed_virt))
        self._feed(seq, self.replica_id, proposed_virt)

    def _feed(self, seq: int, replica_id: int, proposed_virt: float) -> None:
        agreement = self._agreements.get(seq)
        if agreement is None:
            agreement = MedianAgreement(seq, expected=self.expected)
            self._agreements[seq] = agreement
        agreement.propose(replica_id, proposed_virt)
        if agreement.decided:
            packet = self._packets.pop(seq)
            del self._agreements[seq]
            decision = agreement.decision(self.vmm.config.aggregation)
            self.vmm.commit_network_delivery(seq, decision, packet)

    # ------------------------------------------------------------------
    # pacing
    # ------------------------------------------------------------------
    def report_progress(self, boundary: int) -> None:
        self.sender.multicast(("progress", self.replica_id, boundary))

    def can_proceed(self, boundary: int) -> bool:
        """True unless this replica is too far ahead of its siblings.

        Requires at least ``floor(expected/2)`` siblings within
        ``lead_boundaries`` -- which keeps the median replica close to the
        fastest, bounding the spread Δn must absorb.
        """
        need = self.expected // 2
        if need == 0:
            return True
        progresses = sorted(self.sibling_progress.values(), reverse=True)
        reference = progresses[need - 1]
        return boundary - reference <= self.lead_boundaries

    def wait_progress(self):
        """A waitable triggered by the next progress report received."""
        event = self.sim.event()
        self._progress_waiters.append(event)
        return event

    # ------------------------------------------------------------------
    # epoch resynchronisation
    # ------------------------------------------------------------------
    def broadcast_epoch_sample(self, k: int, sample: EpochSample) -> None:
        self.sender.multicast(("epoch", k, sample.replica_id,
                               sample.duration, sample.real_time))
        self._store_epoch(k, sample)

    def _store_epoch(self, k: int, sample: EpochSample) -> None:
        bucket = self._epoch_samples.setdefault(k, {})
        bucket[sample.replica_id] = sample
        if len(bucket) == self.expected:
            for event in self._epoch_waiters.pop(k, []):
                if not event.triggered:
                    event.trigger()

    def epoch_ready(self, k: int) -> bool:
        return len(self._epoch_samples.get(k, {})) == self.expected

    def epoch_samples(self, k: int) -> List[EpochSample]:
        bucket = self._epoch_samples.pop(k, {})
        return [bucket[rid] for rid in sorted(bucket)]

    def wait_epoch(self, k: int):
        event = self.sim.event()
        self._epoch_waiters.setdefault(k, []).append(event)
        return event

    # ------------------------------------------------------------------
    # inbound dispatch
    # ------------------------------------------------------------------
    def _on_message(self, message, seq: int) -> None:
        kind = message[0]
        if kind == "proposal":
            _, pkt_seq, replica_id, proposed_virt = message
            self._feed(pkt_seq, replica_id, proposed_virt)
        elif kind == "progress":
            _, replica_id, boundary = message
            if boundary > self.sibling_progress.get(replica_id, -1):
                self.sibling_progress[replica_id] = boundary
            waiters, self._progress_waiters = self._progress_waiters, []
            for event in waiters:
                if not event.triggered:
                    event.trigger()
        elif kind == "epoch":
            _, k, replica_id, duration, real_time = message
            self._store_epoch(k, EpochSample(replica_id, duration,
                                             real_time))
        else:
            raise ValueError(f"unknown coordination message kind {kind!r}")
