"""Crash-safe file helpers shared by result writers.

Campaign workers and the benchmark harness write artifacts that other
processes (a resumed campaign, the aggregation pass, a human) read
back; a truncated file from an interrupted run must be impossible.
Everything here goes through the same discipline: write to a temp file
in the destination directory, fsync, then ``os.replace`` — atomic on
POSIX, so readers see either the old complete content or the new one.
"""

import contextlib
import json
import os
import tempfile
from typing import Any, Iterable, Iterator, TextIO


class AtomicWriter:
    """A text handle whose content only appears at ``path`` on commit.

    Writes go to a temp file in the destination directory;
    :meth:`commit` fsyncs and ``os.replace``s it over ``path``,
    :meth:`discard` deletes it.  A process that dies mid-write leaves
    the destination untouched (only a ``.tmp`` straggler).  Long-lived
    writers (:class:`~repro.sim.monitor.JsonlSink`) hold one of these
    across a whole run; one-shot writers use :func:`atomic_writer` /
    :func:`atomic_write_text`.
    """

    def __init__(self, path: str, encoding: str = "utf-8"):
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, self._tmp = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path) + ".",
            suffix=".tmp")
        self.handle: TextIO = os.fdopen(fd, "w", encoding=encoding)

    @property
    def closed(self) -> bool:
        return self.handle.closed

    def write(self, text: str) -> int:
        return self.handle.write(text)

    def commit(self) -> str:
        """Publish the written content at ``path`` (idempotent)."""
        if not self.handle.closed:
            self.handle.flush()
            os.fsync(self.handle.fileno())
            self.handle.close()
            os.replace(self._tmp, self.path)
        return self.path

    def discard(self) -> None:
        """Drop the temp file; ``path`` is left as it was."""
        if not self.handle.closed:
            self.handle.close()
            try:
                os.unlink(self._tmp)
            except OSError:
                pass


@contextlib.contextmanager
def atomic_writer(path: str, encoding: str = "utf-8") -> Iterator[TextIO]:
    """Context manager: yields a text handle; commits atomically on
    clean exit, discards (destination untouched) on exception."""
    writer = AtomicWriter(path, encoding=encoding)
    try:
        yield writer.handle
    except BaseException:
        writer.discard()
        raise
    writer.commit()


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> str:
    """Atomically replace ``path`` with ``text``; returns ``path``."""
    with atomic_writer(path, encoding=encoding) as handle:
        handle.write(text)
    return os.fspath(path)


def atomic_write_json(path: str, obj: Any, **dumps_kwargs: Any) -> str:
    """Atomically write ``obj`` as JSON (tuples become lists, unknown
    objects their ``repr``)."""
    dumps_kwargs.setdefault("default", repr)
    dumps_kwargs.setdefault("sort_keys", True)
    return atomic_write_text(path, json.dumps(obj, **dumps_kwargs) + "\n")


def append_jsonl(path: str, obj: Any) -> None:
    """Append one JSON line to ``path`` (single write, newline-framed,
    so concurrent appenders from different processes never interleave
    mid-record on POSIX)."""
    line = json.dumps(obj, default=repr, sort_keys=True,
                      separators=(",", ":")) + "\n"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)


def read_jsonl(path: str) -> Iterable[dict]:
    """Yield parsed objects from a JSONL file, skipping blank lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
