"""Crash-safe file helpers shared by result writers.

Campaign workers and the benchmark harness write artifacts that other
processes (a resumed campaign, the aggregation pass, a human) read
back; a truncated file from an interrupted run must be impossible.
Everything here goes through the same discipline: write to a temp file
in the destination directory, fsync, then ``os.replace`` — atomic on
POSIX, so readers see either the old complete content or the new one.
"""

import json
import os
import tempfile
from typing import Any, Iterable


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> str:
    """Atomically replace ``path`` with ``text``; returns ``path``."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: str, obj: Any, **dumps_kwargs: Any) -> str:
    """Atomically write ``obj`` as JSON (tuples become lists, unknown
    objects their ``repr``)."""
    dumps_kwargs.setdefault("default", repr)
    dumps_kwargs.setdefault("sort_keys", True)
    return atomic_write_text(path, json.dumps(obj, **dumps_kwargs) + "\n")


def append_jsonl(path: str, obj: Any) -> None:
    """Append one JSON line to ``path`` (single write, newline-framed,
    so concurrent appenders from different processes never interleave
    mid-record on POSIX)."""
    line = json.dumps(obj, default=repr, sort_keys=True,
                      separators=(",", ":")) + "\n"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)


def read_jsonl(path: str) -> Iterable[dict]:
    """Yield parsed objects from a JSONL file, skipping blank lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
