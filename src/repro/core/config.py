"""All StopWatch tunables in one dataclass.

Defaults are calibrated to the paper's testbed description (Sec. VII):

- Guests are uniprocessor with a 250 Hz PIT clock source.
- Δn translates to ~7-12 ms of real time under diverse workloads;
- Δd translates to ~8-15 ms (rotating disk);
- VM exits caused by guest execution happen frequently enough that
  interrupt delivery quantisation is well under Δn/Δd.

The simulated guest executes ``base_branch_rate`` branches per real second
nominally; ``initial_slope`` makes one virtual second correspond to
``1 / initial_slope`` branches, so with the defaults virtual time advances
at roughly wall-clock rate on an unloaded host.
"""

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.errors import ConfigError


@dataclass
class StopWatchConfig:
    """Configuration for a StopWatch deployment (or a baseline one)."""

    # -- replication -----------------------------------------------------
    #: number of replicas per guest VM (the paper uses 3; Sec. IX discusses 5)
    replicas: int = 3
    #: False turns off all timing mediation -> "unmodified Xen" baseline
    mediate: bool = True
    #: timing aggregation across replica proposals; "median" is
    #: StopWatch, the others exist for the ablation study (Sec. II
    #: discusses why e.g. "leader" is unsafe)
    aggregation: str = "median"

    # -- virtual time (Sec. IV) -------------------------------------------
    #: nominal guest execution speed, branches per real second
    base_branch_rate: float = 100e6
    #: virtual seconds per branch (Eqn. 1 slope at boot)
    initial_slope: float = 1e-8
    #: clamp range [l, u] for the epoch resynchronisation slope
    slope_range: Tuple[float, float] = (0.5e-8, 2e-8)
    #: instructions per resynchronisation epoch; None disables resync
    epoch_instructions: Optional[int] = None

    # -- VM exits ----------------------------------------------------------
    #: branches between guest-execution-caused VM exits (injection points)
    exit_interval_branches: int = 100_000

    # -- I/O mediation offsets, in *virtual* seconds (Sec. V) ---------------
    #: Δn -- added to last-exit virtual time to form a network proposal
    delta_net: float = 0.010
    #: Δd -- added to request virtual time for disk/DMA interrupt delivery.
    #: Must exceed the worst-case disk access time (paper: 8-15 ms for
    #: their rotating disks); 12 ms covers the default DiskModel's
    #: maximum seek + a 64-block transfer with margin.
    delta_disk: float = 0.012

    # -- replica pacing (Sec. V-A / VII-A) ----------------------------------
    #: branches between pacing barrier exchanges among replica VMMs
    pacing_interval_branches: int = 400_000
    #: maximum virtual-time lead the fastest replica may build up
    max_lead_virtual: float = 0.004

    # -- guest timer (Sec. IV-B) ---------------------------------------------
    #: PIT frequency presented to the guest, interrupts per virtual second
    pit_hz: float = 250.0
    #: deliver PIT timer interrupts at all (guests in the paper use PIT)
    timer_interrupts: bool = True

    # -- external observer defense (Sec. VI) ----------------------------------
    #: route guest output through the egress node (release on 2nd copy)
    egress_enabled: bool = True

    # -- divergence handling (Sec. V-A footnote 4) ------------------------------
    #: recover a replica whose median delivery time had already passed
    recover_on_divergence: bool = True

    # -- fault tolerance (Sec. II / V availability story) -----------------------
    #: heartbeat-based replica failure detection.  Off by default: the
    #: base protocol (and the paper's prototype) simply stalls when a
    #: replica dies, which several experiments assert; chaos/recovery
    #: runs enable it (see the RESILIENT preset).
    failure_detection: bool = False
    #: real seconds between coordination heartbeats
    heartbeat_interval: float = 0.02
    #: real seconds of silence after which a sibling replica is suspected
    #: dead and the mediation pipeline degrades to the live quorum
    suspicion_timeout: float = 0.12
    #: real seconds before an undecided median agreement (e.g. for a
    #: packet a dead replica never proposed on) is swept and dropped
    stale_agreement_timeout: float = 1.0
    #: real seconds before an egress release entry that never completed
    #: its quorum is swept (the crashed-replica release leak)
    egress_stale_timeout: float = 2.0

    # -- self-healing (repro.faults.heal) ---------------------------------------
    #: real seconds between a host's permanent (condemned) failure and the
    #: evacuation of its replicas onto spare capacity
    evacuation_grace: float = 0.25
    #: real seconds a replica suspicion must persist before the healer
    #: acts on it (long enough for a scheduled restart to win the race)
    suspect_confirm: float = 0.8
    #: real seconds between a rejoin announcement and the survivors'
    #: catch-up push of cached decisions; must exceed the PGM NAK repair
    #: window so the lossless retransmission path wins whenever it can
    rejoin_catchup_delay: float = 0.08
    #: real seconds between healer attempts when one fails (e.g. no live
    #: survivor to replay from yet)
    heal_retry_interval: float = 0.5
    #: healer attempts per replica before giving up (`heal.failed`)
    heal_max_attempts: int = 6

    # -- dom0 device-model costs (real seconds per event) -----------------------
    #: dom0 CPU time to observe/process one inbound packet
    dom0_packet_cost: float = 40e-6
    #: dom0 CPU time to emit one outbound packet
    dom0_output_cost: float = 30e-6
    #: dom0 CPU time to set up one disk/DMA request
    dom0_disk_cost: float = 80e-6

    # -- inter-VMM / ingress network ------------------------------------------
    #: one-way latency (s) of the cloud-internal network used for proposal
    #: multicast, ingress replication and egress tunnelling
    internal_latency: float = 0.0002
    #: jitter fraction applied to internal latency
    internal_jitter: float = 0.3

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {self.replicas}")
        if self.mediate and self.replicas % 2 == 0:
            raise ConfigError("mediated operation needs an odd replica count "
                              f"for a true median, got {self.replicas}")
        if self.base_branch_rate <= 0:
            raise ConfigError("base_branch_rate must be positive")
        if self.initial_slope <= 0:
            raise ConfigError("initial_slope must be positive")
        low, high = self.slope_range
        if low <= 0 or low > high:
            raise ConfigError(f"bad slope_range [{low}, {high}]")
        if self.exit_interval_branches <= 0:
            raise ConfigError("exit_interval_branches must be positive")
        if self.delta_net < 0 or self.delta_disk < 0:
            raise ConfigError("delta offsets must be non-negative")
        if self.pit_hz <= 0:
            raise ConfigError("pit_hz must be positive")
        if self.max_lead_virtual <= 0:
            raise ConfigError("max_lead_virtual must be positive")
        if self.epoch_instructions is not None and self.epoch_instructions <= 0:
            raise ConfigError("epoch_instructions must be positive or None")
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be positive")
        if self.suspicion_timeout <= self.heartbeat_interval:
            raise ConfigError("suspicion_timeout must exceed "
                              "heartbeat_interval")
        if self.stale_agreement_timeout <= 0:
            raise ConfigError("stale_agreement_timeout must be positive")
        if self.egress_stale_timeout <= 0:
            raise ConfigError("egress_stale_timeout must be positive")
        if self.evacuation_grace <= 0:
            raise ConfigError("evacuation_grace must be positive")
        if self.suspect_confirm <= 0:
            raise ConfigError("suspect_confirm must be positive")
        if self.rejoin_catchup_delay <= 0:
            raise ConfigError("rejoin_catchup_delay must be positive")
        if self.heal_retry_interval <= 0:
            raise ConfigError("heal_retry_interval must be positive")
        if self.heal_max_attempts < 1:
            raise ConfigError("heal_max_attempts must be >= 1")
        from repro.core.median import AGGREGATIONS
        if self.aggregation not in AGGREGATIONS:
            raise ConfigError(f"unknown aggregation {self.aggregation!r}; "
                              f"choose one of {AGGREGATIONS}")

    # -- derived quantities ---------------------------------------------------
    @property
    def exit_interval_virtual(self) -> float:
        """Virtual seconds between guest-execution VM exits at boot slope."""
        return self.exit_interval_branches * self.initial_slope

    @property
    def pit_period_virtual(self) -> float:
        """Virtual seconds between PIT timer interrupts."""
        return 1.0 / self.pit_hz

    def with_overrides(self, **kwargs) -> "StopWatchConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


#: The paper's evaluated configuration: three replicas, full mediation.
DEFAULT = StopWatchConfig()

#: "Unmodified Xen": one replica, no mediation, no egress indirection.
PASSTHROUGH = StopWatchConfig(replicas=1, mediate=False, egress_enabled=False)

#: The fault-tolerant deployment: full mediation plus heartbeat failure
#: detection, degraded live-quorum agreement and stale-state sweeping.
RESILIENT = StopWatchConfig(failure_detection=True)
