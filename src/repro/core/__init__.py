"""StopWatch core: virtual time, median timing aggregation, configuration.

These are the paper's primary contribution in distilled form:

- :class:`VirtualClock` -- Popek/Kline-style virtual time that is a
  deterministic function of the guest's executed instruction (branch)
  count: ``virt(instr) = slope * instr + start`` (Eqn. 1), with the
  optional epoch-based resynchronisation rule from Sec. IV-A.
- :func:`median_of_three` / :class:`MedianAgreement` -- the
  microaggregation primitive applied to I/O event timings (Sec. III, V)
  and to output-packet release (Sec. VI).
- :class:`StopWatchConfig` -- every tunable in one place (Δn, Δd, slope
  clamp range, epoch length, replica count, pacing bound).
"""

from repro.core.config import StopWatchConfig, PASSTHROUGH, DEFAULT, RESILIENT
from repro.core.errors import ConfigError, DivergenceError, ProtocolError
from repro.core.median import (
    AGGREGATIONS,
    aggregate,
    median,
    median_of_three,
    kth_smallest,
    MedianAgreement,
    QuorumRelease,
)
from repro.core.virtual_time import VirtualClock, EpochSample, resync_slope

__all__ = [
    "StopWatchConfig",
    "PASSTHROUGH",
    "DEFAULT",
    "RESILIENT",
    "VirtualClock",
    "EpochSample",
    "resync_slope",
    "AGGREGATIONS",
    "aggregate",
    "median",
    "median_of_three",
    "kth_smallest",
    "MedianAgreement",
    "QuorumRelease",
    "ConfigError",
    "DivergenceError",
    "ProtocolError",
]
