"""Virtual time (Sec. IV-A of the paper).

A guest VM under StopWatch never sees real time.  Instead it sees::

    virt(instr) = slope * instr + start                       (Eqn. 1)

where ``instr`` is the count of branches the guest has executed.  ``start``
is initialised to the median of the replica hosts' real clocks at boot;
``slope`` to a constant determined by the machines' tick rate.

Optionally, after each *epoch* of ``I`` instructions the VMMs exchange
``(D_k, R_k)`` -- the real duration of the epoch and the real time at its
end -- select the median real time ``R*_k`` together with the duration
``D*_k`` from that same machine, and reset::

    start_{k+1} = virt_k(I)
    slope_{k+1} = clamp((R*_k - virt_k(I) + D*_k) / I, [l, u])

so that virtual time coarsely tracks the median machine's real time.
"""

from typing import List, NamedTuple, Optional, Tuple

from repro.core.errors import ConfigError
from repro.core.median import median


class EpochSample(NamedTuple):
    """One replica's contribution to an epoch resynchronisation exchange.

    ``duration`` is D_k (real seconds the replica spent executing the
    epoch's I instructions); ``real_time`` is R_k (the replica host's real
    clock at the end of the epoch).
    """

    replica_id: int
    duration: float
    real_time: float


def resync_slope(samples: List[EpochSample], virt_at_epoch_end: float,
                 epoch_instructions: int,
                 slope_range: Tuple[float, float]) -> float:
    """Compute ``slope_{k+1}`` from the replicas' epoch samples.

    Selects the median ``R*_k`` over the samples' real times, takes the
    duration ``D*_k`` reported by that same machine, and returns::

        clamp((R*_k - virt_k(I) + D*_k) / I, slope_range)
    """
    if not samples:
        raise ConfigError("epoch resync requires at least one sample")
    lower, upper = slope_range
    if lower > upper:
        raise ConfigError(f"empty slope range [{lower}, {upper}]")
    ordered = sorted(samples, key=lambda s: s.real_time)
    median_sample = ordered[(len(ordered) - 1) // 2] if len(ordered) % 2 == 1 \
        else ordered[len(ordered) // 2 - 1]
    # For odd replica counts (the normal case, m = 3) this is the true
    # median; for even counts we take the lower-middle deterministically.
    raw = (median_sample.real_time - virt_at_epoch_end
           + median_sample.duration) / epoch_instructions
    return min(max(raw, lower), upper)


class VirtualClock:
    """Piecewise-linear virtual time as a function of the branch count.

    The clock is **pure**: given the same sequence of
    :meth:`apply_epoch_resync` calls with the same arguments, two replicas'
    clocks return bit-identical values for every instruction count -- this
    is what makes guest-visible time deterministic across replicas.
    """

    def __init__(self, start: float, slope: float,
                 slope_range: Optional[Tuple[float, float]] = None,
                 epoch_instructions: Optional[int] = None):
        if slope <= 0:
            raise ConfigError(f"slope must be positive, got {slope}")
        if epoch_instructions is not None and epoch_instructions <= 0:
            raise ConfigError(
                f"epoch_instructions must be positive, got {epoch_instructions}"
            )
        if slope_range is not None:
            low, high = slope_range
            if low <= 0 or low > high:
                raise ConfigError(f"bad slope range [{low}, {high}]")
        self.start = start
        self.slope = slope
        self.slope_range = slope_range
        self.epoch_instructions = epoch_instructions
        #: instruction count at the start of the current linear segment
        self.segment_base_instr = 0
        self.epoch_index = 0

    @classmethod
    def from_host_clocks(cls, host_real_times: List[float], slope: float,
                         **kwargs) -> "VirtualClock":
        """Boot-time initialisation: ``start`` = median of the replica
        hosts' current real times (Sec. IV-A)."""
        return cls(start=median(host_real_times), slope=slope, **kwargs)

    def time_at(self, instr: int) -> float:
        """``virt(instr)`` for an instruction count in the current segment."""
        if instr < self.segment_base_instr:
            raise ConfigError(
                f"instruction count {instr} precedes current segment base "
                f"{self.segment_base_instr}"
            )
        return self.start + self.slope * (instr - self.segment_base_instr)

    def instr_at(self, virt: float) -> int:
        """Inverse map: the smallest instruction count whose virtual time
        is >= ``virt`` (used to convert delivery deadlines into instruction
        targets).  Clamps to the current segment base."""
        if virt <= self.start:
            return self.segment_base_instr
        raw = (virt - self.start) / self.slope
        instr = self.segment_base_instr + int(raw)
        if self.time_at(instr) < virt:
            instr += 1
        return instr

    def next_epoch_boundary(self) -> Optional[int]:
        """Instruction count at which the next epoch ends (None if epoch
        resynchronisation is disabled)."""
        if self.epoch_instructions is None:
            return None
        return (self.epoch_index + 1) * self.epoch_instructions

    def apply_epoch_resync(self, samples: List[EpochSample]) -> None:
        """Apply the Sec. IV-A resynchronisation at the epoch boundary.

        Must be called exactly when the guest reaches the boundary
        instruction count returned by :meth:`next_epoch_boundary`.
        """
        if self.epoch_instructions is None or self.slope_range is None:
            raise ConfigError("epoch resync requires epoch_instructions and "
                              "slope_range to be configured")
        boundary = self.next_epoch_boundary()
        virt_end = self.time_at(boundary)
        new_slope = resync_slope(samples, virt_end, self.epoch_instructions,
                                 self.slope_range)
        self.start = virt_end
        self.slope = new_slope
        self.segment_base_instr = boundary
        self.epoch_index += 1

    def __repr__(self) -> str:
        return (f"<VirtualClock start={self.start:.6f} slope={self.slope:.3e} "
                f"epoch={self.epoch_index}>")
