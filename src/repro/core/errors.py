"""Errors raised by the StopWatch core layer."""


class ConfigError(ValueError):
    """An invalid StopWatch configuration value."""


class DivergenceError(RuntimeError):
    """A replica's state diverged from its siblings.

    In the paper this corresponds to a violated synchrony assumption (the
    chosen median delivery time had already passed at some replica); the
    replica must be recovered by copying a sibling's state (Sec. V-A,
    footnote 4).
    """


class ProtocolError(RuntimeError):
    """A violation of the replica-coordination protocol (e.g. a duplicate
    proposal for the same event from the same replica)."""
