"""Median timing aggregation (Sec. III, V, VI).

The crux of StopWatch: the timing of every externally-influenced event is
the **median** of the timings proposed by (or observed at) the three
replicas.  Because at most one replica coresides with any given victim,
the median is either a timing from a victim-free replica or lies between
two victim-free timings -- the victim's influence is "microaggregated"
away.

:class:`MedianAgreement` implements the proposal-collection half of the
protocol (used by the VMMs for network-interrupt delivery times);
:class:`QuorumRelease` implements the egress node's release-on-second-copy
rule, which realises the median of output timings without clock access.
"""

from typing import Dict, List, Optional

from repro.core.errors import ProtocolError


def median(values: List[float]) -> float:
    """Median of a non-empty list.

    For odd lengths this is the middle order statistic.  For even lengths
    we return the *lower* middle element rather than an average: StopWatch
    medians must always be a timing that some replica actually proposed.
    """
    if not values:
        raise ProtocolError("median of empty list")
    ordered = sorted(values)
    mid = (len(ordered) - 1) // 2
    return ordered[mid]


def median_of_three(a: float, b: float, c: float) -> float:
    """Branch-free median of exactly three values."""
    return max(min(a, b), min(max(a, b), c))


#: timing aggregation functions available for the ablation study.
#: "median" is StopWatch; "leader" (first replica dictates) is the
#: Sec. II strawman that simply copies a coresident replica's leakage;
#: "min"/"max"/"mean" are the other natural choices.
AGGREGATIONS = ("median", "mean", "min", "max", "leader")


def aggregate(proposals: Dict[int, float], how: str = "median") -> float:
    """Combine per-replica timing proposals into one decision."""
    if not proposals:
        raise ProtocolError("aggregate of zero proposals")
    values = list(proposals.values())
    if how == "median":
        return median(values)
    if how == "mean":
        return sum(values) / len(values)
    if how == "min":
        return min(values)
    if how == "max":
        return max(values)
    if how == "leader":
        leader = min(proposals)
        return proposals[leader]
    raise ProtocolError(f"unknown aggregation {how!r}")


def kth_smallest(values: List[float], k: int) -> float:
    """1-indexed k-th order statistic (k=2, m=3 is the StopWatch median)."""
    if not 1 <= k <= len(values):
        raise ProtocolError(f"order statistic {k} out of range for "
                            f"{len(values)} values")
    return sorted(values)[k - 1]


class MedianAgreement:
    """Collects per-replica timing proposals for one event.

    A VMM creates one instance per inbound network packet (keyed by the
    packet's ingress sequence number); each replica's proposal arrives via
    :meth:`propose`; once ``expected`` proposals are in, :meth:`decided`
    flips and :meth:`decision` returns the median proposal.
    """

    def __init__(self, event_key, expected: int = 3):
        if expected < 1:
            raise ProtocolError(f"expected replica count must be >= 1, "
                                f"got {expected}")
        self.event_key = event_key
        self.expected = expected
        self.proposals: Dict[int, float] = {}

    def propose(self, replica_id: int, proposed_time: float) -> None:
        if replica_id in self.proposals:
            raise ProtocolError(
                f"duplicate proposal from replica {replica_id} for event "
                f"{self.event_key!r}"
            )
        if len(self.proposals) >= self.expected:
            raise ProtocolError(
                f"proposal from replica {replica_id} after agreement for "
                f"event {self.event_key!r} was complete"
            )
        self.proposals[replica_id] = proposed_time

    @property
    def decided(self) -> bool:
        return len(self.proposals) >= self.expected

    def spread(self) -> float:
        """Max - min of the proposals collected so far (0.0 when fewer
        than two): how far the replicas' virtual times had diverged when
        they saw this event -- the quantity Δn must absorb."""
        if len(self.proposals) < 2:
            return 0.0
        values = self.proposals.values()
        return max(values) - min(values)

    def retarget(self, expected: int) -> bool:
        """Change the number of proposals this agreement waits for (the
        degraded live-quorum path: a replica died, or one rejoined).

        Never drops below the proposals already collected, so a decision
        is always over real proposals.  Returns :attr:`decided` so the
        caller can commit immediately when the shrink completes the
        agreement.
        """
        if expected < 1:
            raise ProtocolError(f"expected replica count must be >= 1, "
                                f"got {expected}")
        self.expected = max(expected, len(self.proposals))
        return self.decided

    def decision(self, how: str = "median") -> float:
        if not self.decided:
            raise ProtocolError(
                f"decision requested for {self.event_key!r} with only "
                f"{len(self.proposals)}/{self.expected} proposals"
            )
        return aggregate(self.proposals, how)

    def __repr__(self) -> str:
        return (f"<MedianAgreement {self.event_key!r} "
                f"{len(self.proposals)}/{self.expected}>")


class QuorumRelease:
    """Egress release rule (Sec. VI): release on the q-th copy.

    With ``expected`` replicas and ``quorum`` = (expected+1)//2 + ... --
    concretely, for three replicas the egress forwards an output packet
    when its **second** copy arrives; the second arrival time is exactly
    the median of the three replicas' emission times.
    """

    def __init__(self, event_key, expected: int = 3,
                 quorum: Optional[int] = None):
        if expected < 1:
            raise ProtocolError("expected must be >= 1")
        self.event_key = event_key
        self.expected = expected
        # The (expected+1)//2-th arrival is the median-order arrival for
        # odd replica counts: 2nd of 3, 3rd of 5.
        self.quorum = quorum if quorum is not None else (expected + 1) // 2
        if not 1 <= self.quorum <= self.expected:
            raise ProtocolError(f"quorum {self.quorum} out of range")
        #: the release-order rule for the full replica set; retargets to
        #: a degraded live count never raise the quorum above this
        self.base_quorum = self.quorum
        self.arrivals: Dict[int, float] = {}
        self.released_at: Optional[float] = None

    def arrive(self, replica_id: int, time: float) -> bool:
        """Record one replica's copy; return True exactly once, when this
        arrival completes the quorum (i.e. the packet should be forwarded
        now)."""
        if replica_id in self.arrivals:
            raise ProtocolError(
                f"duplicate copy from replica {replica_id} for event "
                f"{self.event_key!r}"
            )
        self.arrivals[replica_id] = time
        if self.released_at is None and len(self.arrivals) >= self.quorum:
            self.released_at = time
            return True
        return False

    def retarget(self, expected: int, time: float) -> bool:
        """Degrade (or restore) the copy count this release waits for.

        The quorum keeps the release-on-median-order rule but is capped
        at the live copy count so a crashed replica cannot wedge the
        release forever: with 3 expected and one dead, the 2nd copy --
        the median-order arrival among the survivors -- still gates the
        release.  Returns True exactly once, if the retarget itself
        completes the quorum (the caller should forward now, stamping
        ``time`` as the release time).
        """
        if expected < 1:
            raise ProtocolError("expected must be >= 1")
        self.expected = expected
        self.quorum = min(self.base_quorum, expected)
        if self.released_at is None and len(self.arrivals) >= self.quorum:
            self.released_at = time
            return True
        return False

    @property
    def complete(self) -> bool:
        return len(self.arrivals) >= self.expected

    def __repr__(self) -> str:
        return (f"<QuorumRelease {self.event_key!r} "
                f"{len(self.arrivals)}/{self.expected} q={self.quorum}>")
