"""Declarative campaign specifications.

A campaign is a set of *cells*: (runner, params, seed) triples expanded
from one or more sweeps over the `repro.analysis.experiments` runners.
Specs load from TOML or JSON files or are built in Python::

    name = "fig5-sweep"
    timeout = 120.0
    retries = 1
    seeds = { base = 1, count = 8 }     # or seeds = [1, 2, 3]

    [[sweep]]
    runner = "fig5_file_download"
    params = { trials = 1 }
    [sweep.grid]
    sizes = [[1000, 10000], [100000]]   # cartesian over grid keys

Grid values are *lists of candidate values*; the expansion is the
cartesian product over the grid keys (sorted, so expansion order is
deterministic).  Explicit ``cells`` entries are appended after the grid.
Seed sweeps use :func:`repro.sim.rng.derive_root_seed`, so neighbouring
sweep indices get independent seed universes rather than ``base + i``.
Runners whose signature has no ``seed`` parameter expand to a single
unseeded cell per param point.
"""

import importlib
import inspect
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sim.rng import derive_root_seed


class CampaignError(ValueError):
    """A malformed spec, unknown runner, or bad CLI input."""


def resolve_runner(name: str) -> Callable:
    """Look up a runner by registry name, or by ``module:function`` path
    (the escape hatch used by tests and custom drivers)."""
    if ":" in name:
        module_name, _, attr = name.partition(":")
        try:
            module = importlib.import_module(module_name)
            return getattr(module, attr)
        except (ImportError, AttributeError) as exc:
            raise CampaignError(f"cannot import runner {name!r}: {exc}") \
                from exc
    from repro.analysis.experiments import RUNNERS
    try:
        return RUNNERS[name]
    except KeyError:
        raise CampaignError(
            f"unknown runner {name!r}; choose one of "
            f"{sorted(RUNNERS)} or use a module:function path") from None


def canonical_params(params: Dict[str, Any]) -> str:
    """Key-sorted compact JSON of a params dict -- the canonical form
    hashed into cache keys, so ``{a: 1, b: 2}`` and ``{b: 2, a: 1}``
    address the same cached result.  Non-JSON values (e.g. config
    objects passed from Python) canonicalise via ``repr``."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"),
                      default=repr)


def _runner_accepts(fn: Callable, name: str) -> bool:
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return True      # builtins/C callables: assume permissive
    if any(p.kind is inspect.Parameter.VAR_KEYWORD
           for p in signature.parameters.values()):
        return True
    return name in signature.parameters


@dataclass
class TaskCell:
    """One schedulable unit: a runner call with fixed params and seed."""

    runner: str
    params: Dict[str, Any]
    seed: Optional[int] = None
    seed_param: str = "seed"

    def call_kwargs(self) -> Dict[str, Any]:
        kwargs = dict(self.params)
        if self.seed is not None:
            kwargs[self.seed_param] = self.seed
        return kwargs

    @property
    def params_key(self) -> str:
        return canonical_params(self.params)

    def label(self) -> str:
        """Compact human-readable cell name for progress lines."""
        parts = [f"{k}={json.dumps(v, default=repr)}"
                 for k, v in sorted(self.params.items())]
        seed = "" if self.seed is None else f" seed={self.seed}"
        return f"{self.runner}({', '.join(parts)}){seed}"

    def to_dict(self) -> Dict[str, Any]:
        return {"runner": self.runner, "params": self.params,
                "seed": self.seed}


def _resolve_seeds(raw: Any) -> Optional[List[int]]:
    """Accept ``[1, 2, 3]`` or ``{"base": b, "count": n}`` (derived)."""
    if raw is None:
        return None
    if isinstance(raw, dict):
        try:
            base, count = int(raw["base"]), int(raw["count"])
        except KeyError as exc:
            raise CampaignError(
                f"seed spec needs 'base' and 'count', got {raw!r}") from exc
        if count <= 0:
            raise CampaignError(f"seed count must be positive, got {count}")
        return [derive_root_seed(base, i) for i in range(count)]
    if isinstance(raw, Sequence) and not isinstance(raw, (str, bytes)):
        seeds = [int(s) for s in raw]
        if not seeds:
            raise CampaignError("explicit seed list must be non-empty")
        return seeds
    raise CampaignError(f"bad seeds spec {raw!r}: want a list of ints or "
                        f"{{base, count}}")


@dataclass
class SweepSpec:
    """One runner swept over a param grid and/or explicit cells."""

    runner: str
    params: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    cells: List[Dict[str, Any]] = field(default_factory=list)
    seeds: Optional[List[int]] = None    # falls back to the campaign's

    def __post_init__(self) -> None:
        fn = resolve_runner(self.runner)
        if isinstance(self.seeds, dict):
            self.seeds = _resolve_seeds(self.seeds)
        for key, values in self.grid.items():
            if not isinstance(values, list):
                raise CampaignError(
                    f"grid values must be lists of candidates; "
                    f"{self.runner}.{key} is {type(values).__name__}")
            if not values:
                raise CampaignError(
                    f"grid axis {self.runner}.{key} is empty")
        for source in ([self.params] + [dict(self.grid)] + self.cells):
            for key in source:
                if key == "seed":
                    raise CampaignError(
                        "'seed' belongs in the seeds spec, not params")
                if not _runner_accepts(fn, key):
                    raise CampaignError(
                        f"runner {self.runner!r} accepts no "
                        f"parameter {key!r}")

    def param_points(self) -> List[Dict[str, Any]]:
        """Grid cartesian product (sorted keys) then explicit cells,
        each merged over the base params."""
        points = []
        keys = sorted(self.grid)
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            point = dict(self.params)
            point.update(zip(keys, combo))
            points.append(point)
        for cell in self.cells:
            point = dict(self.params)
            point.update(cell)
            points.append(point)
        return points

    def expand(self, default_seeds: List[int]) -> List[TaskCell]:
        fn = resolve_runner(self.runner)
        seeded = _runner_accepts(fn, "seed")
        seeds: List[Optional[int]] = (
            list(self.seeds if self.seeds is not None else default_seeds)
            if seeded else [None])
        return [TaskCell(self.runner, point, seed)
                for point in self.param_points()
                for seed in seeds]


@dataclass
class CampaignSpec:
    """A named collection of sweeps plus execution defaults."""

    name: str
    sweeps: List[SweepSpec]
    seeds: List[int] = field(default_factory=lambda: [0])
    timeout: Optional[float] = 300.0
    retries: int = 1

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise CampaignError(f"bad campaign name {self.name!r}")
        if isinstance(self.seeds, dict):
            self.seeds = _resolve_seeds(self.seeds)
        if not self.sweeps:
            raise CampaignError("a campaign needs at least one sweep")
        if self.retries < 0:
            raise CampaignError("retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise CampaignError("timeout must be positive or None")

    def expand(self) -> List[TaskCell]:
        """All cells, in deterministic spec order."""
        cells: List[TaskCell] = []
        for sweep in self.sweeps:
            cells.extend(sweep.expand(self.seeds))
        return cells

    # -- construction -------------------------------------------------
    @classmethod
    def single(cls, runner: str, name: Optional[str] = None,
               params: Optional[Dict[str, Any]] = None,
               grid: Optional[Dict[str, List[Any]]] = None,
               seeds: Any = None, **kwargs: Any) -> "CampaignSpec":
        """Python convenience: a one-sweep campaign."""
        resolved = _resolve_seeds(seeds)
        return cls(name=name or runner.replace(":", "."),
                   sweeps=[SweepSpec(runner, params=dict(params or {}),
                                     grid=dict(grid or {}))],
                   seeds=resolved if resolved is not None else [0],
                   **kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        data = dict(data)
        raw_sweeps = data.pop("sweep", data.pop("sweeps", None))
        if not raw_sweeps:
            raise CampaignError("spec has no [[sweep]] entries")
        sweeps = []
        for raw in raw_sweeps:
            raw = dict(raw)
            try:
                runner = raw.pop("runner")
            except KeyError:
                raise CampaignError("sweep entry missing 'runner'") \
                    from None
            sweeps.append(SweepSpec(
                runner=runner,
                params=dict(raw.pop("params", {})),
                grid=dict(raw.pop("grid", {})),
                cells=list(raw.pop("cells", [])),
                seeds=_resolve_seeds(raw.pop("seeds", None))))
            if raw:
                raise CampaignError(
                    f"unknown sweep keys {sorted(raw)} for {runner!r}")
        try:
            name = data.pop("name")
        except KeyError:
            raise CampaignError("spec missing 'name'") from None
        seeds = _resolve_seeds(data.pop("seeds", None))
        spec = cls(name=name, sweeps=sweeps,
                   seeds=seeds if seeds is not None else [0],
                   timeout=data.pop("timeout", 300.0),
                   retries=int(data.pop("retries", 1)))
        if data:
            raise CampaignError(f"unknown spec keys {sorted(data)}")
        return spec

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        """Load a spec from ``.toml`` or ``.json``."""
        if path.endswith(".toml"):
            try:
                import tomllib
            except ModuleNotFoundError as exc:        # Python < 3.11
                raise CampaignError(
                    "loading .toml specs requires Python 3.11+ "
                    "(tomllib); convert the spec to .json") from exc
            with open(path, "rb") as handle:
                return cls.from_dict(tomllib.load(handle))
        if path.endswith(".json"):
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        raise CampaignError(f"spec path must end in .toml or .json: {path}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data snapshot (resolved seeds, expansion-ready)."""
        return {
            "name": self.name,
            "seeds": list(self.seeds),
            "timeout": self.timeout,
            "retries": self.retries,
            "sweep": [{"runner": s.runner, "params": s.params,
                       "grid": s.grid, "cells": s.cells,
                       **({"seeds": s.seeds}
                          if s.seeds is not None else {})}
                      for s in self.sweeps],
        }
