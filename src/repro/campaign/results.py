"""Typed result store and cross-seed aggregation.

Runners return either *row lists* (``[(size, http_base, ...), ...]``)
or free-form dicts.  Row-list results aggregate across the seed sweep:
cells are grouped by (runner, params-without-seed), rows are aligned by
index, and every numeric column gets mean / stdev / p50 / p95 (exact
order statistics via the same :func:`repro.analysis.report.summarize`
machinery the figure tables use).  A row's leading element becomes its
label when it is identical across all seeds (e.g. the file size in
fig5); otherwise the row index is used.  A dict value with a ``"rows"``
list aggregates the same way; other dict-valued results are kept
verbatim in the store but skipped by the aggregate table.

Runners that return a ``"metrics"`` key (a
:meth:`~repro.sim.monitor.MetricSet.snapshot`, e.g. the per-stage
latency percentiles from ``flow_stage_latency``) additionally roll up
per metric across the seed sweep: :meth:`ResultStore.metric_rollup`
averages each seed's count/mean/p50/p95/p99 per metric name.

All iteration is over sorted keys and seeds, so two runs of the same
spec render byte-identical tables.
"""

import statistics
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.report import format_table, summarize
from repro.campaign.executor import CellResult
from repro.ioutil import atomic_write_text

AGGREGATE_HEADERS = ("runner", "cell", "row", "col", "seeds", "mean",
                     "stdev", "p50", "p95")

METRIC_HEADERS = ("runner", "cell", "metric", "seeds", "count", "mean",
                  "p50", "p95", "p99")


def _table_of(result: "CellResult"):
    """The row list inside a result value, or ``None``: either the value
    itself or its ``"rows"`` entry for dict-shaped runner returns."""
    value = result.value
    if isinstance(value, dict):
        value = value.get("rows")
    return value if isinstance(value, list) else None


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _cell_label(params: Dict[str, Any]) -> str:
    if not params:
        return "-"
    return " ".join(f"{key}={params[key]!r}" for key in sorted(params))


@dataclass
class AggregateRow:
    """One (cell, row, column) summary across the seed sweep."""

    runner: str
    cell: str
    row: Any
    col: int
    seeds: int
    mean: float
    stdev: float
    p50: float
    p95: float

    def as_tuple(self) -> tuple:
        return (self.runner, self.cell, self.row, self.col, self.seeds,
                self.mean, self.stdev, self.p50, self.p95)


class ResultStore:
    """Cell results indexed for aggregation and rendering."""

    def __init__(self, results: Optional[List[CellResult]] = None):
        self._results: List[CellResult] = []
        for result in results or []:
            self.add(result)

    def add(self, result: CellResult) -> None:
        self._results.append(result)

    def __len__(self) -> int:
        return len(self._results)

    @property
    def results(self) -> List[CellResult]:
        return list(self._results)

    # -- grouping ------------------------------------------------------
    def groups(self) -> Dict[Tuple[str, str], List[CellResult]]:
        """Successful tabular results (row lists, or dicts carrying a
        ``"rows"`` list) grouped by (runner, params key), each group's
        members sorted by seed."""
        grouped: Dict[Tuple[str, str], List[CellResult]] = {}
        for result in self._results:
            if not result.ok or _table_of(result) is None:
                continue
            grouped.setdefault(
                (result.cell.runner, result.cell.params_key),
                []).append(result)
        for members in grouped.values():
            members.sort(key=lambda r: (r.cell.seed is not None,
                                        r.cell.seed))
        return grouped

    def unaggregated(self) -> int:
        """Successful cells whose values carry no row table."""
        return sum(1 for r in self._results
                   if r.ok and _table_of(r) is None)

    # -- aggregation ---------------------------------------------------
    def aggregate(self) -> List[AggregateRow]:
        out: List[AggregateRow] = []
        for (runner, _params_key), members in sorted(self.groups().items()):
            label = _cell_label(members[0].cell.params)
            tables = [_table_of(member) for member in members]
            n_rows = min(len(table) for table in tables)
            for r in range(n_rows):
                rows = [row if isinstance(row, (list, tuple)) else [row]
                        for row in (table[r] for table in tables)]
                width = min(len(row) for row in rows)
                if width == 0:
                    continue
                firsts = [row[0] for row in rows]
                labelled = len(set(map(repr, firsts))) == 1
                row_label = firsts[0] if labelled else r
                start = 1 if labelled else 0
                for c in range(start, width):
                    values = [row[c] for row in rows]
                    if not all(_is_number(v) for v in values):
                        continue
                    floats = [float(v) for v in values]
                    stats = summarize(floats, percentiles=(50, 95))
                    stdev = (statistics.stdev(floats)
                             if len(floats) > 1 else 0.0)
                    out.append(AggregateRow(
                        runner=runner, cell=label, row=row_label, col=c,
                        seeds=len(floats), mean=stats["mean"],
                        stdev=stdev, p50=stats["p50"],
                        p95=stats["p95"]))
        return out

    # -- metric rollup -------------------------------------------------
    def metric_rollup(self) -> List[tuple]:
        """(runner, cell, metric, seeds, count, mean, p50, p95, p99)
        rows: per-metric observation stats averaged across the seed
        sweep, from the ``metrics`` snapshots runners persisted."""
        grouped: Dict[Tuple[str, str], List[CellResult]] = {}
        for result in self._results:
            if result.ok and isinstance(result.metrics, dict):
                grouped.setdefault(
                    (result.cell.runner, result.cell.params_key),
                    []).append(result)
        rows: List[tuple] = []
        for (runner, _params_key), members in sorted(grouped.items()):
            members.sort(key=lambda r: (r.cell.seed is not None,
                                        r.cell.seed))
            label = _cell_label(members[0].cell.params)
            names: List[str] = []
            for member in members:
                for name in member.metrics.get("observations", {}):
                    if name not in names:
                        names.append(name)
            for name in sorted(names):
                stats = [member.metrics["observations"][name]
                         for member in members
                         if name in member.metrics.get("observations", {})]
                def avg(field):
                    values = [s[field] for s in stats
                              if _is_number(s.get(field))]
                    return (sum(values) / len(values)) if values else 0.0
                rows.append((runner, label, name, len(stats),
                             avg("count"), avg("mean"), avg("p50"),
                             avg("p95"), avg("p99")))
        return rows

    # -- rendering -----------------------------------------------------
    def render_aggregate(self) -> str:
        """The same aligned-ASCII format ``benchmarks/results/*.txt``
        uses."""
        rows = [agg.as_tuple() for agg in self.aggregate()]
        return format_table(list(AGGREGATE_HEADERS), rows)

    def render_metric_rollup(self) -> str:
        return format_table(list(METRIC_HEADERS), self.metric_rollup())

    def save_aggregate(self, path: str) -> str:
        text = self.render_aggregate()
        if self.metric_rollup():
            text += "\n\nMetric rollup (per-seed snapshots averaged):\n"
            text += self.render_metric_rollup()
        return atomic_write_text(path, text + "\n")
