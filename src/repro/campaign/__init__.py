"""Parallel, resumable experiment-campaign orchestration.

Turns the one-shot runners in :mod:`repro.analysis.experiments` into
declarative campaigns: a :class:`CampaignSpec` (TOML/JSON/Python)
describes a runner, a parameter grid and a seed sweep; the
:class:`CampaignExecutor` fans the expanded cells out over a process
pool with per-task timeouts, bounded retries and graceful failure
recording; the :class:`ResultCache` content-addresses every completed
cell so interrupted or re-run campaigns execute only missing work; and
:class:`ResultStore` aggregates rows across seeds into the same table
format the benchmark artifacts use.  The ``repro campaign`` CLI wires
it all together.
"""

from repro.campaign.spec import (CampaignError, CampaignSpec, SweepSpec,
                                 TaskCell, canonical_params,
                                 resolve_runner)
from repro.campaign.cache import ResultCache, cell_key, code_fingerprint
from repro.campaign.executor import (CampaignExecutor, CampaignReport,
                                     CellResult, TaskTimeout,
                                     execute_cell, normalize_result,
                                     run_campaign)
from repro.campaign.results import AggregateRow, ResultStore

__all__ = [
    "CampaignError",
    "CampaignSpec",
    "SweepSpec",
    "TaskCell",
    "canonical_params",
    "resolve_runner",
    "ResultCache",
    "cell_key",
    "code_fingerprint",
    "CampaignExecutor",
    "CampaignReport",
    "CellResult",
    "TaskTimeout",
    "execute_cell",
    "normalize_result",
    "run_campaign",
    "AggregateRow",
    "ResultStore",
]
