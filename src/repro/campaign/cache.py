"""Content-addressed on-disk result cache.

Each campaign cell is addressed by the SHA-256 of

    (runner name, canonicalized params JSON, seed, code fingerprint)

where the *code fingerprint* hashes every ``.py`` file under the
installed ``repro`` package -- editing any source file invalidates the
whole cache, so a resumed campaign can never mix results from two code
versions.  Records are one JSON file per key, written atomically
(temp + ``os.replace``), so parallel workers and interrupted runs never
leave a truncated cell behind; a JSONL manifest alongside the cache is
the append-only audit log that ``repro campaign status`` reads.
"""

import hashlib
import json
import os
from typing import Any, Dict, Iterator, Optional

from repro.campaign.spec import TaskCell, canonical_params
from repro.ioutil import atomic_write_json

_FINGERPRINT_CACHE: Dict[str, str] = {}


def code_fingerprint(package_dir: Optional[str] = None) -> str:
    """SHA-256 over (relative path, content hash) of every ``.py`` file
    under the ``repro`` package (or ``package_dir``), cached per
    process."""
    if package_dir is None:
        import repro
        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    cached = _FINGERPRINT_CACHE.get(package_dir)
    if cached is not None:
        return cached
    outer = hashlib.sha256()
    entries = []
    for root, _dirs, files in os.walk(package_dir):
        for filename in files:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(root, filename)
            with open(path, "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
            entries.append((os.path.relpath(path, package_dir), digest))
    for relpath, digest in sorted(entries):
        outer.update(f"{relpath}\0{digest}\n".encode("utf-8"))
    fingerprint = outer.hexdigest()
    _FINGERPRINT_CACHE[package_dir] = fingerprint
    return fingerprint


def cell_key(cell: TaskCell, fingerprint: str) -> str:
    """The cell's content address."""
    material = "\0".join([cell.runner, canonical_params(cell.params),
                          repr(cell.seed), fingerprint])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """One JSON record per completed cell under ``root/``.

    A record is a plain dict::

        {"runner": ..., "params": {...}, "seed": ..., "status": "ok",
         "value": <normalized result>, "duration": 1.23, "attempts": 1,
         "fingerprint": ...}

    ``get`` returns ``None`` for missing keys and for records whose
    stored fingerprint no longer matches (defensive: the key already
    encodes it).  Failed records are stored too -- ``status`` lets a
    resume re-execute them while ``status``/``aggregate`` can still
    report the recorded error.
    """

    def __init__(self, root: str, fingerprint: Optional[str] = None):
        self.root = os.fspath(root)
        self.fingerprint = fingerprint or code_fingerprint()
        os.makedirs(self.root, exist_ok=True)

    def key(self, cell: TaskCell) -> str:
        return cell_key(cell, self.fingerprint)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if record.get("fingerprint") != self.fingerprint:
            return None
        return record

    def put(self, key: str, record: Dict[str, Any]) -> str:
        record = dict(record)
        record["fingerprint"] = self.fingerprint
        return atomic_write_json(self._path(key), record, indent=None,
                                 separators=(",", ":"))

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))

    def keys(self) -> Iterator[str]:
        for name in sorted(os.listdir(self.root)):
            if name.endswith(".json"):
                yield name[:-len(".json")]

    def __repr__(self) -> str:
        return (f"<ResultCache {self.root!r} entries={len(self)} "
                f"fingerprint={self.fingerprint[:12]}>")
