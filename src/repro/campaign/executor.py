"""Parallel, fault-tolerant campaign execution.

The scheduler fans cells out over a ``ProcessPoolExecutor`` with at
most ``jobs`` tasks in flight (lazy submission, so a submitted task is
executing, not queueing -- which is what makes parent-side hang
detection meaningful).  Failure semantics:

- **exception in a runner** -- the worker catches it and returns a
  ``failed`` record with the traceback; the campaign continues.
- **timeout** -- enforced *inside* the worker via ``SIGALRM``
  (interrupts pure-Python runners reliably); a parent-side backstop
  catches truly hung workers by recycling the pool.
- **worker crash** (segfault, OOM-kill) -- surfaces as
  ``BrokenProcessPool``; the pool is rebuilt with fresh workers and the
  in-flight cells are charged one attempt each.
- **bounded retries** -- every failed/timed-out/crashed cell is
  resubmitted until its attempt budget (``retries + 1``) is spent; the
  final record keeps the last error.

Completed cells are written to the :class:`~repro.campaign.cache.ResultCache`
and appended to the campaign manifest as they finish, so an interrupted
campaign resumes from exactly the missing cells.  The orchestrator
records its own lifecycle into the PR-1 observability layer: a
``campaign.*`` :class:`~repro.sim.monitor.Trace` (wall-clock times) and
a :class:`~repro.sim.monitor.MetricSet` of task counters/durations.
"""

import json
import os
import signal
import threading
import time
import traceback
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                CancelledError, ProcessPoolExecutor, wait)
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.cache import ResultCache
from repro.campaign.spec import CampaignSpec, TaskCell, resolve_runner
from repro.ioutil import append_jsonl
from repro.sim.monitor import MetricSet, Trace

#: extra parent-side wall time granted beyond the in-worker timeout
#: before a worker is declared hung and the pool recycled
HANG_GRACE = 5.0


class TaskTimeout(Exception):
    """Raised inside a worker when the per-task alarm fires."""


def _json_default(obj: Any) -> Any:
    """Coerce numpy scalars/arrays to plain data; ``repr`` the rest."""
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        try:
            return tolist()
        except Exception:
            pass
    return repr(obj)


def normalize_result(value: Any) -> Any:
    """A JSON round-trip: tuples become lists, numpy scalars become
    numbers, unserialisable objects become their ``repr``.  This is the
    form results take in the cache and the aggregation layer."""
    return json.loads(json.dumps(value, default=_json_default))


def execute_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell in the current process; never raises.

    ``payload`` is the picklable task description produced by
    :meth:`CampaignExecutor._payload`.  The returned record always has
    ``status`` (``ok`` / ``failed`` / ``timeout``) and ``duration``.
    """
    timeout = payload.get("timeout")
    use_alarm = (timeout is not None and hasattr(signal, "SIGALRM")
                 and threading.current_thread()
                 is threading.main_thread())
    start = time.perf_counter()
    previous_handler = None
    try:
        fn = resolve_runner(payload["runner"])
        kwargs = dict(payload["params"])
        if payload.get("seed") is not None:
            kwargs[payload.get("seed_param", "seed")] = payload["seed"]
        if use_alarm:
            def _alarm(_signum, _frame):
                raise TaskTimeout(
                    f"cell exceeded its {timeout:g}s timeout")
            previous_handler = signal.signal(signal.SIGALRM, _alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        value = normalize_result(fn(**kwargs))
        metrics = (value.get("metrics")
                   if isinstance(value, dict)
                   and isinstance(value.get("metrics"), dict) else None)
        profile = (value.get("profile")
                   if isinstance(value, dict)
                   and isinstance(value.get("profile"), dict) else None)
        return {"status": "ok", "value": value, "metrics": metrics,
                "profile": profile, "error": None, "traceback": None,
                "duration": time.perf_counter() - start}
    except TaskTimeout as exc:
        return {"status": "timeout", "value": None, "error": str(exc),
                "traceback": None,
                "duration": time.perf_counter() - start}
    except Exception as exc:
        return {"status": "failed", "value": None, "error": repr(exc),
                "traceback": traceback.format_exc(),
                "duration": time.perf_counter() - start}
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if previous_handler is not None:
                signal.signal(signal.SIGALRM, previous_handler)


@dataclass
class CellResult:
    """Final outcome of one cell (cached or freshly executed)."""

    cell: TaskCell
    status: str                 # ok | failed | timeout | crashed
    value: Any = None
    error: Optional[str] = None
    duration: float = 0.0
    attempts: int = 1
    cached: bool = False
    #: the runner's MetricSet.snapshot(), when it returned one (a dict
    #: value with a "metrics" key) -- persisted through cache and
    #: manifest for cross-seed rollups
    metrics: Optional[Dict[str, Any]] = None
    #: the runner's repro.prof subsystem summary, when it returned one
    #: (a dict value with a "profile" key) -- persisted alongside
    #: metrics so profiled campaigns survive cache hits and resume
    profile: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def record(self) -> Dict[str, Any]:
        """The cache/manifest representation."""
        return {"runner": self.cell.runner, "params": self.cell.params,
                "seed": self.cell.seed, "status": self.status,
                "value": self.value, "error": self.error,
                "duration": self.duration, "attempts": self.attempts,
                "metrics": self.metrics, "profile": self.profile}


@dataclass
class CampaignReport:
    """Everything a campaign run produced, plus its telemetry."""

    name: str
    results: List[CellResult]
    wall_seconds: float
    trace: Trace = field(default_factory=Trace)
    metrics: MetricSet = field(default_factory=MetricSet)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def executed(self) -> int:
        return len(self.results) - self.cache_hits

    @property
    def failures(self) -> List[CellResult]:
        return [r for r in self.results if not r.ok]

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / len(self.results) if self.results else 0.0

    @property
    def tasks_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.executed / self.wall_seconds

    def summary_rows(self) -> List[tuple]:
        retries = self.metrics.counters.get("retries", 0)
        return [
            ("cells", len(self.results)),
            ("executed", self.executed),
            ("cache hits", self.cache_hits),
            ("cache hit rate", f"{100.0 * self.hit_rate:.1f}%"),
            ("failed", len(self.failures)),
            ("retries", retries),
            ("wall seconds", self.wall_seconds),
            ("tasks/sec", self.tasks_per_second),
        ]


class CampaignExecutor:
    """Schedule a :class:`CampaignSpec` across worker processes.

    ``jobs <= 0`` means one worker per CPU.  ``inline=True`` bypasses
    the process pool entirely (sequential, in-process) -- useful for
    tests and debugging; crash isolation is lost but exception/timeout
    handling is identical.
    """

    def __init__(self, spec: CampaignSpec, cache: Optional[ResultCache],
                 jobs: int = 1, timeout: Optional[float] = None,
                 retries: Optional[int] = None, inline: bool = False,
                 manifest_path: Optional[str] = None,
                 progress: Optional[Callable[[str], None]] = None):
        self.spec = spec
        self.cache = cache
        self.jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
        self.timeout = timeout if timeout is not None else spec.timeout
        self.retries = retries if retries is not None else spec.retries
        self.inline = inline
        self.manifest_path = manifest_path
        self.progress = progress
        self.trace = Trace()
        self.metrics = MetricSet()
        self._t0 = 0.0
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- plumbing ------------------------------------------------------
    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _emit(self, category: str, **payload: Any) -> None:
        self.trace.record(self._now(), category, **payload)

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _payload(self, cell: TaskCell) -> Dict[str, Any]:
        return {"runner": cell.runner, "params": cell.params,
                "seed": cell.seed, "seed_param": cell.seed_param,
                "timeout": self.timeout}

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _recycle_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # shutdown() alone never kills a *running* worker, so a hung
        # task would stall the campaign forever; terminate the worker
        # processes so their futures fail over to the BrokenExecutor /
        # CancelledError paths in the collection loop.
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    # -- bookkeeping for finished cells --------------------------------
    def _finish(self, index: int, cell: TaskCell, outcome: Dict[str, Any],
                attempts: int, results: Dict[int, CellResult],
                done_count: List[int], total: int) -> None:
        result = CellResult(cell=cell, status=outcome["status"],
                            value=outcome.get("value"),
                            error=outcome.get("error"),
                            duration=outcome.get("duration", 0.0),
                            attempts=attempts, cached=False,
                            metrics=outcome.get("metrics"),
                            profile=outcome.get("profile"))
        results[index] = result
        key = None
        if self.cache is not None:
            key = self.cache.key(cell)
            record = result.record()
            record["traceback"] = outcome.get("traceback")
            self.cache.put(key, record)
        if self.manifest_path is not None:
            append_jsonl(self.manifest_path, {
                "key": key, "runner": cell.runner, "seed": cell.seed,
                "params": cell.params, "status": result.status,
                "cached": False, "duration": result.duration,
                "attempts": attempts, "metrics": result.metrics,
                "profile": result.profile})
        self.metrics.incr("executed")
        self.metrics.incr(result.status)
        self.metrics.observe("task.duration", result.duration)
        category = ("campaign.task.done" if result.ok
                    else "campaign.task.failed")
        self._emit(category, runner=cell.runner, seed=cell.seed,
                   status=result.status, duration=result.duration,
                   attempts=attempts)
        done_count[0] += 1
        state = result.status if not result.ok else "ok"
        self._say(f"[{done_count[0]}/{total}] {cell.label()} -- {state} "
                  f"in {result.duration:.2f}s"
                  + (f" ({attempts} attempts)" if attempts > 1 else ""))

    def _retry(self, cell: TaskCell, attempts: int, status: str) -> None:
        self.metrics.incr("retries")
        self._emit("campaign.task.retry", runner=cell.runner,
                   seed=cell.seed, status=status, attempt=attempts + 1)
        self._say(f"retry {cell.label()} after {status} "
                  f"(attempt {attempts + 1}/{self.retries + 1})")

    # -- the run -------------------------------------------------------
    def run(self) -> CampaignReport:
        self._t0 = time.monotonic()
        cells = self.spec.expand()
        total = len(cells)
        self.metrics.incr("cells", total)
        results: Dict[int, CellResult] = {}
        done_count = [0]
        pending: List[int] = []

        for index, cell in enumerate(cells):
            record = (self.cache.get(self.cache.key(cell))
                      if self.cache is not None else None)
            if record is not None and record.get("status") == "ok":
                results[index] = CellResult(
                    cell=cell, status="ok", value=record.get("value"),
                    duration=record.get("duration", 0.0),
                    attempts=record.get("attempts", 1), cached=True,
                    metrics=record.get("metrics"),
                    profile=record.get("profile"))
                self.metrics.incr("cache.hits")
                self._emit("campaign.cache.hit", runner=cell.runner,
                           seed=cell.seed)
                done_count[0] += 1
                self._say(f"[{done_count[0]}/{total}] {cell.label()} "
                          f"-- cached")
                if self.manifest_path is not None:
                    append_jsonl(self.manifest_path, {
                        "key": self.cache.key(cell),
                        "runner": cell.runner, "seed": cell.seed,
                        "params": cell.params, "status": "ok",
                        "cached": True,
                        "duration": record.get("duration", 0.0),
                        "attempts": record.get("attempts", 1)})
            else:
                self.metrics.incr("cache.misses")
                pending.append(index)

        if self.inline:
            self._run_inline(cells, pending, results, done_count, total)
        else:
            self._run_pool(cells, pending, results, done_count, total)

        wall = time.monotonic() - self._t0
        ordered = [results[i] for i in sorted(results)]
        return CampaignReport(name=self.spec.name, results=ordered,
                              wall_seconds=wall, trace=self.trace,
                              metrics=self.metrics)

    def _run_inline(self, cells, pending, results, done_count, total):
        for index in pending:
            cell = cells[index]
            attempts = 0
            while True:
                attempts += 1
                self._emit("campaign.task.start", runner=cell.runner,
                           seed=cell.seed, attempt=attempts)
                outcome = execute_cell(self._payload(cell))
                if outcome["status"] == "ok" \
                        or attempts > self.retries:
                    self._finish(index, cell, outcome, attempts,
                                 results, done_count, total)
                    break
                self._retry(cell, attempts, outcome["status"])

    def _run_pool(self, cells, pending, results, done_count, total):
        queue = list(pending)       # indices not yet submitted
        attempts: Dict[int, int] = {i: 0 for i in pending}
        in_flight: Dict[Any, tuple] = {}    # future -> (index, started)
        try:
            while queue or in_flight:
                while queue and len(in_flight) < self.jobs:
                    index = queue.pop(0)
                    cell = cells[index]
                    attempts[index] += 1
                    self._emit("campaign.task.start", runner=cell.runner,
                               seed=cell.seed, attempt=attempts[index])
                    future = self._ensure_pool().submit(
                        execute_cell, self._payload(cell))
                    in_flight[future] = (index, time.monotonic())

                done, _ = wait(list(in_flight), timeout=0.25,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    index, _started = in_flight.pop(future)
                    cell = cells[index]
                    try:
                        outcome = future.result()
                    except (BrokenExecutor, OSError) as exc:
                        # worker died; fresh workers for everyone
                        self._recycle_pool()
                        outcome = {"status": "crashed",
                                   "error": repr(exc), "value": None,
                                   "duration": 0.0}
                    except CancelledError:
                        # a pool recycle cancelled this queued task;
                        # resubmit without charging an attempt
                        attempts[index] -= 1
                        queue.append(index)
                        continue
                    if outcome["status"] == "ok" \
                            or attempts[index] > self.retries:
                        self._finish(index, cell, outcome,
                                     attempts[index], results,
                                     done_count, total)
                    else:
                        self._retry(cell, attempts[index],
                                    outcome["status"])
                        queue.append(index)

                if self.timeout is not None:
                    self._reap_hung(cells, in_flight, queue)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def _reap_hung(self, cells, in_flight, queue) -> None:
        """Parent-side backstop: a worker that outlived its in-worker
        alarm by :data:`HANG_GRACE` is stuck in uninterruptible code;
        recycle the whole pool (the only way to kill a pool worker) and
        let the cancelled siblings resubmit for free."""
        deadline = self.timeout + max(HANG_GRACE, 0.25 * self.timeout)
        now = time.monotonic()
        hung = [future for future, (_i, started) in in_flight.items()
                if not future.done() and now - started > deadline]
        if not hung:
            return
        self._recycle_pool()
        # hung cells come back through the CancelledError/BrokenExecutor
        # paths above with their attempt already charged; nothing else
        # to do here -- but trace the event so the summary explains the
        # stall.
        for future in hung:
            index, started = in_flight[future]
            cell = cells[index]
            self._emit("campaign.task.hung", runner=cell.runner,
                       seed=cell.seed, ran_for=now - started)
            self.metrics.incr("hung")


def run_campaign(spec: CampaignSpec, cache: Optional[ResultCache] = None,
                 **kwargs: Any) -> CampaignReport:
    """One-call convenience wrapper around :class:`CampaignExecutor`."""
    return CampaignExecutor(spec, cache, **kwargs).run()
