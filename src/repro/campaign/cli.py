"""The ``repro campaign`` subcommand family.

::

    repro campaign run       SPEC [--jobs N] [--timeout S] [--retries N]
                                  [--no-cache] [--state-dir D] [--quiet]
                                  [--expect-all-cached]
    repro campaign resume    SPEC [same flags; requires prior state]
    repro campaign status    SPEC [--state-dir D]
    repro campaign aggregate SPEC [--state-dir D] [--out PATH]

Campaign state lives under ``<state-dir>/<campaign name>/``::

    cache/          one JSON record per completed cell (content-addressed)
    manifest.jsonl  append-only audit log of every finished cell
    spec.json       resolved spec snapshot of the last run
    summary.txt     the final summary table
    aggregate.txt   cross-seed aggregate table
    events.jsonl    the orchestrator's campaign.* trace
"""

import os
from typing import Dict, List, Optional

from repro.analysis.report import format_table
from repro.campaign.cache import ResultCache
from repro.campaign.executor import (CampaignExecutor, CampaignReport,
                                     CellResult)
from repro.campaign.results import ResultStore
from repro.campaign.spec import CampaignError, CampaignSpec
from repro.ioutil import atomic_write_json, atomic_write_text


def _load_spec(args) -> CampaignSpec:
    try:
        return CampaignSpec.from_file(args.spec)
    except (OSError, CampaignError) as exc:
        raise SystemExit(f"error: cannot load spec {args.spec}: {exc}")


def _state_dir(args, spec: CampaignSpec) -> str:
    return os.path.join(args.state_dir, spec.name)


def _open_cache(args, spec: CampaignSpec) -> Optional[ResultCache]:
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(os.path.join(_state_dir(args, spec), "cache"))


def _print_report(spec: CampaignSpec, report: CampaignReport,
                  store: ResultStore) -> None:
    print(f"\nCampaign {spec.name}: {len(report.results)} cells, "
          f"{report.executed} executed, {report.cache_hits} cached, "
          f"{len(report.failures)} failed "
          f"in {report.wall_seconds:.1f}s")
    print(format_table(["metric", "value"], report.summary_rows()))
    aggregate = store.render_aggregate()
    if aggregate.count("\n") >= 2:      # more than headers + rule
        print("\nAggregate over seeds (mean/stdev/p50/p95):")
        print(aggregate)
    if store.metric_rollup():
        print("\nMetric rollup (per-seed snapshots averaged):")
        print(store.render_metric_rollup())
    skipped = store.unaggregated()
    if skipped:
        print(f"\n({skipped} cells returned non-tabular results and "
              f"were not aggregated; see the cache records.)")
    for failure in report.failures:
        print(f"\nFAILED {failure.cell.label()} "
              f"[{failure.status}, {failure.attempts} attempts]: "
              f"{failure.error}")


def _write_artifacts(args, spec: CampaignSpec, report: CampaignReport,
                     store: ResultStore) -> None:
    state = _state_dir(args, spec)
    os.makedirs(state, exist_ok=True)
    atomic_write_json(os.path.join(state, "spec.json"), spec.to_dict(),
                      indent=2)
    atomic_write_text(os.path.join(state, "summary.txt"),
                      format_table(["metric", "value"],
                                   report.summary_rows()) + "\n")
    store.save_aggregate(os.path.join(state, "aggregate.txt"))
    report.trace.export(os.path.join(state, "events.jsonl"))


def _execute(args, require_state: bool) -> None:
    spec = _load_spec(args)
    state = _state_dir(args, spec)
    if require_state and not os.path.isdir(state):
        raise SystemExit(
            f"error: no campaign state at {state}; "
            f"run 'repro campaign run {args.spec}' first")
    os.makedirs(state, exist_ok=True)
    cache = _open_cache(args, spec)
    progress = None if args.quiet else print
    executor = CampaignExecutor(
        spec, cache, jobs=args.jobs, timeout=args.timeout,
        retries=args.retries,
        manifest_path=os.path.join(state, "manifest.jsonl"),
        progress=progress)
    report = executor.run()
    store = ResultStore(report.results)
    _write_artifacts(args, spec, report, store)
    _print_report(spec, report, store)
    if args.expect_all_cached and report.executed > 0:
        raise SystemExit(
            f"error: --expect-all-cached but {report.executed} cells "
            f"executed (cache hits: {report.cache_hits})")
    if report.failures:
        raise SystemExit(1)


def cmd_campaign_run(args) -> None:
    _execute(args, require_state=False)


def cmd_campaign_resume(args) -> None:
    _execute(args, require_state=True)


def _cached_results(args, spec: CampaignSpec):
    """(cell, record-or-None) for every cell of the spec."""
    cache = ResultCache(os.path.join(_state_dir(args, spec), "cache"))
    return [(cell, cache.get(cache.key(cell)))
            for cell in spec.expand()]


def cmd_campaign_status(args) -> None:
    spec = _load_spec(args)
    state = _state_dir(args, spec)
    if not os.path.isdir(state):
        print(f"Campaign {spec.name}: no state at {state} "
              f"({len(spec.expand())} cells pending)")
        return
    per_runner: Dict[str, Dict[str, int]] = {}
    for cell, record in _cached_results(args, spec):
        counts = per_runner.setdefault(
            cell.runner, {"cells": 0, "ok": 0, "failed": 0, "missing": 0})
        counts["cells"] += 1
        if record is None:
            counts["missing"] += 1
        elif record.get("status") == "ok":
            counts["ok"] += 1
        else:
            counts["failed"] += 1
    rows = [(runner, c["cells"], c["ok"], c["failed"], c["missing"])
            for runner, c in sorted(per_runner.items())]
    total = {key: sum(c[key] for c in per_runner.values())
             for key in ("cells", "ok", "failed", "missing")}
    print(f"Campaign {spec.name} ({state}):")
    print(format_table(["runner", "cells", "ok", "failed", "missing"],
                       rows))
    done = total["ok"]
    print(f"\n{done}/{total['cells']} cells complete, "
          f"{total['failed']} failed, {total['missing']} missing"
          + ("" if total["missing"] or total["failed"]
             else " -- campaign is complete"))


def cmd_campaign_aggregate(args) -> None:
    spec = _load_spec(args)
    store = ResultStore()
    missing = 0
    for cell, record in _cached_results(args, spec):
        if record is None or record.get("status") != "ok":
            missing += 1
            continue
        store.add(CellResult(cell=cell, status="ok",
                             value=record.get("value"),
                             duration=record.get("duration", 0.0),
                             attempts=record.get("attempts", 1),
                             cached=True,
                             metrics=record.get("metrics")))
    if len(store) == 0:
        raise SystemExit(f"error: no completed cells for {spec.name}; "
                         f"run the campaign first")
    print(f"Campaign {spec.name}: aggregate over {len(store)} cells"
          + (f" ({missing} missing/failed)" if missing else ""))
    print(store.render_aggregate())
    if store.metric_rollup():
        print("\nMetric rollup (per-seed snapshots averaged):")
        print(store.render_metric_rollup())
    out = args.out or os.path.join(_state_dir(args, spec),
                                   "aggregate.txt")
    store.save_aggregate(out)
    print(f"\nSaved to {out}")


def add_campaign_parser(subparsers) -> None:
    """Register ``campaign`` and its nested subcommands on the main
    ``repro`` parser."""
    campaign = subparsers.add_parser(
        "campaign", help="parallel, resumable experiment campaigns "
                         "with result caching")
    nested = campaign.add_subparsers(dest="campaign_command",
                                     required=True)

    def _common(p, execution: bool) -> None:
        p.add_argument("spec", help="campaign spec (.toml or .json)")
        p.add_argument("--state-dir", default=".campaigns",
                       help="root for per-campaign state "
                            "(default: .campaigns)")
        if not execution:
            return
        p.add_argument("--jobs", type=int, default=0,
                       help="worker processes (0 = one per CPU)")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-cell timeout seconds "
                            "(default: from the spec)")
        p.add_argument("--retries", type=int, default=None,
                       help="retry budget per cell "
                            "(default: from the spec)")
        p.add_argument("--no-cache", action="store_true",
                       help="execute every cell, read/write no cache")
        p.add_argument("--quiet", action="store_true",
                       help="suppress per-cell progress lines")
        p.add_argument("--expect-all-cached", action="store_true",
                       help="exit non-zero if any cell actually "
                            "executed (CI resume check)")

    p = nested.add_parser("run", help="execute a campaign spec")
    _common(p, execution=True)
    p.set_defaults(fn=cmd_campaign_run)

    p = nested.add_parser("resume", help="re-run a campaign; cached "
                                         "cells are skipped")
    _common(p, execution=True)
    p.set_defaults(fn=cmd_campaign_resume)

    p = nested.add_parser("status", help="per-runner completion counts "
                                         "from the cache")
    _common(p, execution=False)
    p.set_defaults(fn=cmd_campaign_status)

    p = nested.add_parser("aggregate", help="render the cross-seed "
                                            "aggregate table from "
                                            "cached results")
    _common(p, execution=False)
    p.add_argument("--out", default=None,
                   help="write the table here (default: "
                        "<state>/aggregate.txt)")
    p.set_defaults(fn=cmd_campaign_aggregate)
