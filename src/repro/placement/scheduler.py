"""An operator-facing placement scheduler and utilisation reporting.

:class:`PlacementScheduler` hands out triangles one VM at a time --
drawn from the Theorem 2 construction when the cluster size allows, or
from the greedy packer otherwise -- while enforcing edge-disjointness and
per-machine capacity.  :func:`utilization_report` quantifies Sec. VIII's
point: StopWatch supports Θ(c·n) guest VMs versus n for the
run-in-isolation alternative.
"""

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.placement.bose import theorem2_placement
from repro.placement.triangles import (
    Triangle,
    edges_of,
    greedy_triangle_packing,
    max_triangle_packing_size,
    normalize,
)


class PlacementError(RuntimeError):
    """No legal placement is available for the requested VM."""


class PlacementScheduler:
    """Assigns each new guest VM a triangle of machines.

    The scheduler precomputes a legal triangle pool (Theorem 2 when
    ``n ≡ 3 (mod 6)``, greedy otherwise) and hands triangles out in order,
    validating the StopWatch constraints as it goes.  Manual placements
    can also be requested via :meth:`place_at` and are checked against
    the same constraints.
    """

    def __init__(self, machines: int, capacity: int):
        if machines < 3:
            raise PlacementError(
                f"a StopWatch cloud needs at least 3 machines, got {machines}"
            )
        if capacity < 1:
            raise PlacementError(f"capacity must be >= 1, got {capacity}")
        self.machines = machines
        self.capacity = min(capacity, (machines - 1) // 2)
        self._used_edges: Set[Tuple[int, int]] = set()
        self._load: Dict[int, int] = {m: 0 for m in range(machines)}
        self.assignments: Dict[str, Triangle] = {}
        if machines % 6 == 3:
            self._pool = list(theorem2_placement(machines, self.capacity))
        else:
            self._pool = greedy_triangle_packing(machines, self.capacity)
        self._pool_index = 0

    # -- queries ---------------------------------------------------------
    @property
    def placed_count(self) -> int:
        return len(self.assignments)

    @property
    def pool_size(self) -> int:
        """Total VMs this scheduler can place."""
        return len(self._pool)

    def load_of(self, machine: int) -> int:
        return self._load[machine]

    def coresidents_of(self, vm_id: str) -> Set[str]:
        """VM ids sharing at least one machine with ``vm_id``."""
        triangle = self.assignments[vm_id]
        nodes = set(triangle)
        return {
            other for other, tri in self.assignments.items()
            if other != vm_id and nodes & set(tri)
        }

    # -- placement ----------------------------------------------------------
    def _check(self, triangle: Triangle) -> None:
        for node in triangle:
            if not 0 <= node < self.machines:
                raise PlacementError(f"machine {node} does not exist")
            if self._load[node] >= self.capacity:
                raise PlacementError(f"machine {node} is at capacity "
                                     f"{self.capacity}")
        for edge in edges_of(triangle):
            if edge in self._used_edges:
                raise PlacementError(
                    f"edge {edge} already used: replicas would coreside "
                    f"with an overlapping VM set"
                )

    def _commit(self, vm_id: str, triangle: Triangle) -> Triangle:
        for edge in edges_of(triangle):
            self._used_edges.add(edge)
        for node in triangle:
            self._load[node] += 1
        self.assignments[vm_id] = triangle
        return triangle

    def place(self, vm_id: str) -> Triangle:
        """Place a new VM on the next pooled triangle."""
        if vm_id in self.assignments:
            raise PlacementError(f"VM {vm_id!r} is already placed")
        while self._pool_index < len(self._pool):
            candidate = self._pool[self._pool_index]
            self._pool_index += 1
            try:
                self._check(candidate)
            except PlacementError:
                continue  # a manual placement consumed part of it
            return self._commit(vm_id, candidate)
        raise PlacementError(
            f"cluster full: {self.placed_count} VMs placed on "
            f"{self.machines} machines at capacity {self.capacity}"
        )

    def place_at(self, vm_id: str, triangle) -> Triangle:
        """Place a new VM on an operator-chosen triangle (validated)."""
        if vm_id in self.assignments:
            raise PlacementError(f"VM {vm_id!r} is already placed")
        canonical = normalize(triangle)
        self._check(canonical)
        return self._commit(vm_id, canonical)

    def remove(self, vm_id: str) -> None:
        """Tear down a VM, freeing its edges and capacity."""
        triangle = self.assignments.pop(vm_id, None)
        if triangle is None:
            raise PlacementError(f"VM {vm_id!r} is not placed")
        for edge in edges_of(triangle):
            self._used_edges.discard(edge)
        for node in triangle:
            self._load[node] -= 1

    def verify(self) -> bool:
        """Re-validate the global invariants (used by tests)."""
        from repro.placement.triangles import (
            node_visit_counts,
            verify_edge_disjoint,
        )
        triangles = list(self.assignments.values())
        if not verify_edge_disjoint(triangles):
            return False
        return all(count <= self.capacity
                   for count in node_visit_counts(triangles).values())


def fleet_for(vms: int, capacity: Optional[int] = None,
              max_machines: int = 1023) -> Tuple[int, int]:
    """Smallest fleet ``(machines, capacity)`` whose triangle pool holds
    ``vms`` guest VMs.

    Walks the ``n ≡ 3 (mod 6)`` sizes (where the Theorem 2 construction
    is exact) and returns the first whose pool fits.  ``capacity`` caps
    the per-machine guest slots; by default each machine offers its
    structural maximum ``(n - 1) // 2``.
    """
    if vms < 1:
        raise PlacementError(f"need at least one VM, got {vms}")
    machines = 3
    while machines <= max_machines:
        slots = capacity if capacity is not None \
            else max(1, (machines - 1) // 2)
        scheduler = PlacementScheduler(machines, slots)
        if scheduler.pool_size >= vms:
            return machines, scheduler.capacity
        machines += 6
    raise PlacementError(
        f"no fleet of <= {max_machines} machines holds {vms} VMs")


def resource_report(scheduler: PlacementScheduler,
                    profiles: Dict[str, object]) -> Dict[int, Dict[str, float]]:
    """Planning-time per-machine resource pressure from the placement.

    ``profiles`` maps a placed VM id to its registry-declared
    :class:`~repro.workloads.registry.ResourceProfile`; every machine in
    that VM's triangle carries one replica, so the whole (normalized)
    profile lands on each of the three machines.  Returns, per machine::

        {"cpu": ..., "disk": ..., "net": ..., "replicas": ...,
         "dominant": "cpu" | "disk" | "net" | None}

    This is the *declared* counterpart of the live
    :meth:`repro.cloud.fabric.Cloud.resource_load` view -- usable before
    a fabric exists, e.g. to compare candidate placements.  VMs without
    a profile entry (or with ``None``) count toward ``replicas`` only.
    """
    report = {machine: {"cpu": 0.0, "disk": 0.0, "net": 0.0,
                        "replicas": 0, "dominant": None}
              for machine in range(scheduler.machines)}
    for vm_id, triangle in scheduler.assignments.items():
        profile = profiles.get(vm_id)
        weights = profile.normalized() if profile is not None else None
        for machine in triangle:
            row = report[machine]
            row["replicas"] += 1
            if weights is not None:
                row["cpu"] += weights[0]
                row["disk"] += weights[1]
                row["net"] += weights[2]
    for row in report.values():
        for axis in ("cpu", "disk", "net"):
            row[axis] = round(row[axis], 9)
        peak = max(row["cpu"], row["disk"], row["net"])
        if peak > 0.0:
            row["dominant"] = next(axis for axis in ("cpu", "disk", "net")
                                   if row[axis] == peak)
    return report


class UtilizationReport(NamedTuple):
    """Sec. VIII comparison for one (n, c) point."""

    machines: int
    capacity: int
    stopwatch_vms: int          # VMs placeable under StopWatch constraints
    isolation_vms: int          # the run-each-VM-alone alternative: n
    packing_upper_bound: int    # Theorem 1 (capacity-oblivious) maximum
    theoretical_theta_cn: float  # c*n/3, the Θ(cn) reference line


def utilization_report(machines: int, capacity: int) -> UtilizationReport:
    """How many VMs StopWatch can host on ``machines`` nodes of capacity
    ``capacity``, vs. the isolation baseline."""
    scheduler = PlacementScheduler(machines, capacity)
    return UtilizationReport(
        machines=machines,
        capacity=capacity,
        stopwatch_vms=scheduler.pool_size,
        isolation_vms=machines,
        packing_upper_bound=max_triangle_packing_size(machines),
        theoretical_theta_cn=capacity * machines / 3.0,
    )
