"""Bose's construction and the Theorem 2 placement (paper Sec. VIII).

For ``n = 6v + 3`` machines, label the nodes ``Q x {0, 1, 2}`` with ``Q``
an idempotent commutative quasigroup of order ``2v + 1``.  The triangle
groups are::

    G_0           = { {(a,0), (a,1), (a,2)} : a in Q }
    G_t (1<=t<=v) = { {(a_i,l), (a_j,l), (a_i o a_j, l+1 mod 3)} :
                      0 <= i <= 2v, 0 <= l <= 2, j = i + t mod 2v+1 }

All triangles across all groups are pairwise edge-disjoint; G_0 visits
every node once, each G_t visits every node exactly three times.
Theorem 2 stacks groups to satisfy a per-machine capacity ``c``:

- c ≡ 0 (mod 3): groups G_1 .. G_{c/3}            -> k = c n / 3 VMs
- c ≡ 1 (mod 3): G_0 plus G_1 .. G_{(c-1)/3}      -> k = c n / 3 VMs
- c ≡ 2 (mod 3): G_0, G_1 .. G_{(c-2)/3}, plus the (n-3)/6 triangles
  {(a_i,0), (a_{i+v},0), (a_i o a_{i+v}, 1)} for 0 <= i <= v-1
  -> k = (c-1) n / 3 + (n-3)/6 VMs
"""

from typing import List

from repro.placement.quasigroup import IdempotentCommutativeQuasigroup
from repro.placement.triangles import Triangle, normalize


def node_id(element: int, layer: int, q: int) -> int:
    """Map (a_i, l) in Q x {0,1,2} to an integer machine id."""
    return layer * q + element


def _validate_n(n: int) -> int:
    """Return v for n = 6v + 3, raising otherwise."""
    if n < 3 or n % 6 != 3:
        raise ValueError(
            f"Bose construction requires n ≡ 3 (mod 6), got n={n}"
        )
    return (n - 3) // 6


def bose_groups(n: int) -> List[List[Triangle]]:
    """The groups ``[G_0, G_1, .., G_v]`` for ``n = 6v + 3`` machines."""
    v = _validate_n(n)
    q = 2 * v + 1
    quasigroup = IdempotentCommutativeQuasigroup(q)

    groups: List[List[Triangle]] = []
    g0 = [normalize((node_id(a, 0, q), node_id(a, 1, q), node_id(a, 2, q)))
          for a in range(q)]
    groups.append(g0)

    for t in range(1, v + 1):
        gt: List[Triangle] = []
        for i in range(q):
            j = (i + t) % q
            k = quasigroup.op(i, j)
            for layer in range(3):
                gt.append(normalize((
                    node_id(i, layer, q),
                    node_id(j, layer, q),
                    node_id(k, (layer + 1) % 3, q),
                )))
        groups.append(gt)
    return groups


def theorem2_placement(n: int, capacity: int) -> List[Triangle]:
    """The Theorem 2 placement: a maximal legal triangle set for ``n``
    machines each able to host ``capacity`` guest VM replicas.

    Requires ``n ≡ 3 (mod 6)`` and ``capacity <= (n-1)/2``.
    """
    v = _validate_n(n)
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    if capacity > (n - 1) // 2:
        raise ValueError(
            f"capacity {capacity} exceeds the per-node maximum (n-1)/2 = "
            f"{(n - 1) // 2}"
        )
    if capacity == 0:
        return []

    groups = bose_groups(n)
    placement: List[Triangle] = []
    remainder = capacity % 3

    if remainder == 0:
        for group in groups[1:capacity // 3 + 1]:
            placement.extend(group)
    elif remainder == 1:
        placement.extend(groups[0])
        for group in groups[1:(capacity - 1) // 3 + 1]:
            placement.extend(group)
    else:  # remainder == 2
        placement.extend(groups[0])
        for group in groups[1:(capacity - 2) // 3 + 1]:
            placement.extend(group)
        # v extra triangles from G_v visiting each node at most once:
        # {(a_i, 0), (a_j, 0), (a_i o a_j, 1)} for 0 <= i <= v-1, j = i+v.
        q = 2 * v + 1
        quasigroup = IdempotentCommutativeQuasigroup(q)
        for i in range(v):
            j = (i + v) % q
            k = quasigroup.op(i, j)
            placement.append(normalize((
                node_id(i, 0, q), node_id(j, 0, q), node_id(k, 1, q),
            )))
    return placement


def theorem2_vm_count(n: int, capacity: int) -> int:
    """The k guaranteed by Theorem 2 (without building the placement)."""
    _validate_n(n)
    if capacity % 3 in (0, 1):
        return capacity * n // 3
    return (capacity - 1) * n // 3 + (n - 3) // 6
