"""Triangle packings of K_n (paper Sec. VIII, Theorem 1).

A placement of one StopWatch guest VM is a triangle on the machine graph;
a legal placement of many VMs is a set of pairwise edge-disjoint
triangles.  Theorem 1 (a corollary of Horsley's maximum-packing result)
gives the exact maximum number of such triangles.
"""

from collections import Counter
from math import comb
from typing import Dict, Iterable, List, Set, Tuple

Triangle = Tuple[int, int, int]


def normalize(triangle: Iterable[int]) -> Triangle:
    """Canonical sorted form of a triangle; validates distinct vertices."""
    nodes = tuple(sorted(triangle))
    if len(nodes) != 3 or len(set(nodes)) != 3:
        raise ValueError(f"not a triangle: {triangle!r}")
    return nodes  # type: ignore[return-value]


def edges_of(triangle: Iterable[int]) -> List[Tuple[int, int]]:
    """The three undirected edges of a triangle (sorted endpoints)."""
    a, b, c = normalize(triangle)
    return [(a, b), (a, c), (b, c)]


def max_triangle_packing_size(n: int) -> int:
    """Theorem 1: size of a maximum edge-disjoint triangle packing of K_n.

    - n odd:  largest k with 3k <= C(n,2) and C(n,2) - 3k not in {1, 2};
    - n even: largest k with 3k <= C(n,2) - n/2.
    """
    if n < 3:
        return 0
    total_edges = comb(n, 2)
    if n % 2 == 1:
        k = total_edges // 3
        while k > 0 and (total_edges - 3 * k) in (1, 2):
            k -= 1
        return k
    return (total_edges - n // 2) // 3


def verify_edge_disjoint(triangles: Iterable[Iterable[int]]) -> bool:
    """True iff no two triangles share an edge (sharing a vertex is fine)."""
    seen: Set[Tuple[int, int]] = set()
    for triangle in triangles:
        for edge in edges_of(triangle):
            if edge in seen:
                return False
            seen.add(edge)
    return True


def node_visit_counts(triangles: Iterable[Iterable[int]]) -> Dict[int, int]:
    """How many triangles touch each node (= per-machine VM count)."""
    counts: Counter = Counter()
    for triangle in triangles:
        for node in normalize(triangle):
            counts[node] += 1
    return dict(counts)


def greedy_triangle_packing(n: int, capacity: int = None) -> List[Triangle]:
    """A simple deterministic greedy packer for arbitrary ``n``.

    Iterates triples in lexicographic order, accepting each whose edges
    are all unused (and whose nodes have residual capacity).  Not optimal,
    but a useful baseline and the fallback for n not ≡ 3 (mod 6).
    """
    used: Set[Tuple[int, int]] = set()
    load: Counter = Counter()
    packing: List[Triangle] = []
    for a in range(n):
        for b in range(a + 1, n):
            if (a, b) in used:
                continue
            for c in range(b + 1, n):
                if (a, b) in used:
                    break
                if (a, c) in used or (b, c) in used:
                    continue
                if capacity is not None and (
                        load[a] >= capacity or load[b] >= capacity
                        or load[c] >= capacity):
                    continue
                for edge in ((a, b), (a, c), (b, c)):
                    used.add(edge)
                for node in (a, b, c):
                    load[node] += 1
                packing.append((a, b, c))
    return packing
