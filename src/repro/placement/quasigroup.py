"""Idempotent commutative quasigroups of odd order.

The ingredient of Bose's Steiner-triple-system construction (paper
Theorem 2).  For odd order q the standard example is::

    a_i o a_j = ((i + j) * (q + 1) / 2)  mod q

which is idempotent (a o a = a), commutative, and a quasigroup (each
element appears exactly once in every row and column of the
multiplication table).
"""

from typing import List


class IdempotentCommutativeQuasigroup:
    """``(Q, o)`` with Q = {0, .., order-1}, order odd."""

    def __init__(self, order: int):
        if order < 1 or order % 2 == 0:
            raise ValueError(
                f"idempotent commutative quasigroups of this form require "
                f"odd order, got {order}"
            )
        self.order = order
        self._half = (order + 1) // 2  # multiplicative inverse of 2 mod q

    def op(self, i: int, j: int) -> int:
        """``a_i o a_j``."""
        if not (0 <= i < self.order and 0 <= j < self.order):
            raise ValueError(f"elements ({i}, {j}) out of range "
                             f"[0, {self.order})")
        return ((i + j) * self._half) % self.order

    def table(self) -> List[List[int]]:
        """The full multiplication table (order x order)."""
        return [[self.op(i, j) for j in range(self.order)]
                for i in range(self.order)]

    # -- property checks (used by tests and by validation at build time) --
    def is_idempotent(self) -> bool:
        return all(self.op(i, i) == i for i in range(self.order))

    def is_commutative(self) -> bool:
        return all(self.op(i, j) == self.op(j, i)
                   for i in range(self.order) for j in range(i, self.order))

    def is_quasigroup(self) -> bool:
        full = set(range(self.order))
        for i in range(self.order):
            if {self.op(i, j) for j in range(self.order)} != full:
                return False
            if {self.op(j, i) for j in range(self.order)} != full:
                return False
        return True

    def __repr__(self) -> str:
        return f"IdempotentCommutativeQuasigroup(order={self.order})"
