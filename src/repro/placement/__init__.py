"""Replica placement in the cloud (paper Sec. VIII).

StopWatch requires the three replicas of each guest VM to coreside with
nonoverlapping sets of (replicas of) other VMs.  Viewing machines as the
vertices of the complete graph ``K_n``, a guest VM's placement is a
triangle, and the constraint is that all triangles be pairwise
**edge-disjoint**.

- :mod:`repro.placement.triangles` -- Theorem 1 (maximum packing size),
  edge-disjointness verification, and a greedy packer for arbitrary n.
- :mod:`repro.placement.quasigroup` -- idempotent commutative quasigroups
  of odd order (the ingredient of Bose's construction).
- :mod:`repro.placement.bose` -- Bose's Steiner-triple-system groups
  ``G_0 .. G_v`` and the capacity-constrained Theorem 2 placement.
- :mod:`repro.placement.scheduler` -- an incremental placement scheduler
  a cloud operator would run, plus utilisation reporting.
"""

from repro.placement.triangles import (
    Triangle,
    max_triangle_packing_size,
    verify_edge_disjoint,
    node_visit_counts,
    greedy_triangle_packing,
)
from repro.placement.quasigroup import IdempotentCommutativeQuasigroup
from repro.placement.bose import bose_groups, theorem2_placement
from repro.placement.scheduler import (
    PlacementScheduler,
    PlacementError,
    fleet_for,
    utilization_report,
    UtilizationReport,
)

__all__ = [
    "Triangle",
    "max_triangle_packing_size",
    "verify_edge_disjoint",
    "node_visit_counts",
    "greedy_triangle_packing",
    "IdempotentCommutativeQuasigroup",
    "bose_groups",
    "theorem2_placement",
    "PlacementScheduler",
    "PlacementError",
    "fleet_for",
    "utilization_report",
    "UtilizationReport",
]
