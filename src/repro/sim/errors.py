"""Exception types raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class ProcessFailed(SimulationError):
    """A joined process terminated with an exception.

    The original exception is available as ``__cause__``.
    """

    def __init__(self, process, cause):
        super().__init__(f"process {process!r} failed: {cause!r}")
        self.process = process
        self.__cause__ = cause


class Interrupt(SimulationError):
    """Thrown into a process that another process interrupted.

    The interrupting party supplies an arbitrary ``cause`` object which the
    interrupted process can inspect to decide how to react.
    """

    def __init__(self, cause=None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class ChannelClosed(SimulationError):
    """Raised when getting from (or putting to) a closed channel."""
