"""Waitables: events, timeouts and composite conditions.

A *waitable* is anything a process may ``yield``.  The contract is small:

- ``add_callback(fn)`` -- call ``fn(waitable)`` once triggered (immediately
  if already triggered);
- ``triggered`` -- whether it has fired;
- ``value`` -- the value delivered to the waiter;
- ``ok`` -- False when the waitable carries a failure, in which case
  ``value`` is the exception to raise in the waiter.
"""

from typing import Callable, List, Optional

from repro.sim.errors import SimulationError


class Event:
    """A one-shot event that processes can wait on.

    Trigger with :meth:`trigger` (success) or :meth:`fail` (propagates the
    exception into every waiter).  Triggering twice is an error; this
    catches protocol bugs early.
    """

    __slots__ = ("sim", "triggered", "ok", "value", "_callbacks")

    def __init__(self, sim):
        self.sim = sim
        self.triggered = False
        self.ok = True
        self.value = None
        self._callbacks: List[Callable] = []

    def add_callback(self, fn: Callable) -> None:
        if self.triggered:
            self.sim.call_soon(fn, self)
        else:
            self._callbacks.append(fn)

    def remove_callback(self, fn: Callable) -> None:
        if fn in self._callbacks:
            self._callbacks.remove(fn)

    def trigger(self, value=None) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.call_soon(fn, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self.triggered = True
        self.ok = False
        self.value = exception
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.call_soon(fn, self)
        return self

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that self-triggers ``delay`` seconds after creation."""

    __slots__ = ("delay", "_call")

    def __init__(self, sim, delay: float, value=None):
        # inlined Event.__init__: Timeouts are created once per engine
        # quantum, so the super() dispatch is measurable
        self.sim = sim
        self.triggered = False
        self.ok = True
        self.value = None
        self._callbacks = []
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay
        self._call = sim.call_at(sim.now + delay, self._fire, value)

    def _fire(self, value) -> None:
        # inlined trigger(): fires once per engine quantum, and the
        # triggered guard above already covers the double-trigger error
        if not self.triggered:
            self.triggered = True
            self.value = value
            callbacks = self._callbacks
            if callbacks:
                self._callbacks = []
                sim = self.sim
                for fn in callbacks:
                    sim.call_soon(fn, self)

    def cancel(self) -> None:
        """Cancel the pending timeout (no effect once triggered)."""
        self._call.cancel()


class Condition(Event):
    """Base for composite waitables over several child waitables."""

    __slots__ = ("children",)

    def __init__(self, sim, children):
        super().__init__(sim)
        self.children = list(children)
        if not self.children:
            raise SimulationError("condition over zero waitables")
        for child in self.children:
            child.add_callback(self._child_fired)

    def _child_fired(self, child) -> None:
        raise NotImplementedError


class AnyOf(Condition):
    """Triggers when the first child triggers.

    ``value`` is a dict mapping every already-triggered child to its value,
    so a racer can tell which waitable(s) won.
    """

    __slots__ = ()

    def _child_fired(self, child) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        fired = {c: c.value for c in self.children if c.triggered and c.ok}
        self.trigger(fired)


class AllOf(Condition):
    """Triggers once every child has triggered.

    ``value`` is a dict mapping each child to its value.
    """

    __slots__ = ()

    def _child_fired(self, child) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        if all(c.triggered for c in self.children):
            self.trigger({c: c.value for c in self.children})


def first_of(sim, *waitables) -> AnyOf:
    """Convenience wrapper: ``yield first_of(sim, a, b, c)``."""
    return AnyOf(sim, waitables)
