"""Tracing and metric collection for experiment harnesses.

The observability layer has three pieces:

- :class:`Trace` -- a category-indexed event recorder.  Records are
  bucketed per category at :meth:`Trace.record` time, so
  :meth:`Trace.select` / :meth:`Trace.times` / :meth:`Trace.count` cost
  O(matching categories + matching records) instead of a scan over the
  whole run.  Category whitelists and queries use hierarchical
  dotted-prefix semantics (``"vmm.inject"`` matches ``"vmm.inject"``
  and ``"vmm.inject.net"`` but not ``"vmm.injector"``).  Each bucket is
  a ring buffer with an optional cap, so tracing can stay enabled on
  million-event runs with bounded memory; evicted records are tallied
  in :attr:`Trace.dropped`.
- :class:`JsonlSink` -- a streaming subscriber that writes every
  admitted record as one JSON line; :meth:`Trace.export` dumps the
  retained records the same way after the fact.
- :class:`MetricSet` -- counters, gauges-as-sums and observation
  streams.  Observations feed a log-bucketed :class:`Histogram`, so
  :meth:`MetricSet.snapshot` reports min/max/mean and p50/p95/p99 for
  every metric with bounded memory.
"""

import heapq
import json
import math
import sys
from collections import defaultdict, deque
from typing import (Any, Callable, Dict, Iterable, Iterator, List,
                    NamedTuple, Optional, Sequence, Tuple)


class TraceRecord(NamedTuple):
    """One trace entry: (simulated time, category string, payload dict).

    ``seq`` is a trace-global sequence number assigned at record time; it
    gives a total order across category buckets (records within a bucket
    are already in order).
    """

    time: float
    category: str
    payload: dict
    seq: int = 0


def category_matches(prefix: str, category: str) -> bool:
    """Hierarchical dotted-prefix match.

    ``"vmm.inject"`` matches ``"vmm.inject"`` and ``"vmm.inject.net"``
    but not ``"vmm.injector"``.  The empty prefix matches everything.
    """
    if not prefix:
        return True
    return category == prefix or category.startswith(prefix + ".")


class CategoryFilter:
    """A whitelist of dotted category prefixes."""

    __slots__ = ("prefixes",)

    def __init__(self, prefixes: Iterable[str]):
        self.prefixes: Tuple[str, ...] = tuple(sorted(set(prefixes)))

    def admits(self, category: str) -> bool:
        return any(category_matches(p, category) for p in self.prefixes)

    def __repr__(self) -> str:
        return f"CategoryFilter({list(self.prefixes)!r})"


#: cache sentinel: "category not seen yet" (``None`` means "filtered out")
_UNSET = object()


class Trace:
    """An in-memory, category-indexed, optionally bounded event recorder.

    Components call :meth:`record`; experiment code pulls entries back out
    with :meth:`select`.  Categories are free-form dotted strings, e.g.
    ``"vmm.inject.net"`` or ``"egress.release"``.

    ``categories`` limits recording to a whitelist of dotted prefixes
    (hierarchical: whitelisting ``"vmm"`` records every ``vmm.*``
    category).  ``max_per_category`` turns each category bucket into a
    ring buffer: once full, the oldest record in that category is evicted
    and counted in :attr:`dropped` / :attr:`dropped_by_category`, so a
    long run holds at most ``cap * live-categories`` records.
    """

    def __init__(self, enabled: bool = True,
                 categories: Optional[Iterable[str]] = None,
                 max_per_category: Optional[int] = None):
        if max_per_category is not None and max_per_category <= 0:
            raise ValueError(
                f"max_per_category must be positive, got {max_per_category}")
        self.enabled = enabled
        self.categories = (None if categories is None
                           else CategoryFilter(categories))
        self.max_per_category = max_per_category
        self.dropped: int = 0
        self.dropped_by_category: Dict[str, int] = defaultdict(int)
        self._buckets: Dict[str, deque] = {}
        self._admitted: Dict[str, Optional[deque]] = {}
        self._query_cache: Dict[str, List[deque]] = {}
        self._seq: int = 0
        self._subscribers: List[Callable] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _admit(self, category: str) -> Optional[deque]:
        """Create (and cache) the bucket for ``category``, or cache a
        ``None`` verdict when the whitelist filters it out."""
        # intern the category so every later memo lookup for the same
        # literal hits the identity fast path in the dict probe
        category = sys.intern(category)
        if self.categories is not None \
                and not self.categories.admits(category):
            self._admitted[category] = None
            return None
        bucket = deque(maxlen=self.max_per_category)
        self._buckets[category] = bucket
        self._admitted[category] = bucket
        self._query_cache.clear()    # new category may match old queries
        return bucket

    def wants(self, category: str) -> bool:
        """True when a record in ``category`` would be retained.

        The cheap guard for callers whose payloads are expensive to
        build: ``if trace.wants("x.y"): trace.record(now, "x.y", ...)``.
        Disabled tracing or a filtered category costs one dict probe.
        """
        if not self.enabled:
            return False
        bucket = self._admitted.get(category, _UNSET)
        if bucket is _UNSET:
            bucket = self._admit(category)
        return bucket is not None

    def record(self, time: float, category: str, **payload: Any) -> None:
        if not self.enabled:
            return
        bucket = self._admitted.get(category, _UNSET)
        if bucket is _UNSET:
            bucket = self._admit(category)
        if bucket is None:
            return
        entry = TraceRecord(time, category, payload, self._seq)
        self._seq += 1
        if bucket.maxlen is not None and len(bucket) == bucket.maxlen:
            self.dropped += 1
            self.dropped_by_category[category] += 1
        bucket.append(entry)
        for fn in self._subscribers:
            fn(entry)

    def record_lazy(self, time: float, category: str,
                    payload_fn: Callable[[], dict]) -> None:
        """Like :meth:`record`, but ``payload_fn`` builds the payload
        dict only if the category is actually admitted -- use when the
        payload itself is expensive to construct."""
        if not self.enabled:
            return
        bucket = self._admitted.get(category, _UNSET)
        if bucket is _UNSET:
            bucket = self._admit(category)
        if bucket is None:
            return
        entry = TraceRecord(time, category, payload_fn(), self._seq)
        self._seq += 1
        if bucket.maxlen is not None and len(bucket) == bucket.maxlen:
            self.dropped += 1
            self.dropped_by_category[category] += 1
        bucket.append(entry)
        for fn in self._subscribers:
            fn(entry)

    def subscribe(self, fn: Callable) -> Callable:
        """Stream records to ``fn(record)`` as they are made; returns
        ``fn`` so callers can :meth:`unsubscribe` it later."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable) -> None:
        self._subscribers.remove(fn)

    # ------------------------------------------------------------------
    # queries -- all prefix-aware and O(categories + matches)
    # ------------------------------------------------------------------
    def _matching_buckets(self, prefix: str) -> List[deque]:
        buckets = self._query_cache.get(prefix)
        if buckets is None:
            buckets = [bucket
                       for category, bucket in self._buckets.items()
                       if category_matches(prefix, category)]
            self._query_cache[prefix] = buckets
        return buckets

    def iter_records(self, category: str = "",
                     **filters: Any) -> Iterator[TraceRecord]:
        """Records under the ``category`` prefix whose payload matches
        every filter, in record order (by global sequence number)."""
        buckets = self._matching_buckets(category)
        if len(buckets) == 1:
            merged: Iterable[TraceRecord] = buckets[0]
        else:
            merged = heapq.merge(*buckets, key=lambda r: r.seq)
        if filters:
            for rec in merged:
                if all(rec.payload.get(k) == v
                       for k, v in filters.items()):
                    yield rec
        else:
            yield from merged

    def select(self, category: str, **filters: Any) -> List[TraceRecord]:
        """Records under the ``category`` prefix whose payload matches
        every filter."""
        return list(self.iter_records(category, **filters))

    def times(self, category: str, **filters: Any) -> List[float]:
        return [r.time for r in self.iter_records(category, **filters)]

    def count(self, category: str, **filters: Any) -> int:
        if not filters:
            return sum(len(b) for b in self._matching_buckets(category))
        return sum(1 for _ in self.iter_records(category, **filters))

    def counts(self) -> Dict[str, int]:
        """Retained record count per exact category."""
        return {category: len(bucket)
                for category, bucket in sorted(self._buckets.items())
                if bucket}

    @property
    def records(self) -> List[TraceRecord]:
        """All retained records in record order (merged across buckets)."""
        return list(self.iter_records())

    def clear(self) -> None:
        for bucket in self._buckets.values():
            bucket.clear()
        self.dropped = 0
        self.dropped_by_category.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"<Trace {state} records={len(self)} "
                f"categories={len(self._buckets)} dropped={self.dropped}>")

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export(self, path: str, category: str = "",
               **filters: Any) -> int:
        """Write retained records under the ``category`` prefix to
        ``path`` as JSON lines; returns the number written.

        Schema (one object per line)::

            {"time": 1.25, "seq": 7, "category": "vmm.emit",
             "payload": {"vm": "echo", "replica": 0}}
        """
        from repro.ioutil import atomic_writer

        written = 0
        with atomic_writer(path) as handle:
            for rec in self.iter_records(category, **filters):
                handle.write(_record_to_json(rec))
                handle.write("\n")
                written += 1
        return written


def _sanitize(value, _depth: int = 0):
    """Force a payload value into JSON-encodable shape: containers are
    rebuilt with string keys, anything non-primitive becomes ``str``.
    The depth cap breaks cycles (json.dumps would raise ValueError)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if _depth < 8:
        if isinstance(value, dict):
            return {str(k): _sanitize(v, _depth + 1)
                    for k, v in value.items()}
        if isinstance(value, (list, tuple, set, frozenset)):
            return [_sanitize(v, _depth + 1) for v in value]
    return str(value)


def _record_to_json(record: TraceRecord) -> str:
    doc = {"time": record.time, "seq": record.seq,
           "category": record.category, "payload": record.payload}
    try:
        return json.dumps(doc, default=str, separators=(",", ":"))
    except (TypeError, ValueError):
        # non-string dict keys or a reference cycle: ``default`` never
        # fires for those, so rebuild the payload instead of crashing
        # mid-export
        doc["payload"] = _sanitize(record.payload)
        return json.dumps(doc, default=str, separators=(",", ":"))


class JsonlSink:
    """A streaming subscriber writing one JSON line per trace record.

    Unlike :meth:`Trace.export` (a post-hoc dump of whatever the ring
    buffers retained), a sink sees every admitted record, including ones
    later evicted.  Usable as a context manager::

        with JsonlSink("run.jsonl", trace) as sink:
            sim.run(until=10.0)
        print(sink.written)

    Records stream into a temp file that only replaces ``path`` on
    :meth:`close` -- a run that dies mid-stream never leaves a
    truncated file at the destination.
    """

    def __init__(self, path: str, trace: Optional[Trace] = None):
        from repro.ioutil import AtomicWriter

        self.path = path
        self.written = 0
        self._writer = AtomicWriter(path)
        self._trace = trace
        if trace is not None:
            trace.subscribe(self)

    def __call__(self, record: TraceRecord) -> None:
        self._writer.write(_record_to_json(record))
        self._writer.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._trace is not None:
            self._trace.unsubscribe(self)
            self._trace = None
        self._writer.commit()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Histogram:
    """A log-bucketed histogram with bounded memory.

    Positive values land in geometric buckets (``growth`` per step, ~2%
    relative error at the default); zero and negative values get their
    own (mirrored) buckets.  Count, sum, min and max are exact; only the
    percentile estimate is quantised to bucket resolution.
    """

    __slots__ = ("growth", "_log_growth", "count", "total", "min", "max",
                 "zeros", "_pos", "_neg")

    def __init__(self, growth: float = 1.04):
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1.0, got {growth}")
        self.growth = growth
        self._log_growth = math.log(growth)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zeros = 0
        self._pos: Dict[int, int] = defaultdict(int)
        self._neg: Dict[int, int] = defaultdict(int)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0:
            self._pos[int(math.floor(math.log(value)
                                     / self._log_growth))] += 1
        elif value < 0:
            self._neg[int(math.floor(math.log(-value)
                                     / self._log_growth))] += 1
        else:
            self.zeros += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _bucket_mid(self, index: int) -> float:
        low = self.growth ** index
        return math.sqrt(low * (low * self.growth))   # geometric midpoint

    def percentile(self, p: float) -> float:
        """Estimated value at percentile ``p`` (0..100)."""
        if not self.count:
            raise ValueError("percentile of an empty histogram")
        rank = max(1, math.ceil(self.count * min(max(p, 0.0), 100.0)
                                / 100.0))
        seen = 0
        for index in sorted(self._neg, reverse=True):   # most negative first
            seen += self._neg[index]
            if seen >= rank:
                return self._clamp(-self._bucket_mid(index))
        seen += self.zeros
        if self.zeros and seen >= rank:
            return 0.0
        for index in sorted(self._pos):
            seen += self._pos[index]
            if seen >= rank:
                return self._clamp(self._bucket_mid(index))
        return self.max

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min), self.max)

    def snapshot(self, percentiles: Sequence[float] = (50, 95, 99)) -> dict:
        if not self.count:
            return {"count": 0}
        stats = {"count": self.count, "min": self.min, "max": self.max,
                 "mean": self.mean}
        for p in percentiles:
            stats[f"p{p:g}"] = self.percentile(p)
        return stats

    def __repr__(self) -> str:
        return f"<Histogram count={self.count} mean={self.mean:.6g}>"


class MetricSet:
    """Counters, accumulators and observation streams keyed by name.

    Observed values feed both a bounded retained-sample list (exact
    percentiles for short runs) and a :class:`Histogram` (bounded-memory
    estimates for long ones).  Querying a metric that was never observed
    raises ``KeyError`` -- a typo'd name must not read as a plausible
    zero.
    """

    def __init__(self, max_samples_per_metric: int = 4096):
        self.counters = defaultdict(int)
        self.sums = defaultdict(float)
        self.samples = defaultdict(list)
        self.histograms: Dict[str, Histogram] = {}
        self.max_samples_per_metric = max_samples_per_metric

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def add(self, name: str, amount: float) -> None:
        self.sums[name] += amount

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)
        retained = self.samples[name]
        if len(retained) < self.max_samples_per_metric:
            retained.append(value)

    def _histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            raise KeyError(f"metric {name!r} was never observed") from None

    def mean(self, name: str) -> float:
        return self._histogram(name).mean

    def percentile(self, name: str, p: float) -> float:
        """Value at percentile ``p``: exact while every sample is
        retained, histogram-estimated once the retention cap is hit."""
        hist = self._histogram(name)
        retained = self.samples[name]
        if len(retained) == hist.count:
            ordered = sorted(retained)
            rank = max(1, math.ceil(len(ordered)
                                    * min(max(p, 0.0), 100.0) / 100.0))
            return ordered[rank - 1]
        return hist.percentile(p)

    def percentiles(self, name: str,
                    ps: Sequence[float] = (50, 95, 99)) -> Dict[str, float]:
        return {f"p{p:g}": self.percentile(name, p) for p in ps}

    def snapshot(self, percentiles: Sequence[float] = (50, 95, 99)) -> dict:
        """Everything, as plain data: counters, sums, and per-metric
        count/min/max/mean plus percentile estimates."""
        observations = {}
        for name, hist in self.histograms.items():
            stats = {"count": hist.count, "min": hist.min,
                     "max": hist.max, "mean": hist.mean}
            for p in percentiles:
                stats[f"p{p:g}"] = self.percentile(name, p)
            observations[name] = stats
        return {
            "counters": dict(self.counters),
            "sums": dict(self.sums),
            "sample_counts": {name: hist.count
                              for name, hist in self.histograms.items()},
            "observations": observations,
        }
