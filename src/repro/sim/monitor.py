"""Tracing and metric collection for experiment harnesses."""

from collections import defaultdict
from typing import Any, Callable, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    """One trace entry: (simulated time, category string, payload dict)."""

    time: float
    category: str
    payload: dict


class Trace:
    """An in-memory, filterable event recorder.

    Components call :meth:`record`; experiment code pulls entries back out
    with :meth:`select`.  Categories are free-form dotted strings, e.g.
    ``"vmm.inject.net"`` or ``"egress.release"``.  Recording can be limited
    to a category whitelist to keep long runs cheap.
    """

    def __init__(self, enabled: bool = True,
                 categories: Optional[set] = None):
        self.enabled = enabled
        self.categories = categories
        self.records: List[TraceRecord] = []
        self._subscribers: List[Callable] = []

    def record(self, time: float, category: str, **payload: Any) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        entry = TraceRecord(time, category, payload)
        self.records.append(entry)
        for fn in self._subscribers:
            fn(entry)

    def subscribe(self, fn: Callable) -> None:
        """Stream records to ``fn(record)`` as they are made."""
        self._subscribers.append(fn)

    def select(self, category: str, **filters: Any) -> List[TraceRecord]:
        """Records in ``category`` whose payload matches every filter."""
        out = []
        for rec in self.records:
            if rec.category != category:
                continue
            if all(rec.payload.get(k) == v for k, v in filters.items()):
                out.append(rec)
        return out

    def times(self, category: str, **filters: Any) -> List[float]:
        return [r.time for r in self.select(category, **filters)]

    def count(self, category: str, **filters: Any) -> int:
        return len(self.select(category, **filters))

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class MetricSet:
    """Simple counter/accumulator bag keyed by metric name."""

    def __init__(self):
        self.counters = defaultdict(int)
        self.sums = defaultdict(float)
        self.samples = defaultdict(list)

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def add(self, name: str, amount: float) -> None:
        self.sums[name] += amount

    def observe(self, name: str, value: float) -> None:
        self.samples[name].append(value)

    def mean(self, name: str) -> float:
        values = self.samples[name]
        return sum(values) / len(values) if values else 0.0

    def snapshot(self) -> dict:
        return {
            "counters": dict(self.counters),
            "sums": dict(self.sums),
            "sample_counts": {k: len(v) for k, v in self.samples.items()},
        }
