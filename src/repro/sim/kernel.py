"""The event loop: a classic calendar-queue discrete-event simulator.

Time is a float in **seconds of simulated real (wall-clock) time**.  All
higher layers (virtual time inside guests, virtual device clocks) are
derived quantities computed by the VMM; the kernel itself only ever deals
in real time.

Scheduling is deterministic: events at the same timestamp fire in the order
they were scheduled (FIFO tie-break via a monotonically increasing sequence
number), so a simulation with fixed RNG seeds is exactly reproducible.
"""

import heapq
from typing import Callable, Optional

from repro.sim.errors import SimulationError


class ScheduledCall:
    """A handle to a scheduled callback; supports cancellation.

    Instances are created by :meth:`Simulator.call_at` /
    :meth:`Simulator.call_after` and compare by (time, sequence) so they can
    live directly in the heap.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self.cancelled = True
        self.fn = None
        self.args = ()

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """The discrete-event loop.

    Usage::

        sim = Simulator(seed=7)
        sim.process(my_generator_fn(sim))
        sim.run(until=10.0)

    The ``seed`` feeds the simulator's :class:`~repro.sim.rng.RngRegistry`,
    exposed as :attr:`rng`; components ask for named streams so that adding
    a new component never perturbs the draws of existing ones.
    """

    def __init__(self, seed: int = 0, trace=None):
        from repro.sim.rng import RngRegistry
        from repro.sim.monitor import Trace

        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Trace()
        self.event_count: int = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable, *args) -> ScheduledCall:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        call = ScheduledCall(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, call)
        return call

    def call_after(self, delay: float, fn: Callable, *args) -> ScheduledCall:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_soon(self, fn: Callable, *args) -> ScheduledCall:
        """Schedule ``fn(*args)`` at the current time (after pending events
        already scheduled for this instant)."""
        return self.call_at(self.now, fn, *args)

    # ------------------------------------------------------------------
    # processes and waitables
    # ------------------------------------------------------------------
    def process(self, generator, name: Optional[str] = None):
        """Start a generator as a :class:`~repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def timeout(self, delay: float, value=None):
        """Return an :class:`~repro.sim.events.Timeout` waitable."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def event(self):
        """Return a fresh, untriggered :class:`~repro.sim.events.Event`."""
        from repro.sim.events import Event

        return Event(self)

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run a single event; return False when the queue is empty."""
        while self._heap:
            call = heapq.heappop(self._heap)
            if call.cancelled:
                continue
            self.now = call.time
            self.event_count += 1
            fn, args = call.fn, call.args
            call.fn, call.args = None, ()  # break reference cycles
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` events have fired (whichever comes first).

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return (even if the queue drained earlier), which makes
        measurement windows line up across runs.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        budget = max_events
        try:
            while self._heap and not self._stopped:
                if until is not None and self._heap[0].time > until:
                    break
                if budget is not None:
                    if budget <= 0:
                        break
                    budget -= 1
                self.step()
            if until is not None and until > self.now and not self._stopped:
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired (possibly cancelled) scheduled calls."""
        return len(self._heap)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __repr__(self) -> str:
        return f"<Simulator now={self.now:.6f} pending={len(self._heap)}>"
