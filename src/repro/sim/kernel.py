"""The event loop: a classic calendar-queue discrete-event simulator.

Time is a float in **seconds of simulated real (wall-clock) time**.  All
higher layers (virtual time inside guests, virtual device clocks) are
derived quantities computed by the VMM; the kernel itself only ever deals
in real time.

Scheduling is deterministic: events at the same timestamp fire in the order
they were scheduled (FIFO tie-break via a monotonically increasing sequence
number), so a simulation with fixed RNG seeds is exactly reproducible.
"""

import heapq
import time as _time
from typing import Callable, Dict, List, Optional

from repro.sim.errors import SimulationError


class ScheduledCall:
    """A handle to a scheduled callback; supports cancellation.

    Instances are created by :meth:`Simulator.call_at` /
    :meth:`Simulator.call_after` and compare by (time, sequence) so they can
    live directly in the heap.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "owner")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple,
                 owner: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self.owner = owner

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        self.fn = None
        self.args = ()
        if self.owner is not None:
            self.owner._cancelled_pending += 1

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = ("cancelled" if self.cancelled
                 else "fired" if self.fired else "pending")
        return f"<ScheduledCall t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """The discrete-event loop.

    Usage::

        sim = Simulator(seed=7)
        sim.process(my_generator_fn(sim))
        sim.run(until=10.0)

    The ``seed`` feeds the simulator's :class:`~repro.sim.rng.RngRegistry`,
    exposed as :attr:`rng`; components ask for named streams so that adding
    a new component never perturbs the draws of existing ones.

    With ``profile=True`` every callback's host wall time is accumulated
    per callback qualname (see :meth:`stats`); the default keeps the hot
    loop unintrumented.
    """

    def __init__(self, seed: int = 0, trace=None, profile: bool = False):
        from repro.sim.rng import RngRegistry
        from repro.sim.monitor import MetricSet, Trace
        from repro.obs.flows import FlowTracker

        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._cancelled_pending: int = 0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Trace()
        #: simulation-wide counters/observations (fault and recovery
        #: bookkeeping records here even when tracing is disabled)
        self.metrics = MetricSet()
        #: causal flow/span tracking (repro.obs); off by default -- every
        #: pipeline hook is a single predicate test until enabled
        self.flows = FlowTracker(enabled=False)
        self.event_count: int = 0
        self.cancelled_count: int = 0
        self.heap_high_water: int = 0
        self.wall_seconds: float = 0.0
        self.profile = profile
        self.profile_stats: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable, *args) -> ScheduledCall:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        call = ScheduledCall(time, self._seq, fn, args, owner=self)
        self._seq += 1
        heapq.heappush(self._heap, call)
        if len(self._heap) > self.heap_high_water:
            self.heap_high_water = len(self._heap)
        return call

    def call_after(self, delay: float, fn: Callable, *args) -> ScheduledCall:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_soon(self, fn: Callable, *args) -> ScheduledCall:
        """Schedule ``fn(*args)`` at the current time (after pending events
        already scheduled for this instant)."""
        return self.call_at(self.now, fn, *args)

    # ------------------------------------------------------------------
    # processes and waitables
    # ------------------------------------------------------------------
    def process(self, generator, name: Optional[str] = None):
        """Start a generator as a :class:`~repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def timeout(self, delay: float, value=None):
        """Return an :class:`~repro.sim.events.Timeout` waitable."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def event(self):
        """Return a fresh, untriggered :class:`~repro.sim.events.Event`."""
        from repro.sim.events import Event

        return Event(self)

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def _drain_cancelled(self) -> None:
        """Discard cancelled entries at the head of the heap so the head,
        if any, is the next *live* event."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1
            self.cancelled_count += 1

    def step(self) -> bool:
        """Run a single live event; return False when none remain."""
        while self._heap:
            call = heapq.heappop(self._heap)
            if call.cancelled:
                self._cancelled_pending -= 1
                self.cancelled_count += 1
                continue
            self.now = call.time
            self.event_count += 1
            call.fired = True
            fn, args = call.fn, call.args
            call.fn, call.args = None, ()  # break reference cycles
            if self.profile:
                started = _time.perf_counter()
                fn(*args)
                elapsed = _time.perf_counter() - started
                key = getattr(fn, "__qualname__", None) or repr(fn)
                entry = self.profile_stats.get(key)
                if entry is None:
                    self.profile_stats[key] = [1, elapsed]
                else:
                    entry[0] += 1
                    entry[1] += elapsed
            else:
                fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` *live* events have fired (whichever comes first);
        returns the number of events fired by this call.

        Cancelled entries are discarded for free: they consume no event
        budget and never push the clock past ``until``.  When ``until``
        is given, the clock is advanced to exactly ``until`` on return
        (even if the queue drained earlier), which makes measurement
        windows line up across runs.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        fired = 0
        started = _time.perf_counter()
        try:
            while self._heap and not self._stopped:
                self._drain_cancelled()
                if not self._heap:
                    break
                if until is not None and self._heap[0].time > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                if self.step():
                    fired += 1
            if until is not None and until > self.now and not self._stopped:
                self.now = until
        finally:
            self._running = False
            self.wall_seconds += _time.perf_counter() - started
        return fired

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired live (non-cancelled) scheduled calls."""
        return len(self._heap) - self._cancelled_pending

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        self._drain_cancelled()
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def events_per_second(self) -> float:
        """Fired events per host wall-clock second across all runs."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.event_count / self.wall_seconds

    def stats(self) -> dict:
        """Event-loop health counters as plain data."""
        report = {
            "now": self.now,
            "events_fired": self.event_count,
            "events_cancelled": self.cancelled_count,
            "events_pending": self.pending_events,
            "heap_high_water": self.heap_high_water,
            "wall_seconds": self.wall_seconds,
            "events_per_second": self.events_per_second(),
            "trace_records": len(self.trace),
            "trace_dropped": getattr(self.trace, "dropped", 0),
            "metric_counters": dict(self.metrics.counters),
        }
        if self.profile:
            report["profile"] = {
                key: {"calls": calls, "seconds": seconds}
                for key, (calls, seconds)
                in sorted(self.profile_stats.items(),
                          key=lambda item: item[1][1], reverse=True)
            }
        return report

    def __repr__(self) -> str:
        return (f"<Simulator now={self.now:.6f} "
                f"pending={self.pending_events}>")
