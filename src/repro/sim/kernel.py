"""The event loop: a calendar-queue discrete-event simulator.

Time is a float in **seconds of simulated real (wall-clock) time**.  All
higher layers (virtual time inside guests, virtual device clocks) are
derived quantities computed by the VMM; the kernel itself only ever deals
in real time.

Scheduling is deterministic: events at the same timestamp fire in the order
they were scheduled (FIFO tie-break via a monotonically increasing sequence
number), so a simulation with fixed RNG seeds is exactly reproducible.

The scheduler is a three-tier calendar queue (see DESIGN.md):

- a **current batch**: the sorted entries of the time slot being drained,
  consumed by advancing an index (no per-event heap sift);
- **near-future buckets**: unsorted per-slot lists covering a sliding
  window of ``span_slots`` slots of ``bucket_width`` seconds each, found
  via a small heap of occupied slot indices and sorted once on first
  access (one Timsort per bucket instead of two heap sifts per event);
- a **far heap** holding everything beyond the window (long sweeps,
  scenario-end timers), drained into buckets when the window advances.

Entries are ``list`` subclasses laid out as ``[time, seq, fn, args,
state, owner]`` so every comparison the queue makes -- bucket sorts,
bisects of same-slot inserts, far-heap sifts -- runs on the C fast path
(``list.__lt__`` compares ``time`` then ``seq``; ``seq`` is unique, so
later elements are never reached).  Fire order is by ``(time, seq)``
regardless of which tier an entry sat in, which is what keeps the
calendar bit-identical to a plain binary heap (property-tested).
"""

import heapq
import time as _time
from bisect import insort
from typing import Callable, Dict, List, Optional

from repro.sim.errors import SimulationError

#: entry state machine: scheduled -> fired | cancelled
_PENDING, _FIRED, _CANCELLED = 0, 1, 2

#: default calendar geometry: 64 us slots, an 8192-slot (~0.5 s) window.
#: Dense fleets put tens of entries per slot; sparse runs jump occupied
#: slots via the slot heap, so empty slots are never visited.
DEFAULT_BUCKET_WIDTH = 64e-6
DEFAULT_SPAN_SLOTS = 8192

_INF = float("inf")


class ScheduledCall(list):
    """A handle to a scheduled callback; supports cancellation.

    Instances are created by :meth:`Simulator.call_at` /
    :meth:`Simulator.call_after`.  The handle *is* the queue entry: a
    list ``[time, seq, fn, args, state, owner]`` that compares by
    ``(time, seq)`` through C-level ``list`` comparison, so it can live
    directly in bucket lists and heaps with zero boxing.
    """

    __slots__ = ()

    # -- structured accessors (hot code indexes the list directly) -------
    @property
    def time(self) -> float:
        return self[0]

    @property
    def seq(self) -> int:
        return self[1]

    @property
    def cancelled(self) -> bool:
        return self[4] == _CANCELLED

    @property
    def fired(self) -> bool:
        return self[4] == _FIRED

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        if self[4] != _PENDING:
            return
        self[4] = _CANCELLED
        self[2] = None
        self[3] = ()
        owner = self[5]
        if owner is not None:
            owner._cancelled_pending += 1

    def __repr__(self) -> str:
        state = ("cancelled" if self[4] == _CANCELLED
                 else "fired" if self[4] == _FIRED else "pending")
        return f"<ScheduledCall t={self[0]:.6f} seq={self[1]} {state}>"


class PeriodicCall:
    """A self-rescheduling timer created by :meth:`Simulator.call_every`.

    Each recurrence draws a fresh sequence number at fire time -- the
    same FIFO position a hand-rolled ``call_after`` chain that
    reschedules *before* doing its work would get -- but the kernel
    reuses this one handle instead of allocating a new
    :class:`ScheduledCall` per cycle.
    """

    __slots__ = ("sim", "interval", "fn", "args", "_entry", "cancelled",
                 "fires")

    def __init__(self, sim: "Simulator", interval: float, fn: Callable,
                 args: tuple, start_at: float):
        if interval <= 0:
            raise SimulationError(
                f"periodic interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fires = 0
        self._entry = sim.call_at(start_at, self._tick)

    def _tick(self) -> None:
        if self.cancelled:
            return
        # reschedule first: the callback sees the next occurrence pending,
        # exactly like the reschedule-then-work call_after idiom
        self._entry = self.sim.call_at(self.sim.now + self.interval,
                                       self._tick)
        self.fires += 1
        self.fn(*self.args)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._entry.cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "active"
        return (f"<PeriodicCall every={self.interval:.6f} "
                f"fires={self.fires} {state}>")


class TimerWheel:
    """Batches many same-period recurring callbacks onto one kernel timer.

    A fleet schedules heartbeat/liveness timers by the hundreds, all with
    the same period.  Registering them here multiplexes every callback
    sharing a phase slot onto a single :class:`PeriodicCall`, so the
    kernel pays one queue entry per (period, phase) group per cycle
    instead of one per timer.  Within a slot, callbacks fire in
    registration order (deterministic); a callback returning ``False``
    unregisters itself.

    ``phase`` is the offset of the first fire from registration time
    (default: one full period, matching ``call_after(period, fn)``).
    """

    __slots__ = ("sim", "period", "_slots", "count")

    def __init__(self, sim: "Simulator", period: float):
        if period <= 0:
            raise SimulationError(
                f"wheel period must be positive, got {period}")
        self.sim = sim
        self.period = period
        #: first-fire time -> (PeriodicCall, [callbacks])
        self._slots: Dict[float, tuple] = {}
        self.count = 0

    def add(self, fn: Callable, *args, phase: Optional[float] = None):
        """Register ``fn(*args)`` to run every ``period`` seconds."""
        if phase is None:
            phase = self.period
        if phase < 0:
            raise SimulationError(f"negative wheel phase: {phase}")
        first = self.sim.now + phase
        slot = self._slots.get(first)
        if slot is None:
            callbacks: list = []
            timer = PeriodicCall(self.sim, self.period, self._fire,
                                 (callbacks,), first)
            self._slots[first] = slot = (timer, callbacks)
        slot[1].append((fn, args))
        self.count += 1
        return (slot, (fn, args))

    def remove(self, token) -> None:
        """Unregister a callback by the token :meth:`add` returned."""
        slot, entry = token
        try:
            slot[1].remove(entry)
        except ValueError:
            return
        self.count -= 1
        if not slot[1]:
            slot[0].cancel()
            for first, existing in list(self._slots.items()):
                if existing is slot:
                    del self._slots[first]
                    break

    def _fire(self, callbacks: list) -> None:
        # iterate over a snapshot: callbacks may unregister themselves
        for entry in tuple(callbacks):
            fn, args = entry
            if fn(*args) is False:
                try:
                    callbacks.remove(entry)
                except ValueError:
                    pass
                else:
                    self.count -= 1

    def __repr__(self) -> str:
        return (f"<TimerWheel period={self.period:.6f} "
                f"timers={self.count} slots={len(self._slots)}>")


class Simulator:
    """The discrete-event loop.

    Usage::

        sim = Simulator(seed=7)
        sim.process(my_generator_fn(sim))
        sim.run(until=10.0)

    The ``seed`` feeds the simulator's :class:`~repro.sim.rng.RngRegistry`,
    exposed as :attr:`rng`; components ask for named streams so that adding
    a new component never perturbs the draws of existing ones.

    With ``profile=True`` every callback's host wall time is accumulated
    by a :class:`~repro.prof.profiler.SubsystemProfiler` (exposed as
    :attr:`profiler`; pass an instance instead of ``True`` to tune the
    timeline geometry).  :meth:`stats` then reports per-callback and
    per-subsystem attribution; the default keeps the hot loop
    uninstrumented.  Profiling is measurement-only: event order, RNG
    draws and every trace are byte-identical with it on or off.

    ``bucket_width``/``span_slots`` tune the calendar geometry (seconds
    per slot, slots per window); the defaults suit the fleet benchmarks
    and fire order never depends on them.
    """

    def __init__(self, seed: int = 0, trace=None, profile: bool = False,
                 bucket_width: float = DEFAULT_BUCKET_WIDTH,
                 span_slots: int = DEFAULT_SPAN_SLOTS):
        from repro.sim.rng import RngRegistry
        from repro.sim.monitor import MetricSet, Trace
        from repro.sim.events import Event, Timeout
        from repro.obs.flows import FlowTracker

        if bucket_width <= 0:
            raise SimulationError(
                f"bucket_width must be positive, got {bucket_width}")
        if span_slots < 2:
            raise SimulationError(
                f"span_slots must be >= 2, got {span_slots}")

        self.now: float = 0.0
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._cancelled_pending: int = 0

        # calendar state (see module docstring)
        self._width = bucket_width
        self._inv_width = 1.0 / bucket_width
        self._span = span_slots
        self._cur: list = []          # sorted entries of the current slot
        self._cur_pos: int = 0
        self._cur_slot: int = 0
        self._cur_end: float = bucket_width      # (cur_slot + 1) * width
        self._buckets: Dict[int, list] = {}
        self._slot_heap: List[int] = []
        self._horizon_slot: int = span_slots
        self._horizon: float = span_slots * bucket_width
        self._far: list = []
        self._size: int = 0           # queued entries, incl. cancelled
        self._wheels: Dict[float, TimerWheel] = {}

        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Trace()
        #: simulation-wide counters/observations (fault and recovery
        #: bookkeeping records here even when tracing is disabled)
        self.metrics = MetricSet()
        #: causal flow/span tracking (repro.obs); off by default -- every
        #: pipeline hook is a single predicate test until enabled
        self.flows = FlowTracker(enabled=False)
        self.event_count: int = 0
        self.cancelled_count: int = 0
        self.heap_high_water: int = 0
        self.bucket_high_water: int = 0
        self.far_high_water: int = 0
        self.wall_seconds: float = 0.0
        self.profile = bool(profile)
        #: subsystem-attributed profiler (repro.prof), present only when
        #: profiling -- measurement only, never perturbs event order
        self.profiler = None
        if self.profile:
            from repro.prof.profiler import SubsystemProfiler
            self.profiler = (profile if isinstance(profile,
                                                   SubsystemProfiler)
                             else SubsystemProfiler())
        # cached classes: the hot paths must not pay import-machinery
        # lookups per call (Timeout is created ~1e5 times per sim second)
        self._event_cls = Event
        self._timeout_cls = Timeout

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable, *args) -> ScheduledCall:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``."""
        if not time >= self.now:     # also catches NaN
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = ScheduledCall((time, seq, fn, args, 0, self))
        if time < self._cur_end:
            # lands in the slot being drained: ordered insert after the
            # consumption point (C bisect; entries compare by (time, seq))
            insort(self._cur, entry, self._cur_pos)
        elif time < self._horizon:
            slot = int(time * self._inv_width)
            bucket = self._buckets.get(slot)
            if bucket is None:
                self._buckets[slot] = [entry]
                heapq.heappush(self._slot_heap, slot)
            else:
                bucket.append(entry)
        else:
            heapq.heappush(self._far, entry)
            far_size = len(self._far)
            if far_size > self.far_high_water:
                self.far_high_water = far_size
        size = self._size + 1
        self._size = size
        if size > self.heap_high_water:
            self.heap_high_water = size
        return entry

    def call_after(self, delay: float, fn: Callable, *args) -> ScheduledCall:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_soon(self, fn: Callable, *args) -> ScheduledCall:
        """Schedule ``fn(*args)`` at the current time (after pending events
        already scheduled for this instant)."""
        # specialised call_at(now, ...): the past-check cannot fail, and
        # now always lands in the current batch (mid-run now < _cur_end;
        # after a drained run the batch degenerates to an append)
        seq = self._seq
        self._seq = seq + 1
        entry = ScheduledCall((self.now, seq, fn, args, 0, self))
        insort(self._cur, entry, self._cur_pos)
        size = self._size + 1
        self._size = size
        if size > self.heap_high_water:
            self.heap_high_water = size
        return entry

    def call_every(self, interval: float, fn: Callable, *args,
                   start_after: Optional[float] = None) -> PeriodicCall:
        """Run ``fn(*args)`` every ``interval`` seconds (first fire after
        ``start_after``, default one interval).  Returns a cancellable
        :class:`PeriodicCall` that reuses its kernel entry per cycle."""
        first = self.now + (interval if start_after is None else start_after)
        if first < self.now:
            raise SimulationError(f"negative start_after: {start_after}")
        return PeriodicCall(self, interval, fn, args, first)

    def timer_wheel(self, period: float) -> TimerWheel:
        """A :class:`TimerWheel` batching same-``period`` recurring
        callbacks onto shared kernel timers."""
        return TimerWheel(self, period)

    def shared_wheel(self, period: float) -> TimerWheel:
        """The simulation-wide :class:`TimerWheel` for ``period``.

        Components with the same recurring period (heartbeats, liveness
        sweeps) register here so in-phase timers across the whole fleet
        share one kernel entry per cycle instead of one each.
        """
        wheel = self._wheels.get(period)
        if wheel is None:
            self._wheels[period] = wheel = TimerWheel(self, period)
        return wheel

    # ------------------------------------------------------------------
    # processes and waitables
    # ------------------------------------------------------------------
    def process(self, generator, name: Optional[str] = None):
        """Start a generator as a :class:`~repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def timeout(self, delay: float, value=None):
        """Return an :class:`~repro.sim.events.Timeout` waitable."""
        return self._timeout_cls(self, delay, value)

    def event(self):
        """Return a fresh, untriggered :class:`~repro.sim.events.Event`."""
        return self._event_cls(self)

    # ------------------------------------------------------------------
    # the calendar
    # ------------------------------------------------------------------
    def _advance(self) -> bool:
        """Make ``self._cur[self._cur_pos]`` the next live entry.

        Returns False when the queue holds no live entries.  Cancelled
        entries are discarded (and counted) on the way; drained buckets
        are dropped, and the window is advanced over the far heap when
        the near-future tiers run dry.
        """
        while True:
            cur = self._cur
            pos = self._cur_pos
            n = len(cur)
            while pos < n:
                if cur[pos][4] == _PENDING:
                    self._cur_pos = pos
                    return True
                # cancelled entry: discard for free
                pos += 1
                self._size -= 1
                self._cancelled_pending -= 1
                self.cancelled_count += 1
            self._cur_pos = pos
            slot_heap = self._slot_heap
            if slot_heap:
                slot = heapq.heappop(slot_heap)
                bucket = self._buckets.pop(slot)
                bucket.sort()
                if len(bucket) > self.bucket_high_water:
                    self.bucket_high_water = len(bucket)
                self._cur = bucket
                self._cur_pos = 0
                self._cur_slot = slot
                self._cur_end = (slot + 1) * self._width
                continue
            far = self._far
            if far:
                head_time = far[0][0]
                if head_time == _INF:
                    # everything left is at t=inf: heap order is already
                    # (time, seq) order; drain it as one final batch
                    batch = [heapq.heappop(far) for _ in range(len(far))]
                    self._cur = batch
                    self._cur_pos = 0
                    self._cur_end = _INF
                    continue
                head_slot = int(head_time * self._inv_width)
                self._horizon_slot = head_slot + self._span
                self._horizon = self._horizon_slot * self._width
                horizon = self._horizon
                buckets = self._buckets
                inv_width = self._inv_width
                while far and far[0][0] < horizon:
                    entry = heapq.heappop(far)
                    slot = int(entry[0] * inv_width)
                    bucket = buckets.get(slot)
                    if bucket is None:
                        buckets[slot] = [entry]
                        heapq.heappush(slot_heap, slot)
                    else:
                        bucket.append(entry)
                continue
            return False

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run a single live event; return False when none remain."""
        if not self._advance():
            return False
        entry = self._cur[self._cur_pos]
        self._cur_pos += 1
        self._size -= 1
        self.now = entry[0]
        self.event_count += 1
        entry[4] = _FIRED
        fn = entry[2]
        args = entry[3]
        entry[2] = None
        entry[3] = ()
        entry[5] = None   # break reference cycles (incl. entry->simulator)
        if self.profiler is not None:
            started = _time.perf_counter()
            fn(*args)
            self.profiler.record(fn, _time.perf_counter() - started,
                                 self.now, self._size)
        else:
            fn(*args)
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` *live* events have fired (whichever comes first);
        returns the number of events fired by this call.

        Cancelled entries are discarded for free: they consume no event
        budget and never push the clock past ``until``.  When ``until``
        is given and **no live event at or before it remains**, the
        clock is advanced to exactly ``until`` on return, which makes
        measurement windows line up across runs.  Live events still due
        at or before ``until`` (left by ``max_events`` or ``stop()``)
        pin the clock instead -- advancing past them would rewind time
        on the next ``run()`` and make their schedules "in the past".
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        fired = 0
        started = _time.perf_counter()
        profile = self.profile
        try:
            if max_events is None and not profile:
                fired = self._run_fast(until)
            else:
                while not self._stopped:
                    if max_events is not None and fired >= max_events:
                        break
                    if not self._advance():
                        break
                    if until is not None \
                            and self._cur[self._cur_pos][0] > until:
                        break
                    self.step()
                    fired += 1
            if until is not None and until > self.now and not self._stopped:
                if not self._advance() or self._cur[self._cur_pos][0] > until:
                    self.now = until
        finally:
            self._running = False
            self.wall_seconds += _time.perf_counter() - started
        return fired

    def _run_fast(self, until: Optional[float]) -> int:
        """The unbudgeted, unprofiled hot loop: inlined :meth:`step` with
        the live-head common case of :meth:`_advance` folded in."""
        fired = 0
        bound = _INF if until is None else until
        advance = self._advance
        while not self._stopped:
            cur = self._cur
            pos = self._cur_pos
            if pos >= len(cur) or cur[pos][4] != _PENDING:
                if not advance():
                    break
                cur = self._cur
                pos = self._cur_pos
            entry = cur[pos]
            time = entry[0]
            if time > bound:
                break
            self._cur_pos = pos + 1
            self._size -= 1
            self.now = time
            entry[4] = _FIRED
            fn = entry[2]
            args = entry[3]
            entry[2] = None
            entry[3] = ()
            entry[5] = None   # break the entry->simulator cycle for the GC
            fn(*args)
            fired += 1
        self.event_count += fired
        return fired

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired live (non-cancelled) scheduled calls."""
        return self._size - self._cancelled_pending

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        if not self._advance():
            return None
        return self._cur[self._cur_pos][0]

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def events_per_second(self) -> float:
        """Fired events per host wall-clock second across all runs."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.event_count / self.wall_seconds

    def stats(self) -> dict:
        """Event-loop health counters as plain data."""
        report = {
            "now": self.now,
            "events_fired": self.event_count,
            "events_cancelled": self.cancelled_count,
            "events_pending": self.pending_events,
            "heap_high_water": self.heap_high_water,
            "bucket_high_water": self.bucket_high_water,
            "far_high_water": self.far_high_water,
            "wall_seconds": self.wall_seconds,
            "events_per_second": self.events_per_second(),
            "trace_records": len(self.trace),
            "trace_dropped": getattr(self.trace, "dropped", 0),
            "metric_counters": dict(self.metrics.counters),
        }
        if self.profiler is not None:
            report["profile"] = self.profiler.by_callback()
            report["profile_subsystems"] = self.profiler.summary(
                loop_seconds=self.wall_seconds)["subsystems"]
        return report

    @property
    def profile_stats(self) -> Dict[str, List[float]]:
        """Per-callback ``{qualname: [calls, seconds]}`` (PR-1 shape);
        empty when profiling is off."""
        if self.profiler is None:
            return {}
        return {name: [row["calls"], row["seconds"]]
                for name, row in self.profiler.by_callback().items()}

    def __repr__(self) -> str:
        return (f"<Simulator now={self.now:.6f} "
                f"pending={self.pending_events}>")
