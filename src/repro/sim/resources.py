"""Capacity-limited resources with FIFO queueing.

Used to model contended hardware: a disk arm, a host CPU run queue, a
dom0 device-model thread.  Acquire/release is explicit; the convenience
generator :meth:`Resource.using` wraps a timed hold.
"""

from collections import deque

from repro.sim.errors import SimulationError
from repro.sim.events import Event


class Resource:
    """``capacity`` concurrent holders; extra acquirers queue FIFO.

    Utilisation statistics (busy time integral, queue-length integral) are
    tracked so experiment harnesses can report contention.
    """

    def __init__(self, sim, capacity=1, name="resource"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters = deque()
        self._last_change = sim.now
        self._busy_integral = 0.0
        self._queue_integral = 0.0
        self.acquire_count = 0

    # -- statistics ------------------------------------------------------
    def _account(self) -> None:
        dt = self.sim.now - self._last_change
        self._busy_integral += dt * self.in_use
        self._queue_integral += dt * len(self._waiters)
        self._last_change = self.sim.now

    def utilization(self) -> float:
        """Mean fraction of capacity in use since creation."""
        self._account()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    def mean_queue_length(self) -> float:
        self._account()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._queue_integral / elapsed

    # -- acquire/release ---------------------------------------------------
    def acquire(self) -> Event:
        """Return a waitable that resolves when a slot is granted."""
        self._account()
        self.acquire_count += 1
        event = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.trigger(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held slot, handing it to the oldest waiter."""
        self._account()
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name}")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.trigger(self)
                return
        self.in_use -= 1

    def using(self, hold_time: float):
        """Generator: acquire, hold for ``hold_time`` seconds, release.

        Yield from inside a process::

            yield from disk.using(access_time)
        """
        yield self.acquire()
        try:
            yield self.sim.timeout(hold_time)
        finally:
            self.release()

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name} {self.in_use}/{self.capacity} "
            f"queued={len(self._waiters)}>"
        )
