"""FIFO channels and keyed stores for producer/consumer communication."""

from collections import deque

from repro.sim.errors import ChannelClosed, SimulationError
from repro.sim.events import Event


class Channel:
    """An unbounded (or bounded) FIFO queue of items.

    ``put`` is immediate unless the channel is bounded and full, in which
    case it raises (backpressure in this library is modelled at the link
    layer, not in channels).  ``get`` returns an :class:`Event` that a
    process yields; items are matched to getters in FIFO order.
    """

    def __init__(self, sim, capacity=None, name="channel"):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items = deque()
        self._getters = deque()
        self.closed = False
        self.put_count = 0
        self.got_count = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        if self.closed:
            raise ChannelClosed(f"put on closed channel {self.name}")
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise SimulationError(f"channel {self.name} full (cap={self.capacity})")
        self.put_count += 1
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                self.got_count += 1
                getter.trigger(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return a waitable that resolves with the next item."""
        event = Event(self.sim)
        if self._items:
            self.got_count += 1
            event.trigger(self._items.popleft())
        elif self.closed:
            event.fail(ChannelClosed(f"get on closed drained channel {self.name}"))
        else:
            self._getters.append(event)
        return event

    def try_get(self):
        """Non-blocking get; returns (True, item) or (False, None)."""
        if self._items:
            self.got_count += 1
            return True, self._items.popleft()
        return False, None

    def close(self) -> None:
        """Close the channel: pending and future getters fail once drained."""
        self.closed = True
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.fail(ChannelClosed(f"channel {self.name} closed"))

    def __repr__(self) -> str:
        return (
            f"<Channel {self.name} items={len(self._items)} "
            f"waiters={len(self._getters)}>"
        )


class Store:
    """A keyed rendezvous: getters wait for an item with a specific key.

    Used where a response must be matched to its request (e.g. the VMM
    proposal exchange matches proposals to packet sequence numbers).
    """

    def __init__(self, sim, name="store"):
        self.sim = sim
        self.name = name
        self._items = {}
        self._getters = {}

    def put(self, key, item) -> None:
        waiters = self._getters.pop(key, None)
        if waiters:
            event = waiters.popleft()
            if waiters:
                self._getters[key] = waiters
            event.trigger(item)
            return
        self._items.setdefault(key, deque()).append(item)

    def get(self, key) -> Event:
        event = Event(self.sim)
        bucket = self._items.get(key)
        if bucket:
            event.trigger(bucket.popleft())
            if not bucket:
                del self._items[key]
        else:
            self._getters.setdefault(key, deque()).append(event)
        return event

    def pending_keys(self):
        """Keys with items waiting to be collected."""
        return list(self._items.keys())

    def __repr__(self) -> str:
        return f"<Store {self.name} keys={len(self._items)}>"
