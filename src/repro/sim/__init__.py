"""Discrete-event simulation kernel.

This subpackage is the substrate on which the whole StopWatch reproduction
runs: a small but complete discrete-event simulator with generator-based
processes, events and conditions, FIFO channels, capacity resources, named
deterministic random streams and a tracing facility.

The public surface mirrors what the rest of the library needs:

- :class:`Simulator` -- the event loop and clock.
- :class:`Process` -- a running generator-based activity.
- :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf` --
  waitables that processes can ``yield``.
- :class:`Channel`, :class:`Store` -- producer/consumer queues.
- :class:`Resource` -- a capacity-limited resource with a FIFO queue.
- :class:`RngRegistry` -- named, seeded random streams.
- :class:`Trace` -- an in-memory event recorder used by the experiment
  harnesses.
"""

from repro.sim.errors import (
    SimulationError,
    ProcessFailed,
    Interrupt,
    ChannelClosed,
)
from repro.sim.events import Event, Timeout, AnyOf, AllOf, Condition
from repro.sim.kernel import Simulator, ScheduledCall
from repro.sim.process import Process
from repro.sim.channel import Channel, Store
from repro.sim.resources import Resource
from repro.sim.rng import RngRegistry, derive_root_seed
from repro.sim.monitor import (Trace, TraceRecord, MetricSet, Histogram,
                               JsonlSink, CategoryFilter, category_matches)

__all__ = [
    "Simulator",
    "ScheduledCall",
    "Process",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Condition",
    "Channel",
    "Store",
    "Resource",
    "RngRegistry",
    "derive_root_seed",
    "Trace",
    "TraceRecord",
    "MetricSet",
    "Histogram",
    "JsonlSink",
    "CategoryFilter",
    "category_matches",
    "SimulationError",
    "ProcessFailed",
    "Interrupt",
    "ChannelClosed",
]
