"""Generator-based simulated processes.

A process is a Python generator driven by the simulator.  It may yield:

- a ``float``/``int`` -- sleep for that many simulated seconds;
- any waitable (:class:`~repro.sim.events.Event` and friends) -- block
  until it triggers; the waitable's value is returned from the ``yield``;
- another :class:`Process` -- join it; the joined process's return value
  is returned from the ``yield`` (its failure re-raises here as
  :class:`~repro.sim.errors.ProcessFailed`).

A process is itself a waitable, triggered at termination with the
generator's return value.
"""

from repro.sim.errors import Interrupt, ProcessFailed, SimulationError
from repro.sim.events import Event


class Process(Event):
    """A running simulated activity.  Create via ``sim.process(gen)``."""

    __slots__ = ("name", "_generator", "_waiting_on", "_pending_interrupt")

    _anonymous_counter = 0

    def __init__(self, sim, generator, name=None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        if name is None:
            Process._anonymous_counter += 1
            name = f"process-{Process._anonymous_counter}"
        self.name = name
        self._generator = generator
        self._waiting_on = None
        self._pending_interrupt = None
        sim.call_soon(self._resume, None, None)

    # -- public API ----------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait.

        Interrupting a dead process is an error; interrupting a process
        that already has a pending interrupt replaces the cause.
        """
        if not self.alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        self._pending_interrupt = Interrupt(cause)
        waited = self._waiting_on
        if waited is not None:
            waited.remove_callback(self._wake)
            self._waiting_on = None
            self.sim.call_soon(self._resume, None, None)
        # If _waiting_on is None the process is mid-step or about to be
        # resumed; the pending interrupt will be delivered at that resume.

    # -- driver ----------------------------------------------------------
    def _wake(self, waitable) -> None:
        self._waiting_on = None
        if waitable.ok:
            self._resume(waitable.value, None)
        else:
            self._resume(None, waitable.value)

    def _resume(self, value, exception) -> None:
        if self.triggered:
            return
        if self._pending_interrupt is not None:
            exception, value = self._pending_interrupt, None
            self._pending_interrupt = None
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Interrupt as unhandled:
            # An interrupt the process chose not to handle kills it.
            self.fail(unhandled)
            return
        except Exception as error:  # noqa: BLE001 - deliberate catch-all
            self.fail(ProcessFailed(self, error))
            return
        self._wait_for(target)

    def _wait_for(self, target) -> None:
        if isinstance(target, (int, float)):
            target = self.sim.timeout(target)
        try:
            add_callback = target.add_callback
        except AttributeError:
            self.sim.call_soon(
                self._resume,
                None,
                SimulationError(
                    f"process {self.name} yielded non-waitable {target!r}"
                ),
            )
            return
        self._waiting_on = target
        add_callback(self._wake)

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
