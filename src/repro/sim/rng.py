"""Named deterministic random streams.

Every stochastic component asks the registry for a stream by name
(``sim.rng.stream("host0.jitter")``).  Streams are independently seeded
from (root seed, name), so adding, removing or reordering components never
perturbs the draws seen by other components — a prerequisite for the
replica-determinism experiments, where only *host timing* streams may
differ between replicas while *guest workload* streams must match.
"""

import hashlib
import random


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_root_seed(base: int, index: int) -> int:
    """Root seed for sweep cell ``index`` of a campaign seeded ``base``.

    Seed sweeps must not use ``base + index`` arithmetic: neighbouring
    root seeds feed the same SHA-256 stream derivation, and nothing
    guarantees the *named* streams of run ``i`` and run ``i + 1`` stay
    independent.  Hashing the index through the same derivation used for
    stream names gives every sweep cell its own seed universe.
    """
    return _derive_seed(base, f"sweep/{index}")


class RngRegistry:
    """A factory of named, reproducible ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, index: int) -> "RngRegistry":
        """A sibling registry for sweep cell ``index`` (see
        :func:`derive_root_seed`)."""
        return RngRegistry(derive_root_seed(self.root_seed, index))

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose root seed derives from ``name``.

        Used to give each replica machine its own timing-noise universe
        while the guest-workload registry stays shared.
        """
        return RngRegistry(_derive_seed(self.root_seed, f"fork/{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return f"<RngRegistry seed={self.root_seed} streams={len(self._streams)}>"
