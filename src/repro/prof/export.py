"""Profile exports: collapsed stacks, speedscope JSON, counter tracks.

All three exporters work off the plain-data summary dict
(:meth:`~repro.prof.profiler.SubsystemProfiler.summary` or
:func:`~repro.prof.profiler.merge_summaries`), so a profile persisted
through the campaign cache or a bench artifact exports identically to
a live one.

- **collapsed stacks** (``subsystem;module;callback weight`` lines,
  weight in integer microseconds) feed ``flamegraph.pl`` / ``inferno``
  unchanged; the synthetic two-frame "stack" makes the flamegraph's
  first tier the subsystem attribution.
- **speedscope** emits the ``https://www.speedscope.app`` sampled
  profile: one sample per callback with its accumulated seconds as the
  weight.
- **counter events** render the sim-time timeline as Chrome
  trace-event ``"ph": "C"`` counter tracks (events/sec, CPU ms per
  bucket, queue high-water, releases/sec) that merge with the PR-4
  span export into one Perfetto trace.

Every format has a structural validator mirroring
``obs/perfetto.py``'s: a list of problems, empty when valid, so CI can
gate on malformed output instead of shipping it.
"""

import json
from typing import Any, Dict, Iterable, List, Optional

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

#: counter tracks get their own pid in the merged trace
PROFILE_PID = 9999

_US = 1e6


def _weight_rows(summary: Dict[str, Any]) -> List[Dict[str, Any]]:
    rows = summary.get("callbacks") or summary.get("hottest") or []
    return [row for row in rows if row.get("seconds", 0.0) > 0.0]


# ---------------------------------------------------------------------------
# collapsed stacks
# ---------------------------------------------------------------------------
def collapsed_stacks(summary: Dict[str, Any]) -> str:
    """Flamegraph-collapsed lines: ``subsystem;module;callback us``.

    Weights are integer microseconds (flamegraph tooling wants integer
    sample counts); callbacks that measured under half a microsecond
    still emit weight 1 so the frame survives into the graph.
    """
    lines = []
    for row in _weight_rows(summary):
        weight = max(1, int(round(row["seconds"] * _US)))
        frames = ";".join((row.get("subsystem") or "other",
                           row.get("module") or "?",
                           str(row.get("callback"))))
        lines.append(f"{frames} {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


def validate_collapsed(text: str) -> List[str]:
    """Structural check of collapsed-stack output: every non-blank line
    is ``frame(;frame)* <positive integer>``."""
    problems: List[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return ["collapsed output contains no stack lines"]
    for number, line in enumerate(lines, start=1):
        stack, _, weight = line.rpartition(" ")
        if not stack:
            problems.append(f"line {number}: no stack before the weight")
            continue
        if not weight.isdigit() or int(weight) <= 0:
            problems.append(
                f"line {number}: weight {weight!r} is not a positive "
                f"integer")
        if any(not frame for frame in stack.split(";")):
            problems.append(f"line {number}: empty frame in {stack!r}")
    return problems


# ---------------------------------------------------------------------------
# speedscope
# ---------------------------------------------------------------------------
def speedscope_document(summary: Dict[str, Any],
                        name: str = "repro profile") -> Dict[str, Any]:
    """A speedscope ``sampled`` profile: one sample per callback, frames
    named ``subsystem: module.callback``, weights in seconds."""
    frames: List[Dict[str, str]] = []
    samples: List[List[int]] = []
    weights: List[float] = []
    frame_index: Dict[str, int] = {}

    def frame(label: str) -> int:
        index = frame_index.get(label)
        if index is None:
            frame_index[label] = index = len(frames)
            frames.append({"name": label})
        return index

    for row in _weight_rows(summary):
        subsystem = row.get("subsystem") or "other"
        stack = [frame(subsystem),
                 frame(f"{row.get('module') or '?'}."
                       f"{row.get('callback')}")]
        samples.append(stack)
        weights.append(row["seconds"])
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.prof",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": name,
            "unit": "seconds",
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        }],
    }


def validate_speedscope(doc: Any,
                        tolerance: float = 1e-9) -> List[str]:
    """Structural check of a speedscope document; empty means valid."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("$schema") != SPEEDSCOPE_SCHEMA:
        problems.append(f"$schema is {doc.get('$schema')!r}, expected "
                        f"{SPEEDSCOPE_SCHEMA!r}")
    frames = (doc.get("shared") or {}).get("frames")
    if not isinstance(frames, list) or not frames:
        problems.append("shared.frames is missing or empty")
        frames = []
    for i, item in enumerate(frames):
        if not isinstance(item, dict) or not isinstance(
                item.get("name"), str) or not item["name"]:
            problems.append(f"frame #{i} has no non-empty string name")
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        problems.append("profiles is missing or empty")
        profiles = []
    for p, profile in enumerate(profiles):
        if not isinstance(profile, dict):
            problems.append(f"profile #{p} is not an object")
            continue
        if profile.get("type") != "sampled":
            problems.append(f"profile #{p} type is "
                            f"{profile.get('type')!r}, expected 'sampled'")
            continue
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            problems.append(f"profile #{p} lacks samples/weights lists")
            continue
        if len(samples) != len(weights):
            problems.append(
                f"profile #{p}: {len(samples)} samples vs "
                f"{len(weights)} weights")
        for s, stack in enumerate(samples):
            if not isinstance(stack, list) or not stack:
                problems.append(f"profile #{p} sample #{s} is not a "
                                f"non-empty frame-index list")
                continue
            for index in stack:
                if not isinstance(index, int) \
                        or not 0 <= index < len(frames):
                    problems.append(
                        f"profile #{p} sample #{s}: frame index "
                        f"{index!r} out of range")
                    break
        bad = [w for w in weights
               if not isinstance(w, (int, float)) or w < 0]
        if bad:
            problems.append(f"profile #{p}: {len(bad)} negative or "
                            f"non-numeric weights")
        elif weights and isinstance(profile.get("endValue"), (int, float)):
            span = profile["endValue"] - profile.get("startValue", 0)
            total = sum(weights)
            if abs(span - total) > tolerance * max(1.0, abs(total)):
                problems.append(
                    f"profile #{p}: weights sum to {total:.9g} but the "
                    f"profile spans {span:.9g}")
    return problems


def validate_speedscope_file(path: str) -> List[str]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot parse {path}: {exc}"]
    return validate_speedscope(doc)


def write_speedscope(path: str, summary: Dict[str, Any],
                     name: str = "repro profile") -> str:
    """Atomically write (and re-validate) the speedscope export."""
    from repro.ioutil import atomic_write_text

    doc = speedscope_document(summary, name=name)
    problems = validate_speedscope(doc)
    if problems:
        raise ValueError(f"refusing to write malformed speedscope "
                         f"profile: {problems}")
    atomic_write_text(path, json.dumps(doc, indent=1))
    return path


def write_collapsed(path: str, summary: Dict[str, Any]) -> str:
    """Atomically write (and re-validate) the collapsed-stack export."""
    from repro.ioutil import atomic_write_text

    text = collapsed_stacks(summary)
    problems = validate_collapsed(text)
    if problems:
        raise ValueError(f"refusing to write malformed collapsed "
                         f"stacks: {problems}")
    atomic_write_text(path, text)
    return path


# ---------------------------------------------------------------------------
# Perfetto counter tracks
# ---------------------------------------------------------------------------
def counter_events(summary: Dict[str, Any],
                   pid: int = PROFILE_PID) -> List[Dict[str, Any]]:
    """Chrome trace-event counter (``"ph": "C"``) events for the
    sim-time timeline, suitable as ``extra_events`` for
    :func:`repro.obs.perfetto.export_perfetto`."""
    timeline = summary.get("timeline") or {}
    width = timeline.get("bucket_width")
    buckets = timeline.get("buckets") or []
    if not width or not buckets:
        return []
    events: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": "profiler"},
    }]
    for bucket in buckets:
        ts = bucket["t"] * _US
        events.append({"ph": "C", "name": "events_per_sec", "pid": pid,
                       "ts": ts,
                       "args": {"value": bucket["events"] / width}})
        events.append({"ph": "C", "name": "cpu_ms_per_bucket", "pid": pid,
                       "ts": ts,
                       "args": {"value": bucket["seconds"] * 1e3}})
        events.append({"ph": "C", "name": "queue_high_water", "pid": pid,
                       "ts": ts,
                       "args": {"value": bucket["queue_high_water"]}})
        events.append({"ph": "C", "name": "releases_per_sec", "pid": pid,
                       "ts": ts,
                       "args": {"value": bucket.get("releases", 0)
                                / width}})
    return events
