"""Subsystem-attributed CPU profiling for the simulation kernel.

The PR-1 profiler answered "which callback is hot?"; this one answers
the question the ROADMAP actually asks -- *where do the cycles go* --
by bucketing every callback's measured wall time into the subsystem
that owns it.  Attribution needs no per-event string work: the kernel
hands :meth:`SubsystemProfiler.record` the scheduled callable, the
profiler keys its accumulator on the underlying function object (bound
methods share one function, so a fleet of 96 replicas collapses to one
row per method), and module -> subsystem resolution happens once per
distinct callback at :meth:`summary` time through an interned
dotted-prefix table -- the same hierarchical-prefix discipline the
trace categories use.

Attribution is *total*: the summary carries two synthetic rows so the
per-subsystem seconds sum exactly to the measured whole --

- ``kernel`` absorbs the dispatch gap (event-loop seconds not spent
  inside any callback: queue maintenance, calendar advancement), and
- ``harness`` absorbs everything outside the event loop (scenario
  build, signature hashing) when the caller supplies the cell's total.

A second accumulator buckets the run along *simulated* time
(:attr:`timeline_width`-second buckets of events, CPU seconds and
queue high-water), which is what the Perfetto counter-track export
draws; release timestamps can be folded in after the fact so
releases/sec rides the same timeline.
"""

import sys
from functools import partial
from typing import Any, Callable, Dict, Iterable, List, Optional

#: dotted module prefix -> subsystem bucket; longest prefix wins.
#: The bucket names are the attribution vocabulary the bench artifacts
#: and flamegraph roots use -- keep them short and stable.
SUBSYSTEM_PREFIXES: Dict[str, str] = {
    "repro.sim": "kernel",
    "repro.net.pgm": "pgm",
    "repro.net": "net",
    "repro.vmm.coordination": "vmm-coordination",
    "repro.vmm": "hypervisor",
    "repro.machine": "hypervisor",
    "repro.core": "hypervisor",
    "repro.cloud.egress": "egress",
    "repro.cloud": "net",
    "repro.workloads": "workloads",
    "repro.obs": "obs",
    "repro.faults": "faults",
    "repro.attacks": "workloads",
    "repro.mitigation": "hypervisor",
}

#: everything unmatched (test lambdas, stdlib callbacks) lands here
OTHER = "other"

#: current summary schema; bumped on incompatible layout changes
PROFILE_SCHEMA = "repro.prof/1"

#: default simulated-time bucket for the counter timeline (seconds)
DEFAULT_TIMELINE_WIDTH = 0.05

_subsystem_cache: Dict[str, str] = {}


def subsystem_of(module: Optional[str]) -> str:
    """The subsystem bucket owning ``module`` (longest dotted prefix)."""
    if not module:
        return OTHER
    cached = _subsystem_cache.get(module)
    if cached is not None:
        return cached
    probe = module
    while True:
        bucket = SUBSYSTEM_PREFIXES.get(probe)
        if bucket is not None:
            break
        cut = probe.rfind(".")
        if cut < 0:
            bucket = OTHER
            break
        probe = probe[:cut]
    bucket = sys.intern(bucket)
    _subsystem_cache[sys.intern(module)] = bucket
    return bucket


def _unwrap(fn: Callable) -> Callable:
    """Peel bound-method/partial wrappers down to the shared function."""
    while True:
        inner = getattr(fn, "__func__", None)
        if inner is not None:
            fn = inner
            continue
        if isinstance(fn, partial):
            fn = fn.func
            continue
        return fn


def describe_callable(fn: Callable) -> Dict[str, str]:
    """``{"callback", "module", "subsystem"}`` for a profiled function."""
    fn = _unwrap(fn)
    module = getattr(fn, "__module__", None) or ""
    name = getattr(fn, "__qualname__", None) or repr(fn)
    return {"callback": name, "module": module,
            "subsystem": subsystem_of(module)}


class SubsystemProfiler:
    """Accumulates per-callback wall time and a sim-time timeline.

    :meth:`record` is the only hot-path method; everything else is
    report-time.  The kernel calls it once per fired event with the
    callback, its measured elapsed wall seconds, the simulated clock
    and the live queue size.
    """

    __slots__ = ("stats", "timeline", "timeline_width", "_inv_width",
                 "events", "attributed_seconds")

    def __init__(self, timeline_width: float = DEFAULT_TIMELINE_WIDTH):
        if timeline_width <= 0:
            raise ValueError(
                f"timeline_width must be positive, got {timeline_width}")
        #: underlying function -> [calls, seconds]
        self.stats: Dict[Callable, List[float]] = {}
        #: sim-time bucket index -> [events, seconds, queue_high_water]
        self.timeline: Dict[int, List[float]] = {}
        self.timeline_width = timeline_width
        self._inv_width = 1.0 / timeline_width
        self.events = 0
        self.attributed_seconds = 0.0

    # -- hot path ------------------------------------------------------
    def record(self, fn: Callable, elapsed: float, now: float,
               queue_size: int) -> None:
        func = getattr(fn, "__func__", fn)
        entry = self.stats.get(func)
        if entry is None:
            self.stats[func] = [1, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed
        index = int(now * self._inv_width)
        bucket = self.timeline.get(index)
        if bucket is None:
            self.timeline[index] = [1, elapsed, queue_size]
        else:
            bucket[0] += 1
            bucket[1] += elapsed
            if queue_size > bucket[2]:
                bucket[2] = queue_size
        self.events += 1
        self.attributed_seconds += elapsed

    # -- report time ---------------------------------------------------
    def by_callback(self) -> Dict[str, Dict[str, float]]:
        """``{qualname: {"calls", "seconds"}}`` hottest-first (the
        PR-1 ``Simulator.stats()["profile"]`` shape)."""
        rows: Dict[str, Dict[str, float]] = {}
        for func, (calls, seconds) in self.stats.items():
            name = getattr(_unwrap(func), "__qualname__", None) or repr(func)
            row = rows.get(name)
            if row is None:
                rows[name] = {"calls": calls, "seconds": seconds}
            else:
                row["calls"] += calls
                row["seconds"] += seconds
        return dict(sorted(rows.items(),
                           key=lambda item: item[1]["seconds"],
                           reverse=True))

    def callback_rows(self) -> List[Dict[str, Any]]:
        """One attributed row per distinct callback, hottest first."""
        rows: List[Dict[str, Any]] = []
        for func, (calls, seconds) in self.stats.items():
            row = describe_callable(func)
            row["calls"] = calls
            row["seconds"] = seconds
            rows.append(row)
        rows.sort(key=lambda row: row["seconds"], reverse=True)
        return rows

    def summary(self, loop_seconds: Optional[float] = None,
                total_seconds: Optional[float] = None,
                release_times: Optional[Iterable[float]] = None,
                top: int = 20) -> Dict[str, Any]:
        """The persistable attribution report (plain data).

        ``loop_seconds`` is the event loop's measured wall time
        (``Simulator.wall_seconds``); the dispatch gap between it and
        the callback-attributed seconds is charged to ``kernel``.
        ``total_seconds`` is the whole cell's wall time; the remainder
        beyond the loop is charged to ``harness``.  With both supplied,
        ``sum(subsystems.values()) == total_seconds`` to float
        precision -- the property the bench gate asserts.
        """
        callbacks = self.callback_rows()
        subsystems: Dict[str, float] = {}
        for row in callbacks:
            bucket = row["subsystem"]
            subsystems[bucket] = subsystems.get(bucket, 0.0) + row["seconds"]
        attributed = self.attributed_seconds
        dispatch_gap = None
        if loop_seconds is not None:
            dispatch_gap = max(0.0, loop_seconds - attributed)
            subsystems["kernel"] = subsystems.get("kernel", 0.0) \
                + dispatch_gap
        harness = None
        if total_seconds is not None:
            base = loop_seconds if loop_seconds is not None else attributed
            harness = max(0.0, total_seconds - base)
            subsystems["harness"] = subsystems.get("harness", 0.0) + harness
        buckets = self.timeline_buckets(release_times=release_times)
        return {
            "schema": PROFILE_SCHEMA,
            "events": self.events,
            "distinct_callbacks": len(callbacks),
            "attributed_seconds": attributed,
            "dispatch_gap_seconds": dispatch_gap,
            "loop_seconds": loop_seconds,
            "harness_seconds": harness,
            "total_seconds": total_seconds,
            "subsystems": dict(sorted(subsystems.items(),
                                      key=lambda item: item[1],
                                      reverse=True)),
            "hottest": callbacks[:top],
            "callbacks": callbacks,
            "timeline": {"bucket_width": self.timeline_width,
                         "buckets": buckets},
        }

    def timeline_buckets(self,
                         release_times: Optional[Iterable[float]] = None
                         ) -> List[Dict[str, float]]:
        """The sim-time timeline as sorted plain rows; ``release_times``
        (e.g. ``trace.times("egress.release")``) folds a releases
        column into the same buckets."""
        releases: Dict[int, int] = {}
        if release_times is not None:
            for when in release_times:
                index = int(when * self._inv_width)
                releases[index] = releases.get(index, 0) + 1
        rows = []
        for index in sorted(set(self.timeline) | set(releases)):
            events, seconds, queue_hw = self.timeline.get(
                index, (0, 0.0, 0))
            rows.append({
                "t": index * self.timeline_width,
                "events": int(events),
                "seconds": seconds,
                "queue_high_water": int(queue_hw),
                "releases": releases.get(index, 0),
            })
        return rows

    def __repr__(self) -> str:
        return (f"<SubsystemProfiler events={self.events} "
                f"callbacks={len(self.stats)} "
                f"seconds={self.attributed_seconds:.4f}>")


def merge_summaries(summaries: Iterable[Dict[str, Any]],
                    top: int = 20) -> Dict[str, Any]:
    """Fold several cells' :meth:`SubsystemProfiler.summary` dicts into
    one campaign-level attribution report (subsystem seconds and
    callback rows summed; timelines are dropped -- cells run disjoint
    scenarios, so their sim-time axes do not align)."""
    subsystems: Dict[str, float] = {}
    callbacks: Dict[tuple, Dict[str, Any]] = {}
    events = 0
    attributed = 0.0
    total = 0.0
    have_total = False
    cells = 0
    for summary in summaries:
        if not summary:
            continue
        cells += 1
        events += summary.get("events", 0)
        attributed += summary.get("attributed_seconds", 0.0)
        if summary.get("total_seconds") is not None:
            total += summary["total_seconds"]
            have_total = True
        for name, seconds in summary.get("subsystems", {}).items():
            subsystems[name] = subsystems.get(name, 0.0) + seconds
        for row in summary.get("callbacks",
                               summary.get("hottest", ())):
            key = (row.get("module"), row.get("callback"))
            merged = callbacks.get(key)
            if merged is None:
                callbacks[key] = dict(row)
            else:
                merged["calls"] += row.get("calls", 0)
                merged["seconds"] += row.get("seconds", 0.0)
    rows = sorted(callbacks.values(), key=lambda row: row["seconds"],
                  reverse=True)
    return {
        "schema": PROFILE_SCHEMA,
        "cells": cells,
        "events": events,
        "attributed_seconds": attributed,
        "total_seconds": total if have_total else None,
        "subsystems": dict(sorted(subsystems.items(),
                                  key=lambda item: item[1],
                                  reverse=True)),
        "hottest": rows[:top],
        "callbacks": rows,
        "timeline": {"bucket_width": None, "buckets": []},
    }
