"""Performance observability: subsystem-attributed profiling.

:class:`SubsystemProfiler` accumulates per-callback wall time inside
the event loop and buckets it by owning subsystem; the exporters turn
its summary into flamegraph collapsed stacks, speedscope JSON and
Perfetto counter tracks.  See DESIGN.md § Performance observability.
"""

from repro.prof.export import (collapsed_stacks, counter_events,
                               speedscope_document, validate_collapsed,
                               validate_speedscope,
                               validate_speedscope_file, write_collapsed,
                               write_speedscope)
from repro.prof.profiler import (PROFILE_SCHEMA, SUBSYSTEM_PREFIXES,
                                 SubsystemProfiler, describe_callable,
                                 merge_summaries, subsystem_of)

__all__ = [
    "PROFILE_SCHEMA",
    "SUBSYSTEM_PREFIXES",
    "SubsystemProfiler",
    "collapsed_stacks",
    "counter_events",
    "describe_callable",
    "merge_summaries",
    "speedscope_document",
    "subsystem_of",
    "validate_collapsed",
    "validate_speedscope",
    "validate_speedscope_file",
    "write_collapsed",
    "write_speedscope",
]
