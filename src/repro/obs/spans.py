"""Causal spans: the generic store under the flow layer.

A :class:`Span` is one named, sim-time-stamped interval (``start`` ..
``end``) with a parent link and an annotation dict -- the Dapper model
(PAPERS.md: Sigelman et al.) cut down to what a deterministic simulator
needs.  Spans carry a ``flow_id`` so every interval belonging to one
packet's journey through the mediation pipeline can be pulled back out
together, a ``replica`` (``None`` for fabric-side spans: ingress,
egress, the flow root) and a ``vm``.

:class:`SpanStore` is the bounded container.  Spans are pure
observations: starting, finishing or discarding one never schedules an
event, never draws randomness and never mutates simulation state, which
is what lets span tracking stay bit-for-bit deterministic (asserted by
``tests/obs/test_flow_determinism.py``).  When the store is full, new
spans are dropped and tallied in :attr:`SpanStore.dropped`, mirroring
the :class:`~repro.sim.monitor.Trace` ring-buffer discipline.
"""

from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed interval in a flow.  ``end`` is ``None`` while open."""

    __slots__ = ("span_id", "parent_id", "name", "flow_id", "vm",
                 "replica", "start", "end", "annotations")

    def __init__(self, span_id: int, name: str, start: float,
                 flow_id: Optional[str] = None, vm: Optional[str] = None,
                 replica: Optional[int] = None,
                 parent_id: Optional[int] = None,
                 annotations: Optional[Dict[str, Any]] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.flow_id = flow_id
        self.vm = vm
        self.replica = replica
        self.start = start
        self.end: Optional[float] = None
        self.annotations: Dict[str, Any] = annotations or {}

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:
        state = (f"dur={self.duration:.6f}" if self.closed else "open")
        return (f"<Span #{self.span_id} {self.name} flow={self.flow_id} "
                f"r={self.replica} {state}>")


class SpanStore:
    """A bounded, insertion-ordered collection of spans.

    ``max_spans`` caps retained spans; a :meth:`start` on a full store
    returns ``None`` (a sentinel id every other method tolerates) and
    counts the drop, so long runs keep bounded memory without branching
    at the call sites.
    """

    def __init__(self, max_spans: int = 262_144):
        if max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self.max_spans = max_spans
        self.dropped = 0
        self._spans: Dict[int, Span] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, name: str, time: float, flow_id: Optional[str] = None,
              vm: Optional[str] = None, replica: Optional[int] = None,
              parent_id: Optional[int] = None,
              **annotations: Any) -> Optional[int]:
        """Open a span; returns its id, or ``None`` if the store is full."""
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            return None
        span_id = self._next_id
        self._next_id += 1
        self._spans[span_id] = Span(span_id, name, time, flow_id=flow_id,
                                    vm=vm, replica=replica,
                                    parent_id=parent_id,
                                    annotations=dict(annotations))
        return span_id

    def finish(self, span_id: Optional[int], time: float,
               **annotations: Any) -> None:
        """Close an open span (no-op for ``None`` / unknown / closed ids)."""
        span = self._spans.get(span_id) if span_id is not None else None
        if span is None or span.closed:
            return
        span.end = time
        if annotations:
            span.annotations.update(annotations)

    def annotate(self, span_id: Optional[int], **annotations: Any) -> None:
        span = self._spans.get(span_id) if span_id is not None else None
        if span is not None:
            span.annotations.update(annotations)

    def discard(self, span_id: Optional[int]) -> None:
        """Forget a span entirely (flow eviction path)."""
        if span_id is not None:
            self._spans.pop(span_id, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, span_id: Optional[int]) -> Optional[Span]:
        return self._spans.get(span_id) if span_id is not None else None

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans.values())

    def closed_spans(self) -> Iterator[Span]:
        return (span for span in self._spans.values() if span.closed)

    def open_count(self) -> int:
        return sum(1 for span in self._spans.values() if not span.closed)

    def by_flow(self, flow_id: str) -> List[Span]:
        return [span for span in self._spans.values()
                if span.flow_id == flow_id]

    def name_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for span in self._spans.values():
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (f"<SpanStore spans={len(self._spans)} "
                f"open={self.open_count()} dropped={self.dropped}>")
