"""Chrome trace-event export for span stores.

Emits the JSON array format that Perfetto and ``chrome://tracing``
consume directly: one complete ``"ph": "X"`` duration event per closed
span (timestamps and durations in microseconds), with **replicas mapped
to pids** (pid 0 is the replicated fabric: ingress, egress and the flow
root spans) and **VMs mapped to tids**, named via ``"M"`` metadata
events so the UI shows "replica 1" / "vm echo" instead of bare numbers.

The validator here is what the CI ``spans-smoke`` job runs: it checks
the file parses, is non-empty, that every duration event carries
pid/tid/ts/dur, and that for every flow the critical-path stage events
sum to the flow's end-to-end duration within float tolerance --
re-asserting the telescoping invariant *from the export alone*, so a
serialization bug cannot hide behind a passing in-memory test.
"""

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.spans import Span

#: fabric-side spans (no replica) are grouped under this pid
FABRIC_PID = 0

_US = 1e6  # sim seconds -> trace microseconds


def _pid(span: Span) -> int:
    return FABRIC_PID if span.replica is None else span.replica + 1


def perfetto_events(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Build the trace-event list: ``M`` metadata naming every
    pid/tid pair seen, then one ``X`` event per closed span."""
    events: List[Dict[str, Any]] = []
    seen_pids: Dict[int, None] = {}
    seen_tids: Dict[Tuple[int, int], None] = {}
    vm_tids: Dict[Optional[str], int] = {}
    for span in spans:
        if not span.closed:
            continue
        pid = _pid(span)
        tid = vm_tids.setdefault(span.vm, len(vm_tids))
        if pid not in seen_pids:
            seen_pids[pid] = None
            name = ("fabric" if pid == FABRIC_PID
                    else f"replica {pid - 1}")
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": name}})
        if (pid, tid) not in seen_tids:
            seen_tids[(pid, tid)] = None
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid,
                           "args": {"name": f"vm {span.vm}"}})
        args: Dict[str, Any] = {"flow": span.flow_id}
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        args.update(span.annotations)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": "flow" if span.name == "flow" else "stage",
            "pid": pid,
            "tid": tid,
            "ts": span.start * _US,
            "dur": (span.end - span.start) * _US,
            "id": span.span_id,
            "args": args,
        })
    return events


def export_perfetto(spans: Iterable[Span], path: str,
                    extra_events: Optional[List[Dict[str, Any]]] = None
                    ) -> int:
    """Write the trace-event JSON atomically; returns the number of
    ``X`` events written.

    ``extra_events`` are appended verbatim -- the profiler's counter
    tracks (:func:`repro.prof.export.counter_events`) ride along here
    so flow spans and performance counters land in one trace.
    """
    from repro.ioutil import atomic_write_text

    events = perfetto_events(spans)
    if extra_events:
        events.extend(extra_events)
    atomic_write_text(path, json.dumps(events, indent=1, default=str))
    return sum(1 for event in events if event.get("ph") == "X")


# ---------------------------------------------------------------------------
# validation (the CI spans-smoke contract)
# ---------------------------------------------------------------------------
def validate_perfetto(events: List[Any],
                      tolerance: float = 1e-6) -> List[str]:
    """Check a parsed trace-event list; returns a list of problems
    (empty means valid).

    * non-empty, with at least one ``X`` duration event
    * every ``X`` event has numeric ``pid``/``tid``/``ts``/``dur``
    * every ``C`` counter event has a numeric ``ts`` and a numeric
      ``args.value`` (the profiler's counter tracks)
    * for every flow with a root ``flow`` event, the ``critical=True``
      stage events sum to the root's duration within ``tolerance``
      (microseconds) -- the critical-path telescoping invariant
    """
    problems: List[str] = []
    if not isinstance(events, list) or not events:
        return ["trace is not a non-empty JSON array"]
    x_events = [e for e in events if isinstance(e, dict)
                and e.get("ph") == "X"]
    if not x_events:
        return ["trace contains no duration (ph=X) events"]
    for i, event in enumerate(e for e in events if isinstance(e, dict)
                              and e.get("ph") == "C"):
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"C event #{i} ({event.get('name')!r}) "
                            f"missing or non-numeric 'ts'")
        value = (event.get("args") or {}).get("value")
        if not isinstance(value, (int, float)):
            problems.append(f"C event #{i} ({event.get('name')!r}) "
                            f"missing or non-numeric args.value")
    flow_roots: Dict[str, float] = {}
    critical_sums: Dict[str, float] = {}
    critical_counts: Dict[str, int] = {}
    for i, event in enumerate(x_events):
        for field in ("pid", "tid", "ts", "dur"):
            if not isinstance(event.get(field), (int, float)):
                problems.append(
                    f"X event #{i} ({event.get('name')!r}) missing or "
                    f"non-numeric {field!r}")
        flow = (event.get("args") or {}).get("flow")
        if flow is None or not isinstance(event.get("dur"), (int, float)):
            continue
        if event.get("name") == "flow":
            flow_roots[flow] = event["dur"]
        elif (event.get("args") or {}).get("critical"):
            critical_sums[flow] = critical_sums.get(flow, 0.0) + event["dur"]
            critical_counts[flow] = critical_counts.get(flow, 0) + 1
    checked = 0
    for flow, total in sorted(flow_roots.items()):
        if flow not in critical_sums:
            continue  # incomplete flow (no critical path marked)
        checked += 1
        if critical_counts[flow] != 5:
            problems.append(
                f"flow {flow}: expected 5 critical stage events, found "
                f"{critical_counts[flow]}")
        gap = abs(critical_sums[flow] - total)
        if gap > tolerance * max(1.0, abs(total)):
            problems.append(
                f"flow {flow}: critical stages sum to "
                f"{critical_sums[flow]:.3f}us but the flow spans "
                f"{total:.3f}us (gap {gap:.3g}us)")
    if flow_roots and not checked:
        problems.append("no flow had a complete critical path to check")
    return problems


def validate_file(path: str, tolerance: float = 1e-6) -> List[str]:
    """Parse and validate an exported trace file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            events = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot parse {path}: {exc}"]
    return validate_perfetto(events, tolerance=tolerance)
