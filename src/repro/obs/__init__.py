"""repro.obs -- causal span/flow tracing over the mediation pipeline.

Builds on :mod:`repro.sim.monitor`: where ``Trace`` records flat,
uncorrelated events, this package follows each admitted packet (a
*flow*) through replication, PGM agreement, the virtual-time offset
wait, guest service and the egress quorum, decomposes its end-to-end
mediation delay into named stages, and exports Chrome trace-event JSON
for Perfetto.  Off by default; see DESIGN.md § Observability.
"""

from repro.obs.spans import Span, SpanStore
from repro.obs.flows import (STAGES, Flow, FlowTracker, critical_path,
                             stage_metrics)
from repro.obs.perfetto import (perfetto_events, export_perfetto,
                                validate_perfetto, validate_file)

__all__ = [
    "Span", "SpanStore",
    "STAGES", "Flow", "FlowTracker", "critical_path", "stage_metrics",
    "perfetto_events", "export_perfetto", "validate_perfetto",
    "validate_file",
]
