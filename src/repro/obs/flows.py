"""Per-packet causal flow tracking over the mediation pipeline.

Every packet admitted at the ingress node becomes a **flow**, identified
by the ``(vm, ingress sequence number)`` pair the
:class:`~repro.net.packet.ReplicaEnvelope` already carries end-to-end.
The pipeline components report stage transitions to the simulator-wide
:class:`FlowTracker` (``sim.flows``), which opens and closes
:class:`~repro.obs.spans.Span` objects per replica:

``replicate``
    ingress admission -> the replica VMM observes the packet (PGM
    transit plus the dom0 device-model queue).
``agree``
    observation -> the median delivery time is committed (proposal
    multicast plus the 3-replica agreement).
``offset-wait``
    commit -> the network interrupt is injected at a guest-execution
    VM exit (the Δn virtual-time offset realised in real time).
``service``
    injection -> the replica's dom0 emits the response packet the
    egress later released (guest compute, disk, output cost).
``quorum-wait``
    emission -> the egress node forwards the packet (waiting for the
    release quorum, i.e. the median of the replicas' emission times).

Because every boundary is measured on one replica -- the replica whose
copy completed the egress quorum -- the five stage durations telescope
to **exactly** the flow's end-to-end mediation delay (admission to
release), which is the invariant the critical-path analyzer and the CI
Perfetto validation both assert.

Flow attribution through asynchronous guest work (an echo reply after a
compute phase, a file chunk after a disk read) rides the guest's own
event structures: :class:`~repro.machine.guest.GuestTimer` and the
VMM's disk injections capture the flow active when they were created
and restore it when they fire -- context propagation in the X-Trace
style, with zero effect on scheduling.

Everything here is observational: hooks never schedule events, never
draw randomness, and are disabled (single predicate test per call) by
default.
"""

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.spans import SpanStore
from repro.sim.monitor import MetricSet

#: the critical-path stage taxonomy, in pipeline order
STAGES = ("replicate", "agree", "offset-wait", "service", "quorum-wait")

_FlowKey = Tuple[str, int]


class Flow:
    """One inbound packet's journey through the mediation pipeline."""

    __slots__ = ("vm", "seq", "admitted", "replicas", "observed",
                 "committed", "injected", "emits", "first_emit",
                 "released", "release_replica", "released_out_seq",
                 "copies", "releases", "outputs", "out_seqs",
                 "annotations", "span_ids", "open_keys", "skipped")

    def __init__(self, vm: str, seq: int, admitted: float, replicas: int):
        self.vm = vm
        self.seq = seq
        self.admitted = admitted
        self.replicas = replicas
        self.observed: Dict[int, float] = {}
        self.committed: Dict[int, float] = {}
        self.injected: Dict[int, float] = {}
        #: (replica, out_seq) -> emission time, tracked until release
        self.emits: Dict[Tuple[int, int], float] = {}
        #: replica -> (time, out_seq) of its first attributed output
        self.first_emit: Dict[int, Tuple[float, int]] = {}
        self.released: Optional[float] = None
        self.release_replica: Optional[int] = None
        self.released_out_seq: Optional[int] = None
        self.copies = 0          # output copies arrived at egress
        self.releases = 0        # egress forwards attributed to this flow
        self.outputs = 0         # guest outputs attributed to this flow
        self.out_seqs: List[int] = []
        self.annotations: Dict[str, Any] = {}
        #: (replica-or-None, span name) -> span id, for every span opened
        self.span_ids: Dict[Tuple[Optional[int], str], Optional[int]] = {}
        self.open_keys: set = set()
        self.skipped: Dict[int, bool] = {}

    @property
    def key(self) -> _FlowKey:
        return (self.vm, self.seq)

    @property
    def flow_id(self) -> str:
        return f"{self.vm}/{self.seq}"

    @property
    def complete(self) -> bool:
        """Released, with every critical-path boundary measured on the
        quorum-completing replica."""
        r = self.release_replica
        return (self.released is not None and r is not None
                and r in self.observed and r in self.committed
                and r in self.injected
                and (r, self.released_out_seq) in self.emits)

    @property
    def end_to_end(self) -> Optional[float]:
        if self.released is None:
            return None
        return self.released - self.admitted

    def stage_times(self) -> Optional[Dict[str, float]]:
        """The critical-path stage durations, or ``None`` if the flow is
        not complete.  Sums exactly to :attr:`end_to_end` (telescoping
        differences of one replica's boundary timestamps)."""
        if not self.complete:
            return None
        r = self.release_replica
        emit = self.emits[(r, self.released_out_seq)]
        return {
            "replicate": self.observed[r] - self.admitted,
            "agree": self.committed[r] - self.observed[r],
            "offset-wait": self.injected[r] - self.committed[r],
            "service": emit - self.injected[r],
            "quorum-wait": self.released - emit,
        }

    def __repr__(self) -> str:
        state = ("complete" if self.complete
                 else "released" if self.released is not None else "open")
        return f"<Flow {self.flow_id} {state}>"


class FlowTracker:
    """The simulator-wide flow registry (``sim.flows``).

    Off by default: every hook starts with a single ``enabled`` test, so
    the instrumented pipeline costs one predicate per event when span
    tracking is not requested.  When enabled, hooks only append to
    tracker/span state -- they never touch the event queue or any RNG,
    so seeded runs are bit-identical with tracking on or off.

    ``max_flows`` bounds retained flows: admitting a flow beyond the cap
    evicts the oldest retained flow (and its spans), counted in
    :attr:`dropped_flows` -- the same bounded-memory contract as
    :class:`~repro.sim.monitor.Trace`.
    """

    __slots__ = ("enabled", "max_flows", "store", "flows", "dropped_flows",
                 "completed_count", "released_count", "nak_repairs",
                 "_out_index")

    def __init__(self, enabled: bool = False, max_flows: int = 65_536,
                 max_spans: int = 524_288):
        if max_flows <= 0:
            raise ValueError(f"max_flows must be positive, got {max_flows}")
        self.enabled = enabled
        self.max_flows = max_flows
        self.store = SpanStore(max_spans=max_spans)
        self.flows: Dict[_FlowKey, Flow] = {}
        self.dropped_flows = 0
        self.completed_count = 0
        self.released_count = 0
        self.nak_repairs = 0
        self._out_index: Dict[Tuple[str, int], _FlowKey] = {}

    def enable(self, max_flows: Optional[int] = None,
               max_spans: Optional[int] = None) -> "FlowTracker":
        """Turn tracking on (optionally re-capping the stores)."""
        if max_flows is not None:
            if max_flows <= 0:
                raise ValueError(
                    f"max_flows must be positive, got {max_flows}")
            self.max_flows = max_flows
        if max_spans is not None:
            self.store.max_spans = max_spans
        self.enabled = True
        return self

    # ------------------------------------------------------------------
    # span plumbing
    # ------------------------------------------------------------------
    def _open(self, flow: Flow, name: str, time: float,
              replica: Optional[int], **annotations: Any) -> None:
        parent = flow.span_ids.get((None, "flow"))
        sid = self.store.start(name, time, flow_id=flow.flow_id,
                               vm=flow.vm, replica=replica,
                               parent_id=parent, **annotations)
        flow.span_ids[(replica, name)] = sid
        flow.open_keys.add((replica, name))

    def _close(self, flow: Flow, name: str, time: float,
               replica: Optional[int], **annotations: Any) -> bool:
        key = (replica, name)
        if key not in flow.open_keys:
            return False
        flow.open_keys.discard(key)
        self.store.finish(flow.span_ids.get(key), time, **annotations)
        return True

    def _evict_oldest(self) -> None:
        key = next(iter(self.flows))
        flow = self.flows.pop(key)
        for sid in flow.span_ids.values():
            self.store.discard(sid)
        for out_seq in flow.out_seqs:
            self._out_index.pop((flow.vm, out_seq), None)
        self.dropped_flows += 1

    # ------------------------------------------------------------------
    # pipeline hooks (call sites: ingress, pgm, coordination, vmm, egress)
    # ------------------------------------------------------------------
    def flow_admitted(self, time: float, vm: str, seq: int,
                      replicas: int) -> None:
        """Ingress stamped and replicated an inbound packet."""
        if not self.enabled:
            return
        if len(self.flows) >= self.max_flows:
            self._evict_oldest()
        flow = Flow(vm, seq, time, replicas)
        self.flows[flow.key] = flow
        sid = self.store.start("flow", time, flow_id=flow.flow_id, vm=vm,
                               replica=None, seq=seq)
        flow.span_ids[(None, "flow")] = sid
        flow.open_keys.add((None, "flow"))
        for replica in range(replicas):
            self._open(flow, "replicate", time, replica)

    def repair_requested(self, time: float, group: str, seq: int) -> None:
        """A PGM receiver NAKed a gap.  For ingress replication groups
        (``ingress.<vm>``) the PGM sequence *is* the flow sequence, so
        the repair is attributed to the flow it delayed."""
        if not self.enabled:
            return
        self.nak_repairs += 1
        if not group.startswith("ingress."):
            return
        flow = self.flows.get((group[len("ingress."):], seq))
        if flow is None:
            return
        flow.annotations["naks"] = flow.annotations.get("naks", 0) + 1
        self.store.annotate(flow.span_ids.get((None, "flow")),
                            naks=flow.annotations["naks"])

    def packet_observed(self, time: float, vm: str, seq: int, replica: int,
                        proposal: Optional[float] = None) -> None:
        """A replica's dom0 finished processing the inbound packet and
        its VMM proposed a delivery time."""
        if not self.enabled:
            return
        flow = self.flows.get((vm, seq))
        if flow is None or replica in flow.observed:
            return
        flow.observed[replica] = time
        self._close(flow, "replicate", time, replica)
        self._open(flow, "agree", time, replica, proposal=proposal)

    def decision_committed(self, time: float, vm: str, seq: int,
                           replica: int, decision: float) -> None:
        """The median delivery time for the packet was decided at a
        replica (agreement, cached/unicast reply, or stale sweep)."""
        if not self.enabled:
            return
        flow = self.flows.get((vm, seq))
        if flow is None or replica in flow.committed:
            return
        flow.committed[replica] = time
        if not self._close(flow, "agree", time, replica, decision=decision):
            # decided before this replica ever observed the packet (it
            # missed the datagram): there is no agree span to close
            pass
        self._open(flow, "offset-wait", time, replica, decision=decision)

    def net_injected(self, time: float, vm: str, seq: int, replica: int,
                     virt: float, skipped: bool = False) -> None:
        """The interrupt was injected at a VM exit (or the slot was
        skipped because this replica never saw the packet)."""
        if not self.enabled:
            return
        flow = self.flows.get((vm, seq))
        if flow is None or replica in flow.injected:
            return
        flow.injected[replica] = time
        flow.skipped[replica] = skipped
        self._close(flow, "offset-wait", time, replica, virt=virt,
                    skipped=skipped)
        if not skipped:
            self._open(flow, "service", time, replica)

    def output_emitted(self, time: float, vm: str, out_seq: int,
                       replica: int, flow_seq: Optional[int]) -> None:
        """A replica's dom0 emitted a guest output attributed (via guest
        flow context) to inbound flow ``flow_seq``."""
        if not self.enabled or flow_seq is None:
            return
        flow = self.flows.get((vm, flow_seq))
        if flow is None:
            return
        flow.outputs += 1
        if flow.released is not None:
            return  # flow already complete; later chunks are just counted
        out_key = (vm, out_seq)
        if out_key not in self._out_index:
            self._out_index[out_key] = flow.key
            flow.out_seqs.append(out_seq)
        flow.emits[(replica, out_seq)] = time
        flow.first_emit.setdefault(replica, (time, out_seq))

    def copy_arrived(self, time: float, vm: str, out_seq: int,
                     replica: int) -> None:
        """One replica's copy of an output reached the egress node."""
        if not self.enabled:
            return
        key = self._out_index.get((vm, out_seq))
        if key is None:
            return
        flow = self.flows.get(key)
        if flow is not None:
            flow.copies += 1

    def output_released(self, time: float, vm: str, out_seq: int,
                        replica: Optional[int]) -> None:
        """The egress node forwarded an output.  ``replica`` is the one
        whose arrival completed the release quorum (``None`` when a
        degraded-mode retarget released it instead)."""
        if not self.enabled:
            return
        key = self._out_index.get((vm, out_seq))
        if key is None:
            return
        flow = self.flows.get(key)
        if flow is None:
            return
        self.released_count += 1
        flow.releases += 1
        if flow.released is not None:
            return  # the flow completed on an earlier output
        flow.released = time
        flow.release_replica = replica
        flow.released_out_seq = out_seq
        self._complete(flow, time, out_seq)

    # ------------------------------------------------------------------
    # completion: close service spans, build quorum-wait, mark critical
    # ------------------------------------------------------------------
    def _complete(self, flow: Flow, time: float, out_seq: int) -> None:
        for replica, (first_t, first_out) in sorted(flow.first_emit.items()):
            emit = flow.emits.get((replica, out_seq))
            end = emit if emit is not None else first_t
            self._close(flow, "service", end, replica,
                        out_seq=out_seq if emit is not None else first_out)
        self._close(flow, "flow", time, None, releases=1)
        critical = flow.release_replica
        if critical is not None and (critical, out_seq) in flow.emits:
            emit = flow.emits[(critical, out_seq)]
            sid = self.store.start("quorum-wait", emit,
                                   flow_id=flow.flow_id, vm=flow.vm,
                                   replica=critical, out_seq=out_seq,
                                   parent_id=flow.span_ids.get(
                                       (None, "flow")),
                                   critical=True)
            self.store.finish(sid, time)
            flow.span_ids[(critical, "quorum-wait")] = sid
            for stage in ("replicate", "agree", "offset-wait", "service"):
                self.store.annotate(
                    flow.span_ids.get((critical, stage)), critical=True)
            self.store.annotate(flow.span_ids.get((None, "flow")),
                                critical_replica=critical)
        if flow.complete:
            self.completed_count += 1

    # ------------------------------------------------------------------
    # flow-level annotations (coordination details, degradations)
    # ------------------------------------------------------------------
    def flow_annotate(self, vm: str, seq: int, **annotations: Any) -> None:
        if not self.enabled:
            return
        flow = self.flows.get((vm, seq))
        if flow is None:
            return
        flow.annotations.update(annotations)
        self.store.annotate(flow.span_ids.get((None, "flow")),
                            **annotations)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def completed_flows(self) -> List[Flow]:
        """Flows with a full critical path, in admission order."""
        return [flow for flow in self.flows.values() if flow.complete]

    def incomplete_count(self) -> int:
        return sum(1 for flow in self.flows.values() if not flow.complete)

    def get_flow(self, flow_id: str) -> Optional[Flow]:
        """Look a flow up by its ``vm/seq`` display id."""
        vm, _, seq = flow_id.rpartition("/")
        if not vm:
            return None
        try:
            return self.flows.get((vm, int(seq)))
        except ValueError:
            return None

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"<FlowTracker {state} flows={len(self.flows)} "
                f"complete={self.completed_count} "
                f"dropped={self.dropped_flows}>")


# ---------------------------------------------------------------------------
# the critical-path analyzer
# ---------------------------------------------------------------------------
def critical_path(flow: Flow) -> List[Tuple[str, float, float]]:
    """``(stage, start, end)`` segments of a completed flow's critical
    path, in pipeline order.  Segments abut: each stage starts exactly
    where the previous one ended, so their durations sum to the flow's
    end-to-end mediation delay."""
    stages = flow.stage_times()
    if stages is None:
        raise ValueError(f"flow {flow.flow_id} has no complete "
                         f"critical path")
    segments = []
    cursor = flow.admitted
    for stage in STAGES:
        end = cursor + stages[stage]
        segments.append((stage, cursor, end))
        cursor = end
    return segments


def stage_metrics(tracker: FlowTracker,
                  metrics: Optional[MetricSet] = None) -> MetricSet:
    """Feed every completed flow's stage decomposition into a
    :class:`~repro.sim.monitor.MetricSet` (seconds): one observation
    stream per stage (``flow.stage.<name>``) plus ``flow.total``, so
    ``snapshot()`` reports per-stage p50/p95/p99."""
    metrics = metrics if metrics is not None else MetricSet()
    for flow in tracker.completed_flows():
        stages = flow.stage_times()
        for stage in STAGES:
            metrics.observe(f"flow.stage.{stage}", stages[stage])
        metrics.observe("flow.total", flow.end_to_end)
        metrics.add("flow.total.seconds", flow.end_to_end)
        metrics.incr("flows.completed")
    metrics.incr("flows.tracked", len(tracker.flows))
    metrics.incr("flows.dropped", tracker.dropped_flows)
    return metrics
