"""Observability drivers behind the ``repro trace`` / ``repro metrics``
CLI subcommands.

Both run the same representative cloud (an echo server pinged from an
external client next to a disk-bound PARSEC kernel -- the Sec. VII-A
setup) with tracing fully on, then report on what the observability
layer captured: per-category record counts, ring-buffer drops, JSONL
exports, mediation-delay percentiles, and event-loop health counters.
"""

from typing import Iterable, Optional, Tuple

from repro.core.config import DEFAULT
from repro.sim.kernel import Simulator
from repro.sim.monitor import JsonlSink, MetricSet, Trace


def run_observed_workload(duration: float = 2.0, seed: int = 5,
                          categories: Optional[Iterable[str]] = None,
                          max_per_category: Optional[int] = None,
                          profile: bool = False,
                          jsonl_path: Optional[str] = None,
                          flows: bool = False,
                          ) -> Tuple[Simulator, Optional[JsonlSink]]:
    """Run the echo+compute cloud with tracing enabled; returns the
    simulator (trace attached) and the streaming sink, if one was
    requested.  ``flows=True`` also turns on causal span/flow tracking
    (``sim.flows``)."""
    from repro.analysis.experiments import PERF_HOST_KWARGS
    from repro.cloud.fabric import Cloud
    from repro.workloads.echo import EchoServer, PingClient
    from repro.workloads.parsec import BlackScholes

    trace = Trace(categories=categories,
                  max_per_category=max_per_category)
    sink = JsonlSink(jsonl_path, trace) if jsonl_path else None
    sim = Simulator(seed=seed, trace=trace, profile=profile)
    if flows:
        sim.flows.enable()
    cloud = Cloud(sim, machines=3, config=DEFAULT,
                  host_kwargs=PERF_HOST_KWARGS)
    cloud.create_vm("echo", EchoServer)
    cloud.create_vm("compute", lambda guest: BlackScholes(guest),
                    hosts=[0, 1, 2])
    client = cloud.add_client("client:1")
    pinger = PingClient(client, "vm:echo", mean_interval=0.015)
    sim.call_after(0.05, pinger.start)
    try:
        cloud.run(until=duration)
    finally:
        if sink is not None:
            sink.close()
    return sim, sink


def trace_category_rows(trace: Trace) -> list:
    """(category, retained, dropped) rows for every recorded category."""
    return [(category, retained,
             trace.dropped_by_category.get(category, 0))
            for category, retained in trace.counts().items()]


def mediation_delay_metrics(trace: Trace) -> MetricSet:
    """Derive the Sec. VII-A mediation-delay observations from a trace.

    ``delay.net`` is ingress arrival -> replica-0 delivery (Δn in real
    time); ``delay.disk`` is disk request -> delivery (Δd).  Values are
    seconds.
    """
    metrics = MetricSet()
    arrivals = {r.payload.get("seq"): r.time
                for r in trace.iter_records("ingress.replicate")}
    for record in trace.iter_records("vmm.deliver.net", replica=0):
        arrival = arrivals.get(record.payload.get("seq"))
        if arrival is not None:
            metrics.observe("delay.net", record.time - arrival)
    requests = {(r.payload.get("vm"), r.payload.get("req")): r.time
                for r in trace.iter_records("vmm.disk.request", replica=0)}
    for record in trace.iter_records("vmm.deliver.disk", replica=0):
        key = (record.payload.get("vm"), record.payload.get("req"))
        if key in requests:
            metrics.observe("delay.disk", record.time - requests[key])
    return metrics
