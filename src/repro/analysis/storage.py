"""Storage-repair cell: erasure-coded tenant under a host crash.

The ``storage_repair`` campaign runner (and the ``storage.repair``
benchmark behind ``repro bench run`` / ``repro storage``) deploys one
k-of-n erasure-coded storage tenant through the workload registry,
runs the closed PUT/GET/verify loop, condemns one share-holding host
mid-run, and checks that the whole self-healing stack converges:

- the fabric suspicion pipeline degrades the VM and wakes both the
  :class:`~repro.faults.heal.EvacuationController` (replica-level
  replay/evacuation) and the tenant's
  :class:`~repro.workloads.storage.RepairDaemon` (share-level
  reconstruction across the mediated fabric);
- at end of run every object has ``n`` live shares again -- each
  tenant VM's live replicas hold a digest-verified share
  (:func:`live_share_report`);
- the chaos invariant gates (:mod:`repro.faults.invariants`) hold, and
  a same-seed replay reproduces the identical
  fault/heal/storage/release trace.

The primary benchmark metric is **repaired bytes per simulated
second** -- repair traffic crosses ingress replication, median
agreement, and the egress quorum like any client write, so it prices
StopWatch's mediation for the most disk-interrupt-heavy workload in
the suite.
"""

from typing import Dict, List, Optional, Tuple

from repro.faults import FaultInjector, FaultSchedule
from repro.sim.kernel import Simulator
from repro.sim.monitor import Trace

#: trace categories a storage cell records
STORAGE_CATEGORIES = ("fault", "recovery", "heal", "egress", "storage")

#: trace prefixes folded into the cell's determinism signature
SIGNATURE_PREFIXES = ("fault.", "recovery.", "heal.", "storage.",
                      "egress.release")

#: tightened failure detection (as the chaos cells use), so suspicion
#: fires well before the drain window
CELL_CONFIG = {"failure_detection": True, "egress_stale_timeout": 0.8,
               "stale_agreement_timeout": 0.5}

#: trailing load-free drain so repairs and agreements settle
CELL_DRAIN = 1.5


def build_storage_spec(k: int = 2, n: int = 3,
                       object_size: int = 8192, objects: int = 3,
                       clients: int = 1, machines: Optional[int] = None,
                       shards: int = 1, name: str = "storage-cell"):
    """A one-tenant erasure-coded storage scenario with spare hosts."""
    from repro.cloud.scenario import ScenarioSpec, TenantSpec

    return ScenarioSpec(
        name=name,
        machines=machines if machines is not None else max(9, 2 * n + 3),
        shards=shards,
        config=dict(CELL_CONFIG),
        tenants=[TenantSpec(
            name="store", count=n, workload="storage", clients=clients,
            workload_params={"k": k, "n": n, "object_size": object_size,
                             "objects": objects})])


def storage_signature(trace: Trace) -> List[Tuple]:
    """Deterministic signature: fault/heal/storage/release records in
    global order with full payloads (same shape as the chaos cells)."""
    signature = []
    for record in trace.iter_records(""):
        if any(record.category == prefix.rstrip(".")
               or record.category.startswith(prefix)
               for prefix in SIGNATURE_PREFIXES):
            signature.append((round(record.time, 9), record.category,
                              tuple(sorted(record.payload.items()))))
    return signature


def live_share_report(built, tenant: str = "store") -> Dict[str, int]:
    """object id -> number of tenant VMs whose *live* replicas all
    hold that object's share (the ``n`` live shares observable)."""
    report: Dict[str, int] = {}
    objects = set()
    vms = [built.cloud.vms[name] for name in built.tenant_vms[tenant]]
    for vm in vms:
        for workload in vm.workloads:
            objects.update(getattr(workload, "shares", {}))
    for obj in sorted(objects):
        live = 0
        for vm in vms:
            held = []
            for replica_id, workload in enumerate(vm.workloads):
                if vm.vmms[replica_id].failed:
                    continue
                held.append(obj in workload.shares)
            if held and all(held):
                live += 1
        report[obj] = live
    return report


def _cell_once(seed: int, duration: float, k: int, n: int,
               object_size: int, objects: int, crash_at: float,
               profile: bool = False) -> Tuple[dict, List[Tuple]]:
    """One storage-repair run; returns (plain result, signature)."""
    import time as _time

    from repro.faults.heal import EvacuationController
    from repro.faults.invariants import check_all
    from repro.workloads.storage import RepairDaemon, share_digest

    cell_started = _time.perf_counter()
    trace = Trace(categories=STORAGE_CATEGORIES)
    sim = Simulator(seed=seed, trace=trace, profile=profile)
    spec = build_storage_spec(k=k, n=n, object_size=object_size,
                              objects=objects)
    built = spec.build(sim)
    cloud = built.cloud
    healer = EvacuationController(cloud, placer=built.placer)
    driver = built.drivers[("store", 0)]
    targets = [f"vm:{name}" for name in built.tenant_vms["store"]]
    repair_node = cloud.add_client("client:repair.0")
    daemon = RepairDaemon(cloud, repair_node, targets, driver.client,
                          k=k, n=n).attach()

    # condemn the host carrying share 0's first replica: the storage
    # equivalent of losing one disk shelf
    victim_host = cloud.vms[built.tenant_vms["store"][0]].hosts[0]
    schedule = FaultSchedule.from_entries([
        (crash_at, "crash_host", f"host:{victim_host}")])
    injector = FaultInjector(cloud, schedule)
    injector.arm()

    built.run(until=duration, drain=CELL_DRAIN)

    shares_live = live_share_report(built)
    directory = driver.client.directory
    codec = driver.client.codec
    shares_verified = all(
        share_digest(workload.shares[obj][1])
        == directory[obj]["digests"][workload.shares[obj][0]]
        for vm_name in built.tenant_vms["store"]
        for replica_id, workload in enumerate(
            cloud.vms[vm_name].workloads)
        if not cloud.vms[vm_name].vmms[replica_id].failed
        for obj in workload.shares if obj in directory)
    violations = check_all(cloud, built.placer,
                           {"store.0": driver},
                           client_stop=duration - CELL_DRAIN,
                           clients=2)
    result = {
        "seed": seed,
        "duration": duration,
        "k": k,
        "n": n,
        "object_size": object_size,
        "objects": objects,
        "crash_at": crash_at,
        "victim_host": victim_host,
        "share_size": codec.share_size(object_size),
        "sent": driver.sent,
        "replies": len(driver.reply_times),
        "puts_completed": driver.client.puts_completed,
        "gets_completed": driver.client.gets_completed,
        "verify_failures": driver.verify_failures,
        "client_failures": driver.failed,
        "client_retries": driver.retries,
        "repairs_started": daemon.repairs_started,
        "repairs_completed": daemon.repairs_completed,
        "repair_failures": daemon.repair_failures,
        "repaired_bytes": daemon.repaired_bytes,
        "repaired_bytes_per_sim_s": daemon.repaired_bytes / duration,
        "heal_completions": daemon.heal_completions,
        "evacuations": len(healer.evacuations),
        "heal_failures": len(healer.failures),
        "objects_stored": len(directory),
        "min_live_shares": min(shares_live.values(), default=0),
        "shares_live": shares_live,
        "shares_verified": bool(shares_verified),
        "violations": [str(v) for v in violations],
    }
    if profile and sim.profiler is not None:
        result["profile"] = sim.profiler.summary(
            loop_seconds=sim.wall_seconds,
            total_seconds=_time.perf_counter() - cell_started,
            release_times=trace.times("egress.release"))
    return result, storage_signature(trace)


def run_storage_repair_cell(seed: int = 7, duration: float = 6.0,
                            k: int = 2, n: int = 3,
                            object_size: int = 8192, objects: int = 3,
                            crash_at: float = 1.2,
                            check_determinism: bool = True,
                            profile: bool = False) -> dict:
    """One invariant-gated storage-repair cell (campaign-dispatchable).

    ``ok`` requires: no invariant violations, every stored object ends
    with ``n`` live digest-verified shares, at least one reconstruction
    actually ran, and (by default) a same-seed replay reproduces the
    identical fault/heal/storage/release signature.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k} n={n}")
    if duration <= crash_at + CELL_DRAIN:
        raise ValueError(
            f"duration must exceed crash_at + {CELL_DRAIN}s drain, "
            f"got {duration}")
    result, signature = _cell_once(seed, duration, k, n, object_size,
                                   objects, crash_at, profile=profile)
    result["signature_records"] = len(signature)
    result["deterministic"] = None
    result["divergence"] = None
    if check_determinism:
        _, replay = _cell_once(seed, duration, k, n, object_size,
                               objects, crash_at)
        result["deterministic"] = signature == replay
        if not result["deterministic"]:
            for index, (a, b) in enumerate(zip(signature, replay)):
                if a != b:
                    result["divergence"] = (
                        f"record {index}: {a!r} != {b!r}")
                    break
            else:
                result["divergence"] = (
                    f"lengths differ: {len(signature)} vs {len(replay)}")
    result["ok"] = (not result["violations"]
                    and result["objects_stored"] > 0
                    and result["min_live_shares"] == n
                    and result["shares_verified"]
                    and result["repairs_completed"] > 0
                    and result["verify_failures"] == 0
                    and result["deterministic"] is not False)
    return result


#: result keys that become trajectory-entry metrics
_ENTRY_METRICS = ("sent", "replies", "puts_completed", "gets_completed",
                  "verify_failures", "client_failures", "client_retries",
                  "repairs_started", "repairs_completed",
                  "repair_failures", "repaired_bytes",
                  "repaired_bytes_per_sim_s", "evacuations",
                  "heal_failures", "objects_stored", "min_live_shares",
                  "signature_records")


def storage_entry(result: dict, label: str = "head",
                  config: Optional[dict] = None) -> dict:
    """The :mod:`repro.bench` trajectory entry for one repair cell.

    Primary metric: ``repaired_bytes_per_sim_s`` -- reconstruction
    throughput across the mediated fabric, fully deterministic for a
    fixed config, so the regression gate only trips on real behaviour
    changes.
    """
    from repro.bench.schema import make_entry

    metrics = {key: result.get(key) for key in _ENTRY_METRICS}
    metrics["violations"] = len(result.get("violations", ()))
    metrics["ok"] = bool(result.get("ok"))
    return make_entry("storage.repair", config, metrics,
                      primary_metric="repaired_bytes_per_sim_s",
                      label=label, profile=result.get("profile"))


def write_storage_bench(path: str, result: dict, label: str = "head",
                        config: Optional[dict] = None) -> str:
    """Append the cell result to the ``BENCH_storage.json`` trajectory."""
    from repro.bench.schema import append_entry

    append_entry(path, storage_entry(result, label=label, config=config))
    return path
