"""Fleet-scale evaluation: StopWatch under growing tenant counts.

The paper evaluates StopWatch on a handful of machines; this module
asks the systems question that follows -- what happens when the fabric
hosts *fleets*.  For each tenant count it builds a placed multi-tenant
:class:`~repro.cloud.scenario.ScenarioSpec`, runs it, and reports

- simulator throughput (events/sec, wall seconds),
- application throughput (egress releases per simulated second),
- per-flow mediation delay p50/p95 (ingress admission -> egress
  release, from the causal flow tracker), and
- the determinism/placement verdicts: ``PlacementScheduler.verify()``
  on the wired fabric, replica output-count agreement, and a byte
  signature of the seeded egress release trace (equal signatures
  across two same-seed runs == byte-identical observable behaviour).

``scale_sweep`` is registered in ``analysis.experiments.RUNNERS`` and
drives the ``repro scale`` CLI and the ``benchmarks/`` scale table;
rows are plain data, so campaign workers can cache them.
"""

import hashlib
import json
from typing import Dict, List, Optional, Sequence

from repro.cloud.scenario import ScenarioSpec, TenantSpec
from repro.sim.kernel import Simulator
from repro.sim.monitor import Trace

#: same bounded-trace contract as the experiment runners
TRACE_CAP = 65_536

#: the categories a scale cell needs (placement audit + egress signature)
SCALE_TRACE_CATEGORIES = {
    "placement.assign",
    "placement.fallback",
    "egress.release",
    "scenario.build",
}


def build_scale_spec(tenants: int,
                     shards: int = 1,
                     workload: str = "echo",
                     clients_per_tenant: int = 1,
                     request_rate: float = 40.0,
                     machines: Optional[int] = None,
                     name: Optional[str] = None,
                     workload_params: Optional[Dict[str, object]] = None
                     ) -> ScenarioSpec:
    """A homogeneous ``tenants``-VM scenario for one sweep cell.

    ``workload`` is any name in :mod:`repro.workloads.registry`;
    ``workload_params`` overrides that workload's declared defaults
    (e.g. ``{"k": 2, "n": 3}`` for ``storage``).
    """
    return ScenarioSpec(
        name=name or f"scale-{tenants}",
        machines=machines,
        shards=shards,
        tenants=[TenantSpec(name="tenant", count=tenants,
                            workload=workload,
                            clients=clients_per_tenant,
                            request_rate=request_rate,
                            workload_params=dict(workload_params or {}))],
    )


def egress_signature(sim) -> str:
    """SHA-256 over the ordered ``egress.release`` trace -- the
    externally observable output schedule.  Two same-seed runs must
    produce equal signatures (byte-identical release behaviour)."""
    releases = [(record.time, record.payload["vm"], record.payload["seq"])
                for record in sim.trace.select("egress.release")]
    blob = json.dumps(releases, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def run_scale_cell(spec: ScenarioSpec, duration: float = 4.0,
                   seed: int = 1,
                   profile: bool = False) -> Dict[str, object]:
    """Run one scenario and report throughput + verification verdicts.

    With ``profile=True`` the row carries a ``"profile"`` key: the
    :class:`~repro.prof.profiler.SubsystemProfiler` summary for the
    whole cell (build + run + verification), with releases folded into
    the sim-time timeline.  Profiling is measurement-only -- the egress
    signature is byte-identical either way (gated in CI).
    """
    import time as _time

    cell_started = _time.perf_counter()
    sim = Simulator(seed=seed, profile=profile, trace=Trace(
        categories=SCALE_TRACE_CATEGORIES, max_per_category=TRACE_CAP))
    sim.flows.enable()
    built = spec.build(sim)
    built.run(until=duration)

    outputs_consistent = True
    per_tenant = {}
    try:
        per_tenant = built.per_tenant_outputs()
    except AssertionError:
        outputs_consistent = False

    delays = sorted(flow.end_to_end for flow in sim.flows.flows.values()
                    if flow.released is not None)
    stats = sim.stats()
    machines, _ = spec.resolved_fleet()
    released = built.cloud.packets_released
    row: Dict[str, object] = {
        "scenario": spec.name,
        "tenants": spec.total_vms,
        "machines": machines,
        "capacity": built.placer.capacity,
        "shards": spec.shards,
        "duration": duration,
        "seed": seed,
        "events_fired": stats["events_fired"],
        "events_per_second": stats["events_per_second"],
        "wall_seconds": stats["wall_seconds"],
        "heap_high_water": stats["heap_high_water"],
        "bucket_high_water": stats["bucket_high_water"],
        "far_high_water": stats["far_high_water"],
        "packets_replicated": built.cloud.packets_replicated,
        "packets_released": released,
        "releases_per_sim_second": released / duration if duration else 0.0,
        "mediation_p50": _percentile(delays, 0.50),
        "mediation_p95": _percentile(delays, 0.95),
        "mediated_flows": len(delays),
        "placement_verified": built.verify_placement(),
        "outputs_consistent": outputs_consistent,
        "per_tenant_outputs": per_tenant,
        "egress_signature": egress_signature(sim),
    }
    if profile and sim.profiler is not None:
        row["profile"] = sim.profiler.summary(
            loop_seconds=stats["wall_seconds"],
            total_seconds=_time.perf_counter() - cell_started,
            release_times=sim.trace.times("egress.release"))
    return row


def scale_sweep(tenant_counts: Sequence[int] = (1, 8, 32),
                duration: float = 4.0,
                seed: int = 1,
                shards: int = 1,
                workload: str = "echo",
                clients_per_tenant: int = 1,
                request_rate: float = 40.0,
                machines: Optional[int] = None,
                profile: bool = False,
                workload_params: Optional[Dict[str, object]] = None
                ) -> List[Dict[str, object]]:
    """How throughput and mediation delay scale with tenant count.

    One row per tenant count (see :func:`run_scale_cell`); the fleet is
    auto-sized per cell unless ``machines`` pins it.  Any registry
    workload name is accepted; ``workload_params`` is forwarded to
    every tenant in the sweep.
    """
    rows = []
    for tenants in tenant_counts:
        spec = build_scale_spec(
            tenants, shards=shards, workload=workload,
            clients_per_tenant=clients_per_tenant,
            request_rate=request_rate, machines=machines,
            workload_params=workload_params)
        rows.append(run_scale_cell(spec, duration=duration, seed=seed,
                                   profile=profile))
    return rows
