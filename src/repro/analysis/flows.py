"""Flow-level analysis behind ``repro spans`` / ``repro flows``.

Runs the representative echo+compute cloud with causal flow tracking on
(:mod:`repro.obs`), then reports where each packet's mediation delay
went: per-stage latency percentiles, the slowest flows with their
dominant stage, and per-flow span timelines.  Also registers the
``flow_stage_latency`` campaign runner so stage-level percentiles can be
rolled up across seeds by ``repro campaign aggregate``.
"""

from typing import List, Optional, Tuple

from repro.obs.flows import STAGES, FlowTracker, stage_metrics


def run_flow_workload(duration: float = 2.0, seed: int = 5,
                      max_per_category: Optional[int] = None,
                      profile: bool = False):
    """The ``repro trace`` workload with span/flow tracking enabled;
    returns the simulator (``sim.flows`` populated)."""
    from repro.analysis.observe import run_observed_workload

    sim, _ = run_observed_workload(duration=duration, seed=seed,
                                   max_per_category=max_per_category,
                                   flows=True, profile=profile)
    return sim


def flow_stage_rows(tracker: FlowTracker) -> List[tuple]:
    """(stage, count, mean ms, p50 ms, p95 ms, p99 ms) per stage plus a
    ``total`` row -- the critical-path decomposition in aggregate."""
    snapshot = stage_metrics(tracker).snapshot()["observations"]
    rows = []
    for stage in STAGES + ("total",):
        name = "flow.total" if stage == "total" else f"flow.stage.{stage}"
        stats = snapshot.get(name)
        if stats is None:
            continue
        rows.append((stage, stats["count"], stats["mean"] * 1000,
                     stats["p50"] * 1000, stats["p95"] * 1000,
                     stats["p99"] * 1000))
    return rows


def slowest_flow_rows(tracker: FlowTracker,
                      top_k: int = 10) -> List[tuple]:
    """The ``top_k`` slowest completed flows: (flow id, end-to-end ms,
    dominant stage, then one ms column per stage).  Ties broken by
    admission order so output is deterministic."""
    flows = sorted(tracker.completed_flows(),
                   key=lambda f: (-f.end_to_end, f.vm, f.seq))
    rows = []
    for flow in flows[:top_k]:
        stages = flow.stage_times()
        dominant = max(STAGES, key=lambda s: stages[s])
        rows.append((flow.flow_id, flow.end_to_end * 1000, dominant)
                    + tuple(stages[s] * 1000 for s in STAGES))
    return rows


def flow_detail_rows(tracker: FlowTracker,
                     flow_id: str) -> Tuple[Optional[object], List[tuple]]:
    """A flow's full span timeline: (flow, rows) where each row is
    (span name, replica, start ms, end ms, duration ms, annotations).
    Returns ``(None, [])`` for an unknown flow id."""
    flow = tracker.get_flow(flow_id)
    if flow is None:
        return None, []
    spans = sorted(tracker.store.by_flow(flow.flow_id),
                   key=lambda s: (s.start,
                                  -1 if s.replica is None else s.replica,
                                  s.span_id))
    rows = []
    for span in spans:
        replica = "-" if span.replica is None else span.replica
        end = span.end * 1000 if span.closed else float("nan")
        dur = span.duration * 1000 if span.closed else float("nan")
        notes = " ".join(f"{k}={v}" for k, v in
                         sorted(span.annotations.items()))
        rows.append((span.name, replica, span.start * 1000, end, dur,
                     notes))
    return flow, rows


def flow_summary(tracker: FlowTracker) -> dict:
    """Tracker-level counts for the CLI headline."""
    return {
        "flows": len(tracker.flows),
        "complete": tracker.completed_count,
        "incomplete": tracker.incomplete_count(),
        "dropped_flows": tracker.dropped_flows,
        "spans": len(tracker.store),
        "open_spans": tracker.store.open_count(),
        "dropped_spans": tracker.store.dropped,
        "nak_repairs": tracker.nak_repairs,
    }


# ---------------------------------------------------------------------------
# campaign runner
# ---------------------------------------------------------------------------
def flow_stage_latency(duration: float = 2.0, seed: int = 5) -> dict:
    """Campaign runner: per-stage latency decomposition of one seeded
    run.  The ``rows`` are the stage table; ``metrics`` is the full
    :meth:`~repro.sim.monitor.MetricSet.snapshot` that the campaign
    executor persists into the manifest for cross-seed rollups."""
    sim = run_flow_workload(duration=duration, seed=seed)
    rows = [list(row) for row in flow_stage_rows(sim.flows)]
    return {"rows": rows,
            "metrics": stage_metrics(sim.flows).snapshot()}
