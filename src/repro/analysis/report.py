"""Plain-text table rendering for experiment output."""

from typing import Any, List, Sequence

from repro.sim.monitor import MetricSet


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def summarize(values: List[float],
              percentiles: Sequence[float] = (50, 95, 99)) -> dict:
    """Count/mean/min/max plus percentile summary of a sample list."""
    empty = {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
    empty.update({f"p{p:g}": 0.0 for p in percentiles})
    if not values:
        return empty
    metrics = MetricSet(max_samples_per_metric=len(values))
    for value in values:
        metrics.observe("samples", value)
    return metrics.snapshot(percentiles)["observations"]["samples"]
