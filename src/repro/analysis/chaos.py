"""Chaos-run driver behind the ``repro chaos`` CLI subcommand.

Runs the representative mediated cloud (echo server, external pinging
client) with failure detection enabled, injects a fault campaign --
by default: crash one replica's host mid-run, restart and
replay-recover it later -- and reports what the pipeline did about it:
suspicion and degraded-agreement events, egress quorum changes, the
replay rejoin, and whether the client kept being served throughout.

Because every layer is seeded and the fault schedule is data, two runs
with the same seed must produce *identical* ``fault.*``/``recovery.*``/
``egress.release`` trace sequences; :func:`determinism_check` runs the
experiment twice and compares the signatures record for record.
"""

from typing import List, Optional, Tuple

from repro.core.config import RESILIENT
from repro.faults import FaultInjector, FaultSchedule
from repro.sim.kernel import Simulator
from repro.sim.monitor import Trace

#: trace prefixes that make up a chaos run's deterministic signature
SIGNATURE_PREFIXES = ("fault.", "recovery.", "egress.release")

#: categories recorded during a chaos run (everything the signature
#: needs, plus the drop/ingress context shown in the timeline)
CHAOS_CATEGORIES = ("fault", "recovery", "egress", "net.drop")


def default_schedule(crash_at: float = 0.9,
                     restart_at: float = 2.0,
                     replica: int = 2) -> FaultSchedule:
    """Crash one echo replica, then replay-recover it."""
    return FaultSchedule.from_entries([
        (crash_at, "crash_replica", f"echo:{replica}"),
        (restart_at, "restart_replica", f"echo:{replica}"),
    ])


def run_chaos_experiment(seed: int = 7, duration: float = 3.0,
                         schedule: Optional[FaultSchedule] = None,
                         ping_interval: float = 0.040) -> dict:
    """One seeded chaos run; returns everything tests/CLI inspect."""
    from repro.cloud.fabric import Cloud
    from repro.workloads.echo import EchoServer, PingClient

    if schedule is None:
        schedule = default_schedule()
    config = RESILIENT
    trace = Trace(categories=CHAOS_CATEGORIES)
    sim = Simulator(seed=seed, trace=trace)
    cloud = Cloud(sim, machines=3, config=config)
    vm = cloud.create_vm("echo", EchoServer)
    client = cloud.add_client("client:1")
    # fixed spacing: the client's send times are independent of every
    # fault, so reply timestamps line up across compared runs
    pinger = PingClient(client, "vm:echo", local_port=9000,
                        spacing_fn=lambda rng: ping_interval)
    sim.call_after(0.05, pinger.start)

    injector = FaultInjector(cloud, schedule)
    injector.arm()
    cloud.run(until=duration)
    return {
        "sim": sim,
        "cloud": cloud,
        "vm": vm,
        "pinger": pinger,
        "injector": injector,
        "schedule": schedule,
    }


def chaos_signature(trace: Trace) -> List[Tuple]:
    """The run's deterministic signature: every fault/recovery/release
    record, in global order, with full payloads."""
    signature = []
    for record in trace.iter_records(""):
        if any(record.category == p.rstrip(".")
               or record.category.startswith(p)
               for p in SIGNATURE_PREFIXES):
            signature.append((round(record.time, 9), record.category,
                              tuple(sorted(record.payload.items()))))
    return signature


def determinism_check(seed: int = 7, duration: float = 3.0,
                      schedule: Optional[FaultSchedule] = None) -> dict:
    """Run the experiment twice with the same seed; compare signatures."""
    first = run_chaos_experiment(seed=seed, duration=duration,
                                 schedule=schedule)
    second = run_chaos_experiment(seed=seed, duration=duration,
                                 schedule=schedule)
    sig_a = chaos_signature(first["sim"].trace)
    sig_b = chaos_signature(second["sim"].trace)
    divergence = None
    for index, (a, b) in enumerate(zip(sig_a, sig_b)):
        if a != b:
            divergence = (index, a, b)
            break
    if divergence is None and len(sig_a) != len(sig_b):
        shorter = min(len(sig_a), len(sig_b))
        longer = sig_a if len(sig_a) > len(sig_b) else sig_b
        divergence = (shorter, None, longer[shorter])
    return {
        "identical": divergence is None,
        "records": len(sig_a),
        "divergence": divergence,
        "first": first,
        "second": second,
    }


def chaos_timeline_rows(result: dict) -> List[Tuple]:
    """(time, category, detail) rows for the CLI timeline."""
    rows = []
    for record in result["sim"].trace.iter_records(""):
        if record.category.startswith(("fault.", "recovery.")) \
                or record.category.startswith("egress.") \
                and record.category != "egress.release":
            detail = " ".join(f"{k}={v}"
                              for k, v in sorted(record.payload.items()))
            rows.append((f"{record.time:.4f}", record.category, detail))
    return rows


def service_summary(result: dict) -> dict:
    """Client-visible availability around the fault window."""
    pinger = result["pinger"]
    schedule = result["schedule"]
    crash_times = [e.time for e in schedule if e.fault == "crash_replica"]
    restart_times = [e.time for e in schedule
                     if e.fault == "restart_replica"]
    window = (min(crash_times) if crash_times else 0.0,
              max(restart_times) if restart_times else 0.0)
    during = [t for t in pinger.reply_times if window[0] <= t <= window[1]]
    after = [t for t in pinger.reply_times if t > window[1]]
    return {
        "sent": pinger.sent,
        "replies": len(pinger.reply_times),
        "replies_during_outage": len(during),
        "replies_after_recovery": len(after),
        "released": result["cloud"].egress.packets_released,
        "window": window,
    }
