"""Chaos-run driver behind the ``repro chaos`` CLI subcommand.

Runs the representative mediated cloud (echo server, external pinging
client) with failure detection enabled, injects a fault campaign --
by default: crash one replica's host mid-run, restart and
replay-recover it later -- and reports what the pipeline did about it:
suspicion and degraded-agreement events, egress quorum changes, the
replay rejoin, and whether the client kept being served throughout.

Because every layer is seeded and the fault schedule is data, two runs
with the same seed must produce *identical* ``fault.*``/``recovery.*``/
``heal.*``/``egress.release`` trace sequences; :func:`determinism_check`
runs the experiment twice and compares the signatures record for
record.

On top of the single scripted run sits the randomized **chaos
campaign** (``repro chaos campaign``): :func:`run_chaos_cell` builds a
fabric with spare capacity and an armed
:class:`~repro.faults.heal.EvacuationController`, throws a seeded
random fault storm at it (:meth:`FaultSchedule.seeded` -- orphaned
crashes, permanent host condemnations, edge partitions), and gates the
outcome on the machine-checked invariants in
:mod:`repro.faults.invariants` plus a same-seed determinism replay.
:func:`run_chaos_campaign` sweeps cells across seeds x scenarios
through the campaign executor.
"""

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import RESILIENT
from repro.faults import FaultInjector, FaultSchedule
from repro.faults.schedule import FaultEvent
from repro.sim.kernel import Simulator
from repro.sim.monitor import Trace

#: trace prefixes that make up a chaos run's deterministic signature
SIGNATURE_PREFIXES = ("fault.", "recovery.", "heal.", "egress.release")

#: categories recorded during a chaos run (everything the signature
#: needs, plus the drop/ingress context shown in the timeline)
CHAOS_CATEGORIES = ("fault", "recovery", "heal", "egress", "net.drop")


def default_schedule(crash_at: float = 0.9,
                     restart_at: float = 2.0,
                     replica: int = 2) -> FaultSchedule:
    """Crash one echo replica, then replay-recover it."""
    return FaultSchedule.from_entries([
        (crash_at, "crash_replica", f"echo:{replica}"),
        (restart_at, "restart_replica", f"echo:{replica}"),
    ])


def run_chaos_experiment(seed: int = 7, duration: float = 3.0,
                         schedule: Optional[FaultSchedule] = None,
                         ping_interval: float = 0.040) -> dict:
    """One seeded chaos run; returns everything tests/CLI inspect."""
    from repro.cloud.fabric import Cloud
    from repro.workloads.echo import EchoServer, PingClient

    if schedule is None:
        schedule = default_schedule()
    config = RESILIENT
    trace = Trace(categories=CHAOS_CATEGORIES)
    sim = Simulator(seed=seed, trace=trace)
    cloud = Cloud(sim, machines=3, config=config)
    vm = cloud.create_vm("echo", EchoServer)
    client = cloud.add_client("client:1")
    # fixed spacing: the client's send times are independent of every
    # fault, so reply timestamps line up across compared runs
    pinger = PingClient(client, "vm:echo", local_port=9000,
                        spacing_fn=lambda rng: ping_interval)
    sim.call_after(0.05, pinger.start)

    injector = FaultInjector(cloud, schedule)
    injector.arm()
    cloud.run(until=duration)
    return {
        "sim": sim,
        "cloud": cloud,
        "vm": vm,
        "pinger": pinger,
        "injector": injector,
        "schedule": schedule,
    }


def chaos_signature(trace: Trace) -> List[Tuple]:
    """The run's deterministic signature: every fault/recovery/release
    record, in global order, with full payloads."""
    signature = []
    for record in trace.iter_records(""):
        if any(record.category == p.rstrip(".")
               or record.category.startswith(p)
               for p in SIGNATURE_PREFIXES):
            signature.append((round(record.time, 9), record.category,
                              tuple(sorted(record.payload.items()))))
    return signature


def determinism_check(seed: int = 7, duration: float = 3.0,
                      schedule: Optional[FaultSchedule] = None) -> dict:
    """Run the experiment twice with the same seed; compare signatures."""
    first = run_chaos_experiment(seed=seed, duration=duration,
                                 schedule=schedule)
    second = run_chaos_experiment(seed=seed, duration=duration,
                                 schedule=schedule)
    sig_a = chaos_signature(first["sim"].trace)
    sig_b = chaos_signature(second["sim"].trace)
    divergence = None
    for index, (a, b) in enumerate(zip(sig_a, sig_b)):
        if a != b:
            divergence = (index, a, b)
            break
    if divergence is None and len(sig_a) != len(sig_b):
        shorter = min(len(sig_a), len(sig_b))
        longer = sig_a if len(sig_a) > len(sig_b) else sig_b
        divergence = (shorter, None, longer[shorter])
    return {
        "identical": divergence is None,
        "records": len(sig_a),
        "divergence": divergence,
        "first": first,
        "second": second,
    }


def chaos_timeline_rows(result: dict) -> List[Tuple]:
    """(time, category, detail) rows for the CLI timeline."""
    rows = []
    for record in result["sim"].trace.iter_records(""):
        if record.category.startswith(("fault.", "recovery.")) \
                or record.category.startswith("egress.") \
                and record.category != "egress.release":
            detail = " ".join(f"{k}={v}"
                              for k, v in sorted(record.payload.items()))
            rows.append((f"{record.time:.4f}", record.category, detail))
    return rows


# ---------------------------------------------------------------------------
# randomized chaos campaign: seeded storms x scenarios, invariant-gated
# ---------------------------------------------------------------------------
#: scenarios a campaign cell can build (all have spare host capacity,
#: so the EvacuationController always has somewhere to evacuate to)
CELL_SCENARIOS = ("single", "multi", "sharded")

#: quiet ramp before the storm opens
CELL_STORM_START = 0.3
#: fraction of the run the storm occupies
CELL_STORM_FRACTION = 0.3
#: trailing load-free drain so agreements/releases can settle
CELL_DRAIN = 1.5
#: per-request client timeout in cells (exercises the retry path)
CELL_CLIENT_TIMEOUT = 0.25

#: tightened failure detection for cells: suspicion must fire well
#: inside the storm window for the healer to have anything to do
CELL_CONFIG = {"egress_stale_timeout": 0.8,
               "stale_agreement_timeout": 0.5}


def _cell_spec(scenario: str):
    """The multi-tenant scenario specs cells deploy (echo tenants with
    client retry enabled; 9 machines for 4 triangles leaves ~5 slots
    of spare capacity to evacuate onto)."""
    from repro.cloud.scenario import ScenarioSpec, TenantSpec

    tenants = [TenantSpec(name=f"ten{i}", workload="echo", clients=1,
                          request_rate=25.0,
                          request_timeout=CELL_CLIENT_TIMEOUT)
               for i in range(4)]
    return ScenarioSpec(
        name=f"chaos-{scenario}", tenants=tenants, machines=9,
        shards=2 if scenario == "sharded" else 1,
        config=dict(CELL_CONFIG, failure_detection=True))


def _build_cell(sim, scenario: str, duration: float):
    """Wire one cell's fabric; returns (cloud, placer, pingers, run)."""
    cutoff = duration - CELL_DRAIN
    if scenario == "single":
        from repro.cloud.fabric import Cloud
        from repro.placement.scheduler import PlacementScheduler
        from repro.workloads.echo import EchoServer, PingClient

        config = RESILIENT.with_overrides(**CELL_CONFIG)
        placer = PlacementScheduler(5, 2)
        cloud = Cloud(sim, machines=5, config=config, placer=placer)
        cloud.create_vm("echo", EchoServer)
        client = cloud.add_client("client:echo.0")
        pinger = PingClient(client, "vm:echo", local_port=9000,
                            spacing_fn=lambda rng: 0.040,
                            timeout=CELL_CLIENT_TIMEOUT)
        sim.call_after(0.05, pinger.start)
        sim.call_after(cutoff, pinger.stop)
        return (cloud, placer, {"echo.0": pinger},
                lambda: cloud.run(until=duration))
    if scenario not in CELL_SCENARIOS:
        raise ValueError(f"unknown chaos scenario {scenario!r}; "
                         f"choose one of {CELL_SCENARIOS}")
    built = _cell_spec(scenario).build(sim)
    pingers = {f"{vm}.{slot}": driver
               for (vm, slot), driver in sorted(built.drivers.items())}
    return (built.cloud, built.placer, pingers,
            lambda: built.run(until=duration, drain=CELL_DRAIN))


def cell_storm(cloud, seed: int, duration: float,
               rate: float, scenario: str) -> FaultSchedule:
    """The cell's seeded random storm, shifted past the client ramp.

    Targets are derived from the *wired* fabric -- every replica, every
    replica-carrying host (as permanent-crash candidates) and every
    VM's edge shards -- so the storm composition tracks the scenario.
    """
    vm_names = sorted(cloud.vms)
    replica_targets = [f"{name}:{rid}" for name in vm_names
                       for rid in range(cloud.config.replicas)]
    occupied = sorted({vmm.host.host_id
                       for vm in cloud.vms.values() for vmm in vm.vmms})
    storm = FaultSchedule.seeded(
        seed=seed,
        duration=duration * CELL_STORM_FRACTION,
        replica_targets=replica_targets,
        host_targets=[f"host:{h.host_id}" for h in cloud.hosts],
        rate=rate,
        recovery_delay=0.5,
        crash_hosts=[f"host:{h}" for h in occupied],
        edge_targets=[f"{side}:{name}" for name in vm_names
                      for side in ("ingress", "egress")],
        max_host_crashes=1 if scenario == "single" else 2,
        edge_heal_delay=0.4,
        orphan_probability=0.25)
    return FaultSchedule([
        FaultEvent(e.time + CELL_STORM_START, e.fault, e.target,
                   dict(e.params))
        for e in storm])


def _cell_once(seed: int, scenario: str, duration: float,
               rate: float, profile: bool = False) -> Tuple[dict, List[Tuple]]:
    """One storm run; returns (plain-data result, trace signature)."""
    import time as _time

    from repro.faults.heal import EvacuationController
    from repro.faults.invariants import check_all

    cell_started = _time.perf_counter()
    trace = Trace(categories=CHAOS_CATEGORIES + ("ingress",))
    sim = Simulator(seed=seed, trace=trace, profile=profile)
    cloud, placer, pingers, run = _build_cell(sim, scenario, duration)
    healer = EvacuationController(cloud, placer=placer)
    storm = cell_storm(cloud, seed, duration, rate, scenario)
    injector = FaultInjector(cloud, storm)
    injector.arm()
    run()
    violations = check_all(cloud, placer, pingers,
                           client_stop=duration - CELL_DRAIN)
    completes = list(trace.iter_records("heal.complete"))
    result = {
        "seed": seed,
        "scenario": scenario,
        "duration": duration,
        "rate": rate,
        "violations": [str(v) for v in violations],
        "storm_events": len(storm),
        "faults_injected": len(injector.applied),
        "noops": sim.metrics.counters.get("fault.noops", 0),
        "evacuations": len(healer.evacuations),
        "rejoins": sum(1 for r in completes
                       if r.payload.get("mode") == "rejoin"),
        "readmits": sum(1 for r in completes
                        if r.payload.get("mode") == "readmit"),
        "heal_failures": len(healer.failures),
        "recovery_times": sorted(r.payload["elapsed"] for r in completes),
        "sent": sum(p.sent for p in pingers.values()),
        "replies": sum(len(p.reply_times) for p in pingers.values()),
        "client_retries": sum(getattr(p, "retries", 0)
                              for p in pingers.values()),
    }
    if profile and sim.profiler is not None:
        result["profile"] = sim.profiler.summary(
            loop_seconds=sim.wall_seconds,
            total_seconds=_time.perf_counter() - cell_started,
            release_times=trace.times("egress.release"))
    return result, chaos_signature(trace)


def run_chaos_cell(seed: int = 7, scenario: str = "single",
                   duration: float = 6.0, rate: float = 1.2,
                   check_determinism: bool = True,
                   profile: bool = False) -> dict:
    """One invariant-gated chaos cell (a campaign-dispatchable runner).

    Builds the scenario's fabric with an armed healer, runs the seeded
    storm, checks placement/liveness/hygiene invariants, and (by
    default) re-runs the identical cell to verify the
    fault/recovery/heal/release signature is byte-identical.  Returns
    plain data; ``ok`` is the single pass/fail gate.

    With ``profile=True`` the primary run is profiled (the determinism
    replay never is) and the cell carries a ``"profile"`` subsystem
    summary; the signature comparison then doubles as the
    profiler-neutrality check -- a profiled run and its unprofiled
    replay must produce identical fault/heal/release records.
    """
    if duration <= CELL_DRAIN + CELL_STORM_START:
        raise ValueError(
            f"duration must exceed {CELL_DRAIN + CELL_STORM_START}s "
            f"(storm ramp + drain), got {duration}")
    result, signature = _cell_once(seed, scenario, duration, rate,
                                   profile=profile)
    result["signature_records"] = len(signature)
    result["deterministic"] = None
    result["divergence"] = None
    if check_determinism:
        _, replay = _cell_once(seed, scenario, duration, rate)
        result["deterministic"] = signature == replay
        if not result["deterministic"]:
            for index, (a, b) in enumerate(zip(signature, replay)):
                if a != b:
                    result["divergence"] = (
                        f"record {index}: {a!r} != {b!r}")
                    break
            else:
                result["divergence"] = (
                    f"lengths differ: {len(signature)} vs {len(replay)}")
    result["ok"] = (not result["violations"]
                    and result["deterministic"] is not False)
    return result


def run_chaos_campaign(seeds: Optional[Sequence[int]] = None,
                       scenarios: Sequence[str] = CELL_SCENARIOS,
                       duration: float = 6.0, rate: float = 1.2,
                       jobs: int = 1, check_determinism: bool = True,
                       timeout: Optional[float] = 300.0,
                       profile: bool = False,
                       progress=None) -> dict:
    """Sweep chaos cells across seeds x scenarios; aggregate the gates.

    Defaults give 7 seeds x 3 scenarios = 21 invariant-gated cells.
    ``jobs > 1`` fans cells out across worker processes via the
    campaign executor; results are identical either way.  With
    ``profile=True`` each cell's primary run carries a subsystem
    profile (persisted per cell by the executor), and the summary
    merges them into one campaign-wide attribution.
    """
    from repro.campaign.executor import CampaignExecutor
    from repro.campaign.spec import CampaignSpec, SweepSpec
    from repro.sim.rng import derive_root_seed

    if seeds is None:
        seeds = [derive_root_seed(101, i) for i in range(7)]
    params = {"duration": duration, "rate": rate,
              "check_determinism": check_determinism}
    if profile:
        # only stamp the cell params when on, so profiled campaigns
        # never share cache entries with unprofiled ones
        params["profile"] = True
    spec = CampaignSpec(
        name="chaos-storm",
        sweeps=[SweepSpec(
            runner="chaos_cell",
            params=params,
            grid={"scenario": list(scenarios)})],
        seeds=list(seeds),
        timeout=timeout)
    executor = CampaignExecutor(spec, cache=None, jobs=jobs,
                                inline=jobs <= 1, progress=progress)
    return summarize_chaos_campaign(executor.run())


def _percentile(values: List[float], p: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(p / 100 * (len(ordered) - 1))))
    return ordered[index]


def summarize_chaos_campaign(report) -> dict:
    """Roll a campaign report up into the BENCH/CI gate summary."""
    cells: List[dict] = []
    violations: List[str] = []
    recovery: List[float] = []
    totals = {"evacuations": 0, "rejoins": 0, "readmits": 0,
              "heal_failures": 0, "faults_injected": 0, "noops": 0,
              "sent": 0, "replies": 0, "client_retries": 0}
    nondeterministic = 0
    profiles: List[dict] = []
    for cell_result in report.results:
        if not cell_result.ok:
            violations.append(f"{cell_result.cell.label()}: "
                              f"{cell_result.status}: {cell_result.error}")
            cells.append({"cell": cell_result.cell.label(),
                          "status": cell_result.status,
                          "error": cell_result.error})
            continue
        value = cell_result.value
        cells.append(value)
        prefix = f"seed={value['seed']} {value['scenario']}"
        violations.extend(f"{prefix}: {item}"
                          for item in value["violations"])
        if value["deterministic"] is False:
            nondeterministic += 1
            violations.append(
                f"{prefix}: signature diverged: {value['divergence']}")
        recovery.extend(value["recovery_times"])
        if value.get("profile"):
            profiles.append(value["profile"])
        for key in totals:
            totals[key] += value[key]
    profile_summary = None
    if profiles:
        from repro.prof.profiler import merge_summaries

        profile_summary = merge_summaries(profiles)
    return {
        "profile": profile_summary,
        "cells": len(report.results),
        "ok": not violations,
        "violations": violations,
        "nondeterministic_cells": nondeterministic,
        "recovery_p50": _percentile(recovery, 50),
        "recovery_p95": _percentile(recovery, 95),
        "recoveries": len(recovery),
        "wall_seconds": round(report.wall_seconds, 3),
        "results": cells,
        **totals,
    }


#: summary keys that become trajectory-entry metrics
_ENTRY_METRICS = ("cells", "nondeterministic_cells", "recovery_p50",
                  "recovery_p95", "recoveries", "evacuations", "rejoins",
                  "readmits", "heal_failures", "faults_injected", "noops",
                  "sent", "replies", "client_retries", "wall_seconds")


def chaos_entry(summary: dict, label: str = "head",
                config: Optional[dict] = None) -> dict:
    """The :mod:`repro.bench` trajectory entry for a campaign summary.

    The primary metric is ``replies`` -- end-to-end client service
    under the storm -- which is fully deterministic for a fixed config,
    so the 20 % gate only trips on real behaviour changes.
    """
    from repro.bench.schema import make_entry

    metrics = {key: summary.get(key) for key in _ENTRY_METRICS}
    metrics["violations"] = len(summary.get("violations", ()))
    metrics["ok"] = bool(summary.get("ok"))
    return make_entry("chaos.storm", config, metrics,
                      primary_metric="replies", label=label,
                      profile=summary.get("profile"))


def write_chaos_bench(path: str, summary: dict, label: str = "head",
                      config: Optional[dict] = None) -> str:
    """Append the campaign summary to the ``BENCH_chaos.json``
    trajectory (atomically; a legacy single-snapshot file is migrated
    on first touch -- mirrors ``benchkernel.write_bench``)."""
    from repro.bench.schema import append_entry

    append_entry(path, chaos_entry(summary, label=label, config=config))
    return path


def service_summary(result: dict) -> dict:
    """Client-visible availability around the fault window."""
    pinger = result["pinger"]
    schedule = result["schedule"]
    crash_times = [e.time for e in schedule if e.fault == "crash_replica"]
    restart_times = [e.time for e in schedule
                     if e.fault == "restart_replica"]
    window = (min(crash_times) if crash_times else 0.0,
              max(restart_times) if restart_times else 0.0)
    during = [t for t in pinger.reply_times if window[0] <= t <= window[1]]
    after = [t for t in pinger.reply_times if t > window[1]]
    return {
        "sent": pinger.sent,
        "replies": len(pinger.reply_times),
        "replies_during_outage": len(during),
        "replies_after_recovery": len(after),
        "released": result["cloud"].egress.packets_released,
        "window": window,
    }
