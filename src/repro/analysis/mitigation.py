"""The mitigation frontier behind ``repro mitigate``.

One cell = one (policy, attack, seed) triple: run the attack's
absent/present pair under the policy (:mod:`repro.attacks.probes`,
:mod:`repro.attacks.scheduler`), estimate leakage in bits
(:mod:`repro.stats.mi`), and read the victim's client latencies as the
overhead axis.  :func:`mitigation_frontier` sweeps the grid through the
campaign executor and rolls cells up into leakage-vs-overhead rows per
(policy, attack); :func:`frontier_gate` is the CI check that the
passthrough baseline leaks strictly more than StopWatch on the probing
attack -- if it doesn't, either the attack or the mediation machinery
has quietly broken.

:func:`policy_signature` is the determinism probe: a tiny fixed-spacing
echo cell whose client-visible reply timeline is hashed, so same-seed
byte-identity per policy is one string comparison.
"""

import hashlib
from typing import Any, Dict, List, Optional, Sequence

#: the shipped policy family, cheapest protection first
POLICY_NAMES = ("none", "uniform-noise", "deterland", "stopwatch")
#: the attack suite swept by default (repro.attacks.ATTACK_SUITE keys)
ATTACK_NAMES = ("probe", "theft", "clocks")

#: the gate pair: the undefended baseline must out-leak StopWatch here
GATE_ATTACK = "probe"
GATE_BASELINE = "none"
GATE_MITIGATED = "stopwatch"


def run_mitigation_cell(policy: str = "stopwatch",
                        attack: str = "probe",
                        duration: float = 12.0,
                        seed: int = 7,
                        bins: int = 10,
                        workload: str = "fileserver",
                        victim_clients: int = 3,
                        victim_file_bytes: int = 300_000) -> dict:
    """One frontier cell (a campaign-dispatchable runner).

    Returns plain picklable data: the leakage estimates, the sample
    budget they rest on, and the victim-side latency distribution.
    """
    from repro.attacks import ATTACK_SUITE

    runner = ATTACK_SUITE.get(attack)
    if runner is None:
        raise ValueError(f"unknown attack {attack!r}; choose from "
                         f"{sorted(ATTACK_SUITE)}")
    result = runner(policy=policy, duration=duration, seed=seed,
                    workload=workload, victim_clients=victim_clients,
                    victim_file_bytes=victim_file_bytes)
    leakage = result.leakage(bins=bins)
    latencies = sorted(result.latencies)
    return {
        "policy": result.policy,
        "attack": result.attack,
        "seed": seed,
        "duration": duration,
        "bins": bins,
        "workload": workload,
        "mi_bits": leakage["mi_bits"],
        "mi_bits_raw": leakage["mi_bits_raw"],
        "capacity_bits": leakage["capacity_bits"],
        "samples_absent": len(result.samples_absent),
        "samples_present": len(result.samples_present),
        "victim_requests": len(latencies),
        "victim_latency_mean": _mean(latencies),
        "victim_latency_p95": _percentile(latencies, 95),
        "meta": dict(result.meta),
    }


def mitigation_frontier(policies: Sequence[str] = POLICY_NAMES,
                        attacks: Sequence[str] = ATTACK_NAMES,
                        duration: float = 12.0,
                        seeds: Optional[Sequence[int]] = None,
                        bins: int = 10,
                        workload: str = "fileserver",
                        jobs: int = 1,
                        timeout: Optional[float] = 600.0,
                        progress=None) -> dict:
    """Sweep policies x attacks x seeds through the campaign executor
    and aggregate the leakage-vs-overhead frontier."""
    from repro.campaign.executor import CampaignExecutor
    from repro.campaign.spec import CampaignSpec, SweepSpec

    if seeds is None:
        seeds = [7]
    spec = CampaignSpec(
        name="mitigation-frontier",
        sweeps=[SweepSpec(
            runner="mitigation_cell",
            params={"duration": duration, "bins": bins,
                    "workload": workload},
            grid={"policy": list(policies), "attack": list(attacks)})],
        seeds=list(seeds),
        timeout=timeout)
    executor = CampaignExecutor(spec, cache=None, jobs=jobs,
                                inline=jobs <= 1, progress=progress)
    return summarize_frontier(executor.run())


def summarize_frontier(report) -> dict:
    """Roll cell results up to per-(policy, attack) frontier rows.

    ``overhead_x`` normalizes each row's mean victim latency against
    the ``none`` policy's on the same attack (1.0 = free, absent if the
    sweep didn't include the baseline)."""
    failures: List[str] = []
    cells: List[dict] = []
    for cell_result in report.results:
        if not cell_result.ok:
            failures.append(f"{cell_result.cell.label()}: "
                            f"{cell_result.status}: {cell_result.error}")
            continue
        cells.append(cell_result.value)

    grouped: Dict[tuple, List[dict]] = {}
    for cell in cells:
        grouped.setdefault((cell["policy"], cell["attack"]),
                           []).append(cell)
    rows: List[dict] = []
    for (policy, attack), members in sorted(grouped.items()):
        latency_means = [m["victim_latency_mean"] for m in members
                         if m["victim_latency_mean"] is not None]
        rows.append({
            "policy": policy,
            "attack": attack,
            "cells": len(members),
            "mi_bits": _mean([m["mi_bits"] for m in members]),
            "capacity_bits": _mean([m["capacity_bits"]
                                    for m in members]),
            "victim_latency_mean": _mean(latency_means),
            "victim_requests": sum(m["victim_requests"]
                                   for m in members),
            "overhead_x": None,
        })
    baseline_latency = {
        row["attack"]: row["victim_latency_mean"] for row in rows
        if row["policy"] == GATE_BASELINE
        and row["victim_latency_mean"]}
    for row in rows:
        base = baseline_latency.get(row["attack"])
        if base and row["victim_latency_mean"] is not None:
            row["overhead_x"] = row["victim_latency_mean"] / base

    summary = {
        "cells": len(report.results),
        "failures": failures,
        "rows": rows,
        "wall_seconds": round(report.wall_seconds, 3),
        "results": cells,
    }
    summary["gate"] = frontier_gate(summary)
    summary["ok"] = not failures and summary["gate"]["ok"]
    return summary


def frontier_gate(summary: dict,
                  attack: str = GATE_ATTACK,
                  baseline: str = GATE_BASELINE,
                  mitigated: str = GATE_MITIGATED) -> dict:
    """The sanity gate: on ``attack``, ``baseline`` must leak strictly
    more than ``mitigated``.  Vacuously passes (``checked=False``) when
    the sweep didn't cover both policies on that attack."""
    leakage = {row["policy"]: row["mi_bits"] for row in summary["rows"]
               if row["attack"] == attack
               and row["mi_bits"] is not None}
    if baseline not in leakage or mitigated not in leakage:
        return {"checked": False, "ok": True, "attack": attack,
                "detail": f"sweep lacks {baseline!r}/{mitigated!r} "
                          f"on {attack!r}"}
    ok = leakage[baseline] > leakage[mitigated]
    return {
        "checked": True,
        "ok": ok,
        "attack": attack,
        "baseline": baseline,
        "baseline_bits": leakage[baseline],
        "mitigated": mitigated,
        "mitigated_bits": leakage[mitigated],
        "detail": (f"{baseline}={leakage[baseline]:.4f} bits "
                   f"{'>' if ok else '<='} "
                   f"{mitigated}={leakage[mitigated]:.4f} bits"),
    }


def mitigation_entry(summary: dict, label: str = "head",
                     config: Optional[dict] = None) -> dict:
    """The :mod:`repro.bench` trajectory entry for a frontier summary.

    When the sanity gate ran, the primary metric is ``margin_bits`` --
    how much more the undefended baseline leaks than StopWatch on the
    probing attack.  Leakage estimates are deterministic for a fixed
    config, so a >20 % margin collapse means the mediation machinery
    (or the attack) actually changed.
    """
    from repro.bench.schema import make_entry

    gate = summary.get("gate", {})
    metrics: Dict[str, Any] = {
        "cells": summary.get("cells"),
        "failures": len(summary.get("failures", ())),
        "ok": bool(summary.get("ok")),
        "gate_checked": bool(gate.get("checked")),
        "gate_ok": bool(gate.get("ok")),
        "wall_seconds": summary.get("wall_seconds"),
    }
    primary = None
    if gate.get("checked"):
        metrics["baseline_bits"] = gate.get("baseline_bits")
        metrics["mitigated_bits"] = gate.get("mitigated_bits")
        if isinstance(gate.get("baseline_bits"), (int, float)) \
                and isinstance(gate.get("mitigated_bits"), (int, float)):
            metrics["margin_bits"] = round(
                gate["baseline_bits"] - gate["mitigated_bits"], 6)
            primary = "margin_bits"
    return make_entry("mitigation.frontier", config, metrics,
                      primary_metric=primary, label=label)


def write_mitigation_bench(path: str, summary: dict, label: str = "head",
                           config: Optional[dict] = None) -> str:
    """Append the frontier summary to the ``BENCH_mitigation.json``
    trajectory (atomically; a legacy single-snapshot file is migrated
    on first touch -- mirrors ``chaos.write_chaos_bench``)."""
    from repro.bench.schema import append_entry

    append_entry(path, mitigation_entry(summary, label=label,
                                        config=config))
    return path


def policy_signature(policy, seed: int = 5, duration: float = 3.0,
                     ping_interval: float = 0.020) -> str:
    """SHA-256 over the client-visible reply timeline of a tiny echo
    cell under ``policy`` -- the warm-repeat determinism probe."""
    from repro.attacks.probes import _policy_cell
    from repro.workloads.echo import EchoServer, PingClient

    sim, cloud, attacker_hosts, _ = _policy_cell(policy, seed)
    cloud.create_vm("echo", EchoServer, hosts=attacker_hosts)
    client = cloud.add_client("client:1")
    pinger = PingClient(client, "vm:echo",
                        spacing_fn=lambda rng: ping_interval)
    sim.call_after(0.05, pinger.start)
    cloud.run(until=duration)
    digest = hashlib.sha256()
    for reply_time in pinger.reply_times:
        digest.update(f"{reply_time:.12f}\n".encode("ascii"))
    return digest.hexdigest()


def _mean(values: Sequence[float]) -> Optional[float]:
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None


def _percentile(values: List[float], p: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                int(round(p / 100 * (len(ordered) - 1))))
    return ordered[index]
