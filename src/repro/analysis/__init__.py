"""Experiment runners and reporting for the paper's figures.

One function per table/figure of the evaluation; each returns plain
data rows (and can render an ASCII table) so the pytest-benchmark
harnesses and the examples share the same code paths.
"""

from repro.analysis.report import format_table, summarize
from repro.analysis.experiments import (
    fig1_median_cdfs,
    fig1_observation_curves,
    fig4_empirical_detection,
    fig5_file_download,
    fig6_nfs,
    fig7_parsec,
    fig8_noise_comparison,
    placement_utilization,
    delta_offset_translation,
    aggregation_ablation,
    delta_n_ablation,
    epoch_resync_ablation,
    PARSEC_PAPER_VALUES,
    RUNNERS,
)
from repro.analysis.scale import (
    build_scale_spec,
    run_scale_cell,
    scale_sweep,
)

__all__ = [
    "format_table",
    "summarize",
    "fig1_median_cdfs",
    "fig1_observation_curves",
    "fig4_empirical_detection",
    "fig5_file_download",
    "fig6_nfs",
    "fig7_parsec",
    "fig8_noise_comparison",
    "placement_utilization",
    "delta_offset_translation",
    "aggregation_ablation",
    "delta_n_ablation",
    "epoch_resync_ablation",
    "PARSEC_PAPER_VALUES",
    "RUNNERS",
    "build_scale_spec",
    "run_scale_cell",
    "scale_sweep",
]
