"""Kernel throughput benchmark: the consolidated fleet cell as a
tracked trajectory entry.

``run_kernel_bench`` runs the 32-tenant scale cell (the hot-loop
workload: ~100k events per simulated second of VM quanta, replica
multicast, pacing and egress mediation) several times in one process
and reports

- **events per CPU second** -- the primary throughput metric, measured
  with ``time.process_time`` so a loaded benchmark host does not turn
  scheduler noise into a regression;
- events per wall second (the historical metric, kept for continuity
  with older trajectory entries);
- calendar-queue high-water marks (total entries, largest bucket sort,
  far-heap peak) and mediation p95, and
- the egress signature of every repeat: all repeats must be
  byte-identical, which is simultaneously the determinism gate and the
  regression fixture for the old process-global packet-uid counter
  (warm repeats in one process used to diverge).

With ``profile=True`` one extra profiled repeat runs after the timed
ones (so attribution never contaminates the headline throughput); its
egress signature must match the unprofiled runs byte-for-byte -- the
profiler-neutrality invariant -- and its
:class:`~repro.prof.profiler.SubsystemProfiler` summary rides in the
report's ``"profile"`` key.

Artifacts go through :mod:`repro.bench`: :func:`write_bench` appends a
schema-versioned entry to the ``BENCH_kernel.json`` trajectory
(migrating the legacy single-snapshot file on first touch), and
:func:`check_regression` fails when events/CPU-s drops more than
:data:`REGRESSION_TOLERANCE` below the best comparable entry or the
egress signature changes -- that is the ``kernel-bench`` CI gate.
"""

import time
from typing import Dict, List, Optional

from repro.bench.schema import (DEFAULT_TOLERANCE, compare_entry,
                                load_trajectory, make_entry)

#: fail the regression gate when events/CPU-second drops below
#: (1 - tolerance) x the best comparable trajectory entry
REGRESSION_TOLERANCE = DEFAULT_TOLERANCE

#: default artifact path (repo root, committed)
BENCH_PATH = "BENCH_kernel.json"

#: the result keys that become trajectory-entry metrics
_METRIC_KEYS = ("events_per_cpu_second", "events_per_second",
                "events_fired", "cpu_seconds", "heap_high_water",
                "bucket_high_water", "far_high_water", "mediation_p95")


class BenchError(RuntimeError):
    """Determinism or regression failure in the kernel benchmark."""


def run_kernel_bench(tenants: int = 32,
                     duration: float = 2.0,
                     seed: int = 1,
                     request_rate: float = 30.0,
                     repeats: int = 2,
                     profile: bool = False) -> Dict[str, object]:
    """Run the kernel benchmark cell ``repeats`` times; return the report.

    Repeats run in one warm process on purpose: identical egress
    signatures across them prove per-run determinism is independent of
    process history.  Throughput is taken from the best repeat (the
    least-interfered-with one); high-water marks are identical across
    repeats by determinism.
    """
    from repro.analysis.scale import build_scale_spec, run_scale_cell

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    runs: List[Dict[str, object]] = []
    for _ in range(repeats):
        spec = build_scale_spec(tenants, request_rate=request_rate)
        cpu_start = time.process_time()
        row = run_scale_cell(spec, duration=duration, seed=seed)
        cpu = time.process_time() - cpu_start
        runs.append({
            "events_fired": row["events_fired"],
            "cpu_seconds": round(cpu, 4),
            "wall_seconds": round(row["wall_seconds"], 4),
            "events_per_cpu_second": round(row["events_fired"] / cpu, 1)
            if cpu > 0 else 0.0,
            "events_per_second": round(row["events_per_second"], 1),
            "heap_high_water": row["heap_high_water"],
            "bucket_high_water": row["bucket_high_water"],
            "far_high_water": row["far_high_water"],
            "mediation_p95": row["mediation_p95"],
            "egress_signature": row["egress_signature"],
        })

    signatures = {run["egress_signature"] for run in runs}
    if len(signatures) != 1:
        raise BenchError(
            f"egress signatures diverged across {repeats} same-seed "
            f"repeats in one process: {sorted(signatures)}")

    best = max(runs, key=lambda run: run["events_per_cpu_second"])
    report: Dict[str, object] = {
        "benchmark": f"kernel.scale{tenants}",
        # repeats is a measurement parameter, not part of the workload:
        # the regression gate compares configs, and a 3-repeat CI run
        # must still gate against a 2-repeat committed baseline
        "config": {"tenants": tenants, "duration": duration, "seed": seed,
                   "request_rate": request_rate},
        "repeats": repeats,
        "events_per_cpu_second": best["events_per_cpu_second"],
        "events_per_second": best["events_per_second"],
        "events_fired": best["events_fired"],
        "cpu_seconds": best["cpu_seconds"],
        "heap_high_water": best["heap_high_water"],
        "bucket_high_water": best["bucket_high_water"],
        "far_high_water": best["far_high_water"],
        "mediation_p95": best["mediation_p95"],
        "egress_signature": best["egress_signature"],
        "deterministic": True,
        "runs": runs,
    }
    if profile:
        spec = build_scale_spec(tenants, request_rate=request_rate)
        profiled = run_scale_cell(spec, duration=duration, seed=seed,
                                  profile=True)
        if profiled["egress_signature"] != best["egress_signature"]:
            raise BenchError(
                f"profiling perturbed the egress signature: "
                f"{profiled['egress_signature']} != "
                f"{best['egress_signature']} -- the profiler must be "
                f"measurement-only")
        report["profile"] = profiled["profile"]
    return report


def kernel_entry(result: Dict[str, object],
                 label: str = "head") -> Dict[str, object]:
    """The :mod:`repro.bench` trajectory entry for a bench report."""
    return make_entry(
        str(result["benchmark"]),
        result["config"],
        {key: result[key] for key in _METRIC_KEYS},
        primary_metric="events_per_cpu_second",
        label=label,
        egress_signature=result["egress_signature"],
        profile=result.get("profile"))


def load_bench(path: str) -> Optional[Dict[str, object]]:
    """The benchmark trajectory at ``path`` (legacy snapshots are
    migrated in memory), or None if absent."""
    return load_trajectory(path)


def check_regression(result: Dict[str, object],
                     baseline: Dict[str, object],
                     tolerance: float = REGRESSION_TOLERANCE) -> None:
    """Raise :class:`BenchError` when ``result`` (a bench report or a
    trajectory entry) regresses against the ``baseline`` trajectory.

    Compares events per CPU second against the best prior entry with a
    matching benchmark id + config, and the egress signature against
    the most recent such entry; an empty comparable history is an error
    (a gate that silently checks nothing would rot).
    """
    entry = result if result.get("schema") else kernel_entry(result)
    gate = compare_entry(entry, baseline, tolerance=tolerance)
    if not gate["checked"]:
        raise BenchError(
            f"no comparable baseline entry for "
            f"{entry['benchmark']} with config {entry['config']}; "
            f"re-baseline instead of comparing")
    if not gate["ok"]:
        raise BenchError("; ".join(gate["problems"]))


def write_bench(path: str, result: Dict[str, object],
                label: str = "head") -> str:
    """Append the report to the trajectory at ``path`` (atomically,
    migrating a legacy single-snapshot file on first touch)."""
    from repro.bench.schema import append_entry

    append_entry(path, kernel_entry(result, label=label))
    return path
