"""Kernel throughput benchmark: the consolidated fleet cell as a
tracked artifact.

``run_kernel_bench`` runs the 32-tenant scale cell (the hot-loop
workload: ~100k events per simulated second of VM quanta, replica
multicast, pacing and egress mediation) several times in one process
and reports

- **events per CPU second** -- the primary throughput metric, measured
  with ``time.process_time`` so a loaded benchmark host does not turn
  scheduler noise into a regression;
- events per wall second (the historical metric, kept for continuity
  with older trajectory entries);
- calendar-queue high-water marks (total entries, largest bucket sort,
  far-heap peak) and mediation p95, and
- the egress signature of every repeat: all repeats must be
  byte-identical, which is simultaneously the determinism gate and the
  regression fixture for the old process-global packet-uid counter
  (warm repeats in one process used to diverge).

``repro bench-kernel`` writes the report to ``BENCH_kernel.json``
through the atomic writer and can fail (exit non-zero) when throughput
drops more than :data:`REGRESSION_TOLERANCE` below a committed
baseline file -- that is the ``kernel-bench`` CI job.
"""

import json
import time
from typing import Dict, List, Optional

from repro.ioutil import atomic_write_json

#: fail the regression gate when events/CPU-second drops below
#: (1 - tolerance) x the committed baseline
REGRESSION_TOLERANCE = 0.20

#: default artifact path (repo root, committed)
BENCH_PATH = "BENCH_kernel.json"


class BenchError(RuntimeError):
    """Determinism or regression failure in the kernel benchmark."""


def run_kernel_bench(tenants: int = 32,
                     duration: float = 2.0,
                     seed: int = 1,
                     request_rate: float = 30.0,
                     repeats: int = 2) -> Dict[str, object]:
    """Run the kernel benchmark cell ``repeats`` times; return the report.

    Repeats run in one warm process on purpose: identical egress
    signatures across them prove per-run determinism is independent of
    process history.  Throughput is taken from the best repeat (the
    least-interfered-with one); high-water marks are identical across
    repeats by determinism.
    """
    from repro.analysis.scale import build_scale_spec, run_scale_cell

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    runs: List[Dict[str, object]] = []
    for _ in range(repeats):
        spec = build_scale_spec(tenants, request_rate=request_rate)
        cpu_start = time.process_time()
        row = run_scale_cell(spec, duration=duration, seed=seed)
        cpu = time.process_time() - cpu_start
        runs.append({
            "events_fired": row["events_fired"],
            "cpu_seconds": round(cpu, 4),
            "wall_seconds": round(row["wall_seconds"], 4),
            "events_per_cpu_second": round(row["events_fired"] / cpu, 1)
            if cpu > 0 else 0.0,
            "events_per_second": round(row["events_per_second"], 1),
            "heap_high_water": row["heap_high_water"],
            "bucket_high_water": row["bucket_high_water"],
            "far_high_water": row["far_high_water"],
            "mediation_p95": row["mediation_p95"],
            "egress_signature": row["egress_signature"],
        })

    signatures = {run["egress_signature"] for run in runs}
    if len(signatures) != 1:
        raise BenchError(
            f"egress signatures diverged across {repeats} same-seed "
            f"repeats in one process: {sorted(signatures)}")

    best = max(runs, key=lambda run: run["events_per_cpu_second"])
    return {
        "benchmark": f"kernel.scale{tenants}",
        # repeats is a measurement parameter, not part of the workload:
        # the regression gate compares configs, and a 3-repeat CI run
        # must still gate against a 2-repeat committed baseline
        "config": {"tenants": tenants, "duration": duration, "seed": seed,
                   "request_rate": request_rate},
        "repeats": repeats,
        "events_per_cpu_second": best["events_per_cpu_second"],
        "events_per_second": best["events_per_second"],
        "events_fired": best["events_fired"],
        "cpu_seconds": best["cpu_seconds"],
        "heap_high_water": best["heap_high_water"],
        "bucket_high_water": best["bucket_high_water"],
        "far_high_water": best["far_high_water"],
        "mediation_p95": best["mediation_p95"],
        "egress_signature": best["egress_signature"],
        "deterministic": True,
        "runs": runs,
    }


def load_bench(path: str) -> Optional[Dict[str, object]]:
    """The committed benchmark file at ``path``, or None if absent."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def check_regression(result: Dict[str, object],
                     baseline: Dict[str, object],
                     tolerance: float = REGRESSION_TOLERANCE) -> None:
    """Raise :class:`BenchError` when ``result`` regresses ``baseline``.

    Compares events per CPU second; the committed baseline's config must
    match or the comparison is meaningless (also an error).
    """
    if baseline.get("config") != result.get("config"):
        raise BenchError(
            f"baseline config {baseline.get('config')} does not match "
            f"current config {result.get('config')}; re-baseline instead "
            f"of comparing")
    floor = baseline["events_per_cpu_second"] * (1.0 - tolerance)
    current = result["events_per_cpu_second"]
    if current < floor:
        raise BenchError(
            f"kernel throughput regressed: {current:.0f} events/CPU-s "
            f"vs baseline {baseline['events_per_cpu_second']:.0f} "
            f"(floor {floor:.0f}, tolerance {tolerance:.0%})")


def write_bench(path: str, result: Dict[str, object],
                label: str = "head",
                previous: Optional[Dict[str, object]] = None) -> str:
    """Atomically write ``result`` to ``path``, carrying the trajectory.

    The trajectory is the list of prior summaries (label, throughput,
    high-water marks); the previous file's own result is appended to it
    so the committed artifact records how the kernel got here.
    """
    trajectory: List[Dict[str, object]] = []
    if previous is not None:
        trajectory = list(previous.get("trajectory", ()))
        if "events_per_cpu_second" in previous:
            trajectory.append({
                "label": previous.get("label", "previous"),
                "events_per_cpu_second": previous["events_per_cpu_second"],
                "events_per_second": previous.get("events_per_second"),
                "heap_high_water": previous.get("heap_high_water"),
                "mediation_p95": previous.get("mediation_p95"),
            })
    report = dict(result)
    report["label"] = label
    report["trajectory"] = trajectory
    return atomic_write_json(path, report, indent=2)
