"""One runner per evaluation figure/table.

Each function is self-contained: it builds its own simulator(s), runs the
experiment, and returns rows of plain data.  The pytest-benchmark
targets under ``benchmarks/`` call these with reduced durations; the
examples call them with fuller settings.
"""

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.fabric import Cloud
from repro.core.config import StopWatchConfig, DEFAULT, PASSTHROUGH
from repro.sim.kernel import Simulator
from repro.sim.monitor import Trace
from repro.stats.detection import (
    bin_probabilities,
    equiprobable_bin_edges,
    observations_to_detect,
)
from repro.stats.distributions import Exponential, MedianOfThree
from repro.stats.noise import (
    noise_comparison_table,
    protection_cost_curve,
)
from repro.placement.scheduler import utilization_report
from repro.workloads.fileserver import (
    FileServer,
    HttpDownloader,
    UdpDownloader,
    UdpFileServer,
)
from repro.workloads.nfs import NfsServer, NhfsstoneClient
from repro.workloads.parsec import PARSEC_KERNELS, RunCollector

#: Fig. 7 reference values from the paper: (baseline ms, stopwatch ms,
#: disk interrupts)
PARSEC_PAPER_VALUES: Dict[str, Tuple[int, int, int]] = {
    "ferret": (171, 350, 31),
    "blackscholes": (177, 401, 38),
    "canneal": (1530, 3230, 183),
    "dedup": (3730, 5754, 293),
    "streamcluster": (290, 382, 27),
}

#: host model used by the performance experiments: period disks with
#: readahead-friendly access times, calibrated against Fig. 7
PERF_HOST_KWARGS = {
    "disk_kwargs": {"seek_min": 0.001, "seek_max": 0.003,
                    "per_block": 2e-5},
}

CONFIDENCES = (0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.99)

#: ring-buffer cap for the always-on driver traces: filtered recording is
#: cheap (category-indexed) and this bounds memory on long runs
TRACE_CAP = 65_536


# ---------------------------------------------------------------------------
# Fig. 1 -- analytic median justification
# ---------------------------------------------------------------------------
def fig1_median_cdfs(victim_rate: float = 0.5, baseline_rate: float = 1.0,
                     xs: Optional[Sequence[float]] = None) -> List[tuple]:
    """Fig. 1(a): CDF rows (x, baseline, victim, median3, median2+victim)."""
    if xs is None:
        xs = [i * 0.25 for i in range(25)]
    base = Exponential(baseline_rate)
    victim = Exponential(victim_rate)
    med_baselines = MedianOfThree(base, base, base)
    med_victim = MedianOfThree(victim, base, base)
    return [(x, base.cdf(x), victim.cdf(x), med_baselines.cdf(x),
             med_victim.cdf(x)) for x in xs]


def fig1_observation_curves(victim_rate: float = 0.5,
                            baseline_rate: float = 1.0,
                            confidences: Sequence[float] = CONFIDENCES,
                            bins: int = 10) -> List[tuple]:
    """Fig. 1(b)/(c): (confidence, obs w/o StopWatch, obs w/ StopWatch)."""
    base = Exponential(baseline_rate)
    victim = Exponential(victim_rate)
    direct_edges = equiprobable_bin_edges(base, bins)
    p_direct = bin_probabilities(base, direct_edges)
    q_direct = bin_probabilities(victim, direct_edges)
    null_med = MedianOfThree(base, base, base)
    alt_med = MedianOfThree(victim, base, base)
    med_edges = equiprobable_bin_edges(null_med, bins)
    p_med = bin_probabilities(null_med, med_edges)
    q_med = bin_probabilities(alt_med, med_edges)
    rows = []
    for confidence in confidences:
        rows.append((
            confidence,
            observations_to_detect(p_direct, q_direct, confidence),
            observations_to_detect(p_med, q_med, confidence),
        ))
    return rows


# ---------------------------------------------------------------------------
# Fig. 4 -- empirical detection on the simulator
# ---------------------------------------------------------------------------
def fig4_empirical_detection(duration: float = 30.0, seed: int = 7,
                             confidences: Sequence[float] = CONFIDENCES,
                             ) -> dict:
    """Fig. 4: empirical inter-packet samples and detection curves for
    both the StopWatch and unmodified-Xen conditions."""
    from repro.attacks.sidechannel import run_coresidence_experiment

    with_sw = run_coresidence_experiment(mediated=True, duration=duration,
                                         seed=seed)
    without_sw = run_coresidence_experiment(mediated=False,
                                            duration=duration, seed=seed)
    return {
        "stopwatch": with_sw,
        "baseline": without_sw,
        "curve_stopwatch": with_sw.detection_curve(confidences),
        "curve_baseline": without_sw.detection_curve(confidences),
    }


# ---------------------------------------------------------------------------
# Fig. 5 -- file downloads
# ---------------------------------------------------------------------------
def _download_once(config: StopWatchConfig, size: int, udp: bool,
                   seed: int, timeout: float = 120.0) -> Optional[float]:
    sim = Simulator(seed=seed, trace=Trace(
        categories={"ingress.replicate", "egress.release"},
        max_per_category=TRACE_CAP))
    cloud = Cloud(sim, machines=3, config=config,
                  host_kwargs=PERF_HOST_KWARGS)
    cloud.create_vm("web", UdpFileServer if udp else FileServer)
    client = cloud.add_client("client:1")
    downloader = (UdpDownloader if udp else HttpDownloader)(client,
                                                            "vm:web")
    done: List[float] = []
    sim.call_after(0.05, downloader.download, size, done.append)
    cloud.run(until=timeout)
    return done[0] if done else None


def fig5_file_download(sizes: Sequence[int] = (1_000, 10_000, 100_000,
                                               1_000_000, 10_000_000),
                       trials: int = 1, seed: int = 1,
                       sim_until: float = 120.0) -> List[tuple]:
    """Fig. 5 rows: (size, http_base, http_sw, udp_base, udp_sw), seconds.

    ``sim_until`` caps the simulated seconds per condition; the default
    covers the 10 MB download, but sweep cells over small sizes can cut
    it down (the simulator bills for idle VMM ticks after the download
    completes, so a 5 kB cell at the default is ~60x costlier than at
    ``sim_until=2``).
    """
    rows = []
    for size in sizes:
        cells = []
        for udp in (False, True):
            for config in (PASSTHROUGH, DEFAULT):
                latencies = []
                for trial in range(trials):
                    latency = _download_once(config, size, udp,
                                             seed + trial,
                                             timeout=sim_until)
                    if latency is not None:
                        latencies.append(latency)
                cells.append(sum(latencies) / len(latencies)
                             if latencies else float("nan"))
        http_base, http_sw, udp_base, udp_sw = cells
        rows.append((size, http_base, http_sw, udp_base, udp_sw))
    return rows


# ---------------------------------------------------------------------------
# Fig. 6 -- NFS / nhfsstone
# ---------------------------------------------------------------------------
def fig6_nfs(rates: Sequence[int] = (25, 50, 100, 200, 400),
             duration: float = 8.0, seed: int = 2,
             config_sw: Optional[StopWatchConfig] = None) -> List[tuple]:
    """Fig. 6 rows: (rate, base latency, sw latency, sw c2s pkts/op,
    sw s2c pkts/op, base c2s pkts/op)."""
    if config_sw is None:
        config_sw = DEFAULT.with_overrides(delta_net=0.008)
    rows = []
    for rate in rates:
        cells = {}
        for label, config in (("base", PASSTHROUGH), ("sw", config_sw)):
            sim = Simulator(seed=seed, trace=Trace(
                categories={"vmm.divergence"},
                max_per_category=TRACE_CAP))
            cloud = Cloud(sim, machines=3, config=config,
                          host_kwargs=PERF_HOST_KWARGS)
            cloud.create_vm("nfs", NfsServer)
            client = cloud.add_client("client:1")
            generator = NhfsstoneClient(client, "vm:nfs", rate=rate)
            sim.call_after(0.05, generator.start)
            cloud.run(until=duration)
            cells[label] = (generator.mean_latency(),
                            generator.packets_per_op())
        rows.append((
            rate,
            cells["base"][0], cells["sw"][0],
            cells["sw"][1][0], cells["sw"][1][1],
            cells["base"][1][0],
        ))
    return rows


# ---------------------------------------------------------------------------
# Fig. 7 -- PARSEC kernels
# ---------------------------------------------------------------------------
def fig7_parsec(kernels: Optional[Sequence[str]] = None,
                scale: float = 1.0, seed: int = 3,
                config_sw: Optional[StopWatchConfig] = None) -> List[tuple]:
    """Fig. 7 rows: (kernel, base_s, sw_s, disk interrupts, paper refs)."""
    if kernels is None:
        kernels = list(PARSEC_KERNELS)
    if config_sw is None:
        config_sw = DEFAULT.with_overrides(delta_disk=0.008)
    rows = []
    for name in kernels:
        cls = PARSEC_KERNELS[name]
        times = {}
        disk_ints = 0
        for label, config in (("base", PASSTHROUGH), ("sw", config_sw)):
            sim = Simulator(seed=seed, trace=Trace(
                categories={"vmm.disk.request"},
                max_per_category=TRACE_CAP))
            cloud = Cloud(sim, machines=3, config=config,
                          host_kwargs=PERF_HOST_KWARGS)
            client = cloud.add_client("collector:1")
            collector = RunCollector(client)
            vm = cloud.create_vm(
                name,
                lambda guest: cls(guest, scale=scale,
                                  collector_addr="collector:1"))
            cloud.run(until=60.0 * max(scale, 1.0))
            times[label] = collector.completion_time(name)
            if label == "sw":
                disk_ints = vm.vmms[0].stats["disk_interrupts"]
        paper_base, paper_sw, paper_ints = PARSEC_PAPER_VALUES[name]
        rows.append((name, times["base"], times["sw"], disk_ints,
                     paper_base / 1000.0, paper_sw / 1000.0, paper_ints))
    return rows


# ---------------------------------------------------------------------------
# Fig. 8 -- noise comparison
# ---------------------------------------------------------------------------
def fig8_noise_comparison(victim_rate: float = 0.5,
                          confidences: Sequence[float] = (0.7, 0.8, 0.9,
                                                          0.99),
                          attacker: str = "kl") -> dict:
    """Fig. 8: the comparison table plus the scaling curve."""
    table = noise_comparison_table(1.0, victim_rate, confidences,
                                   attacker=attacker)
    curve = protection_cost_curve(1.0, victim_rate,
                                  targets=(100, 400, 1600, 6400),
                                  attacker=attacker)
    return {"table": table, "curve": curve}


# ---------------------------------------------------------------------------
# Sec. VIII -- placement utilisation
# ---------------------------------------------------------------------------
def placement_utilization(points: Sequence[Tuple[int, int]] = (
        (9, 4), (15, 7), (21, 10), (33, 16), (45, 22), (99, 49)),
        ) -> List[tuple]:
    """Rows: (n, c, stopwatch VMs, isolation VMs, Thm 1 bound, c*n/3)."""
    rows = []
    for machines, capacity in points:
        report = utilization_report(machines, capacity)
        rows.append((machines, capacity, report.stopwatch_vms,
                     report.isolation_vms, report.packing_upper_bound,
                     report.theoretical_theta_cn))
    return rows


# ---------------------------------------------------------------------------
# Sec. VII-A -- Δn / Δd real-time translation
# ---------------------------------------------------------------------------
def delta_offset_translation(duration: float = 10.0,
                             seed: int = 5) -> dict:
    """Measure what Δn and Δd translate to in real time (paper: ~7-12 ms
    and ~8-15 ms respectively)."""
    from repro.workloads.echo import EchoServer, PingClient
    from repro.workloads.parsec import BlackScholes

    sim = Simulator(seed=seed, trace=Trace(
        categories={"ingress.replicate", "vmm.deliver",
                    "vmm.disk.request"},
        max_per_category=TRACE_CAP))
    cloud = Cloud(sim, machines=3, config=DEFAULT,
                  host_kwargs=PERF_HOST_KWARGS)
    cloud.create_vm("echo", EchoServer)
    cloud.create_vm("compute", lambda guest: BlackScholes(guest),
                    hosts=[0, 1, 2])
    client = cloud.add_client("client:1")
    pinger = PingClient(client, "vm:echo", mean_interval=0.015)
    sim.call_after(0.05, pinger.start)
    cloud.run(until=duration)

    arrivals = {r.payload["seq"]: r.time
                for r in sim.trace.select("ingress.replicate", vm="echo")}
    net_delays = []
    for record in sim.trace.select("vmm.deliver.net", vm="echo",
                                   replica=0):
        seq = record.payload["seq"]
        if seq in arrivals:
            net_delays.append(record.time - arrivals[seq])

    requests = {r.payload["req"]: r.time
                for r in sim.trace.select("vmm.disk.request", vm="compute",
                                          replica=0)}
    disk_delays = []
    for record in sim.trace.select("vmm.deliver.disk", vm="compute",
                                   replica=0):
        req = record.payload["req"]
        if req in requests:
            disk_delays.append(record.time - requests[req])
    return {"net_delays": net_delays, "disk_delays": disk_delays}


# ---------------------------------------------------------------------------
# Ablation -- Δn sizing (latency vs. synchrony violations)
# ---------------------------------------------------------------------------
def delta_n_ablation(delta_ns: Sequence[float] = (0.0005, 0.002, 0.005,
                                                  0.010, 0.020),
                     duration: float = 4.0, seed: int = 9,
                     pings: int = 60,
                     jitter_sigma: float = 0.05) -> List[tuple]:
    """Rows: (Δn, mean echo RTT seconds, divergences).

    The Sec. VII-A trade-off made explicit: Δn lower-bounds interrupt
    latency, but too-small Δn violates the synchrony assumption (the
    median arrives already-passed at the fastest replica).
    """
    from repro.net.udp import UdpStack
    from repro.workloads.echo import EchoServer

    rows = []
    for delta_n in delta_ns:
        config = DEFAULT.with_overrides(delta_net=delta_n)
        sim = Simulator(seed=seed, trace=Trace(
            categories={"vmm.divergence"}, max_per_category=TRACE_CAP))
        cloud = Cloud(sim, machines=3, config=config,
                      host_kwargs={"jitter_sigma": jitter_sigma})
        vm = cloud.create_vm("echo", EchoServer)
        client = cloud.add_client("client:1")
        udp = UdpStack(client)
        sent: Dict[int, float] = {}
        rtts: List[float] = []
        udp.bind(9000, lambda d, s: rtts.append(sim.now - sent[d.tag]))

        def ping(index=0):
            if index >= pings:
                return
            sent[index] = sim.now
            udp.send("vm:echo", 9000, 7, 64, tag=index)
            sim.call_after(duration / (pings + 10), ping, index + 1)

        sim.call_after(0.05, ping)
        cloud.run(until=duration)
        mean_rtt = sum(rtts) / len(rtts) if rtts else float("nan")
        rows.append((delta_n, mean_rtt,
                     int(vm.stat_sum("divergences"))))
    return rows


# ---------------------------------------------------------------------------
# Ablation -- epoch resynchronisation (drift vs. epoch length)
# ---------------------------------------------------------------------------
def epoch_resync_ablation(epoch_lengths: Sequence[Optional[int]] = (
        None, 10_000_000, 2_000_000, 500_000),
        duration: float = 4.0, seed: int = 9,
        skewed_slope: float = 1.5e-8) -> List[tuple]:
    """Rows: (epoch instructions or None, |virt - real| drift seconds).

    Virtual time with a skewed boot slope drifts from real time unless
    epoch resynchronisation pulls it back (Sec. IV-A); shorter epochs
    track real time more closely -- at the cost of leaking more timing
    information, which is why the paper advises large I values.
    """
    from repro.workloads.echo import EchoServer

    rows = []
    for epoch in epoch_lengths:
        config = DEFAULT.with_overrides(
            initial_slope=skewed_slope, epoch_instructions=epoch,
            slope_range=(0.5e-8, 2e-8))
        sim = Simulator(seed=seed, trace=Trace(
            categories={"vmm.divergence"}, max_per_category=TRACE_CAP))
        cloud = Cloud(sim, machines=3, config=config)
        vm = cloud.create_vm("echo", EchoServer)
        cloud.run(until=duration)
        drift = abs(vm.vmms[0].current_virt() - sim.now)
        rows.append((epoch, drift))
    return rows


# ---------------------------------------------------------------------------
# Ablation -- timing aggregation function
# ---------------------------------------------------------------------------
def aggregation_ablation(aggregations: Sequence[str] = ("median", "leader",
                                                        "min", "mean"),
                         duration: float = 20.0, seed: int = 7,
                         confidence: float = 0.95) -> List[tuple]:
    """Rows: (aggregation, observations needed at the confidence).

    The Sec. II argument quantified: a leader-dictated timing simply
    copies a coresident replica's perturbation to all replicas, while
    the median suppresses it.
    """
    from repro.attacks.sidechannel import run_coresidence_experiment

    rows = []
    for how in aggregations:
        config = DEFAULT.with_overrides(aggregation=how)
        result = run_coresidence_experiment(
            mediated=True, duration=duration, seed=seed, config=config)
        curve = result.detection_curve([confidence])
        rows.append((how, curve[0][1]))
    return rows


#: Every public runner, dispatchable by name.  ``repro.campaign`` fans
#: these out across worker processes, so each entry must be a
#: module-level function whose kwargs are picklable plain data.
RUNNERS: Dict[str, Callable] = {
    "fig1_median_cdfs": fig1_median_cdfs,
    "fig1_observation_curves": fig1_observation_curves,
    "fig4_empirical_detection": fig4_empirical_detection,
    "fig5_file_download": fig5_file_download,
    "fig6_nfs": fig6_nfs,
    "fig7_parsec": fig7_parsec,
    "fig8_noise_comparison": fig8_noise_comparison,
    "placement_utilization": placement_utilization,
    "delta_offset_translation": delta_offset_translation,
    "aggregation_ablation": aggregation_ablation,
    "delta_n_ablation": delta_n_ablation,
    "epoch_resync_ablation": epoch_resync_ablation,
}


def _register_flow_runner() -> None:
    # analysis.flows imports observe -> experiments, so register lazily
    # to keep module import acyclic
    from repro.analysis.flows import flow_stage_latency

    RUNNERS["flow_stage_latency"] = flow_stage_latency


def _register_scale_runner() -> None:
    from repro.analysis.scale import scale_sweep

    RUNNERS["scale_sweep"] = scale_sweep


def _register_bench_runner() -> None:
    from repro.analysis.benchkernel import run_kernel_bench

    RUNNERS["kernel_bench"] = run_kernel_bench


def _register_chaos_runner() -> None:
    from repro.analysis.chaos import run_chaos_cell

    RUNNERS["chaos_cell"] = run_chaos_cell


def _register_storage_runner() -> None:
    from repro.analysis.storage import run_storage_repair_cell

    RUNNERS["storage_repair"] = run_storage_repair_cell


def _register_mitigation_runner() -> None:
    from repro.analysis.mitigation import (mitigation_frontier,
                                           run_mitigation_cell)

    RUNNERS["mitigation_cell"] = run_mitigation_cell
    RUNNERS["mitigation_frontier"] = mitigation_frontier


_register_flow_runner()
_register_scale_runner()
_register_bench_runner()
_register_chaos_runner()
_register_storage_runner()
_register_mitigation_runner()
