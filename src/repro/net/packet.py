"""Packet and protocol-payload types.

Packets carry no real bytes -- payloads are small dataclasses plus a
``size`` in wire bytes, which is all the timing model needs.  Application
content rides along as opaque ``tag`` objects so that determinism checks
can compare exactly what a guest emitted.
"""

from dataclasses import dataclass
from typing import Any, Optional, Tuple

#: Ethernet+IP+TCP header overhead approximated for sizing, bytes.
TCP_HEADER_BYTES = 54
UDP_HEADER_BYTES = 42
#: Conventional Ethernet MSS.
DEFAULT_MSS = 1460


@dataclass(slots=True)
class Packet:
    """One IP packet on the simulated wire.

    ``uid`` is assigned by the :class:`~repro.net.network.Network` when
    the packet first hits the wire, from a per-network counter -- never
    from process-global state, so same-seed runs produce identical uids
    no matter how many simulations this process ran before.  It is
    ``None`` until then.
    """

    src: str
    dst: str
    protocol: str           # "tcp" | "udp" | "pgm" | "replica" | ...
    payload: Any
    size: int               # total wire bytes
    uid: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    def copy_to(self, dst: str) -> "Packet":
        """A duplicate of this packet addressed to ``dst`` (uid assigned
        on its own send)."""
        return Packet(src=self.src, dst=dst, protocol=self.protocol,
                      payload=self.payload, size=self.size)

    def __repr__(self) -> str:
        uid = "?" if self.uid is None else self.uid
        return (f"<Packet#{uid} {self.src}->{self.dst} "
                f"{self.protocol} {self.size}B>")


@dataclass(slots=True)
class TcpSegment:
    """A TCP segment (sequence space counted in bytes)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: str = ""          # combination of "S", "A", "F"
    data_len: int = 0
    tags: Tuple = ()         # application message boundaries in this segment

    @property
    def syn(self) -> bool:
        return "S" in self.flags

    @property
    def fin(self) -> bool:
        return "F" in self.flags

    @property
    def ack_flag(self) -> bool:
        return "A" in self.flags

    def wire_size(self) -> int:
        return TCP_HEADER_BYTES + self.data_len

    def __repr__(self) -> str:
        return (f"<TcpSeg {self.src_port}->{self.dst_port} "
                f"[{self.flags or '.'}] seq={self.seq} ack={self.ack} "
                f"len={self.data_len}>")


@dataclass(slots=True)
class UdpDatagram:
    """A UDP datagram."""

    src_port: int
    dst_port: int
    data_len: int
    tag: Any = None

    def wire_size(self) -> int:
        return UDP_HEADER_BYTES + self.data_len


@dataclass(slots=True)
class PgmDatagram:
    """A PGM (reliable multicast) datagram: ODATA, RDATA or NAK."""

    group: str
    sender: str
    kind: str                # "odata" | "rdata" | "nak"
    seq: int
    data: Any = None
    data_len: int = 0

    def wire_size(self) -> int:
        return UDP_HEADER_BYTES + 16 + self.data_len


@dataclass(slots=True)
class ReplicaEnvelope:
    """Wrapper used on the cloud-internal network.

    Ingress -> dom0: ``direction="in"`` with an ingress-assigned ``seq``.
    dom0 -> egress:  ``direction="out"`` with the replica's id and the
    deterministic per-VM output sequence number.
    """

    vm: str
    direction: str           # "in" | "out"
    seq: int
    inner: Packet
    replica_id: Optional[int] = None

    def wire_size(self) -> int:
        return self.inner.size + 20
