"""Network substrate: packets, links, routing, UDP, TCP and PGM multicast.

Everything the cloud fabric and the guests speak over.  Protocol
endpoints are written against the small :class:`NetHost` interface
(``now`` / ``schedule`` / ``send_packet``), which has two realisations:
real-time nodes (external clients, ingress/egress, dom0 device models)
and the deterministic guest runtime (:class:`repro.machine.guest.GuestOS`)
whose clock is StopWatch virtual time.  The same TCP implementation
therefore runs both inside guests (deterministically) and outside.
"""

from repro.net.packet import (
    Packet,
    TcpSegment,
    UdpDatagram,
    PgmDatagram,
    ReplicaEnvelope,
)
from repro.net.link import Link
from repro.net.network import Network, RealtimeNode
from repro.net.udp import UdpStack
from repro.net.tcp import TcpStack, TcpConnection, TcpConfig
from repro.net.pgm import PgmSender, PgmReceiver

__all__ = [
    "Packet",
    "TcpSegment",
    "UdpDatagram",
    "PgmDatagram",
    "ReplicaEnvelope",
    "Link",
    "Network",
    "RealtimeNode",
    "UdpStack",
    "TcpStack",
    "TcpConnection",
    "TcpConfig",
    "PgmSender",
    "PgmReceiver",
]
