"""A compact but behaviour-bearing TCP.

Implements the mechanisms that matter for StopWatch's evaluation:

- three-way handshake (the SYN/ACK round trips dominate small HTTP
  downloads under StopWatch, Fig. 5);
- ACK-clocked slow start and congestion avoidance (inbound ACK delivery
  delay is exactly what Δn taxes);
- delayed ACKs and Nagle's algorithm (their interaction produces the
  "client-to-server packets per operation fall as load rises" effect of
  Fig. 6(b));
- a receive window (64 KB default, period-typical) bounding the
  bandwidth-delay product, which is what turns Δn into the steady-state
  ~2.8x HTTP slowdown for large files;
- timeout-based retransmission, so lossy links still make progress.

Applications exchange *messages*: ``connection.send_message(length, tag)``
queues ``length`` bytes; the peer's ``on_message(tag, length)`` fires when
the last byte of that message has been delivered in order.  No actual
byte contents exist -- ``tag`` is the application payload.

The implementation is written against the NetHost interface, so the same
code runs in real time (clients) and in guest virtual time
(deterministically, inside replicas).
"""

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.packet import DEFAULT_MSS, Packet, TcpSegment


class TcpError(RuntimeError):
    """Protocol usage error."""


@dataclass
class TcpConfig:
    """Tunables; defaults model a period-typical Linux stack."""

    mss: int = DEFAULT_MSS
    initial_cwnd_segments: int = 2
    initial_ssthresh: int = 1 << 20
    receive_window: int = 64 * 1024
    delayed_ack_timeout: float = 0.040
    delayed_ack_segments: int = 2
    nagle: bool = True
    rto_initial: float = 0.5
    rto_min: float = 0.2
    rto_max: float = 8.0
    max_retransmits: int = 10


class TcpStack:
    """All TCP state for one host; demultiplexes by connection 4-tuple."""

    def __init__(self, host, config: Optional[TcpConfig] = None):
        self.host = host
        self.config = config or TcpConfig()
        self._listeners: Dict[int, Callable] = {}
        self._connections: Dict[Tuple[int, str, int], "TcpConnection"] = {}
        self._next_ephemeral = 40000
        self.segments_sent = 0
        self.segments_received = 0
        host.register_protocol("tcp", self._on_packet)

    # -- app API ---------------------------------------------------------
    def listen(self, port: int, on_connection: Callable) -> None:
        """Accept connections on ``port``; ``on_connection(conn)`` fires
        when a peer completes the handshake."""
        if port in self._listeners:
            raise TcpError(f"{self.host.address}: port {port} already "
                           f"listening")
        self._listeners[port] = on_connection

    def connect(self, remote_addr: str, remote_port: int) -> "TcpConnection":
        """Open a connection; returns immediately.  Set ``on_connect`` on
        the returned object to learn when the handshake completes."""
        local_port = self._next_ephemeral
        self._next_ephemeral += 1
        conn = TcpConnection(self, local_port, remote_addr, remote_port,
                             initiator=True)
        self._connections[(local_port, remote_addr, remote_port)] = conn
        conn._start_handshake()
        return conn

    # -- wire side ---------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        segment: TcpSegment = packet.payload
        self.segments_received += 1
        key = (segment.dst_port, packet.src, segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn._on_segment(segment)
            return
        if segment.syn and not segment.ack_flag:
            acceptor = self._listeners.get(segment.dst_port)
            if acceptor is not None:
                conn = TcpConnection(self, segment.dst_port, packet.src,
                                     segment.src_port, initiator=False)
                self._connections[key] = conn
                conn._accept_callback = acceptor
                conn._on_segment(segment)
        # else: no listener / stale segment -> drop (no RST modelling)

    def _transmit(self, conn: "TcpConnection", segment: TcpSegment) -> None:
        self.segments_sent += 1
        self.host.send_packet(Packet(
            src=self.host.address, dst=conn.remote_addr, protocol="tcp",
            payload=segment, size=segment.wire_size(),
        ))

    def _forget(self, conn: "TcpConnection") -> None:
        self._connections.pop(
            (conn.local_port, conn.remote_addr, conn.remote_port), None)


class TcpConnection:
    """One end of a TCP connection."""

    def __init__(self, stack: TcpStack, local_port: int, remote_addr: str,
                 remote_port: int, initiator: bool):
        self.stack = stack
        self.config = stack.config
        self.host = stack.host
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.initiator = initiator
        self.state = "closed"

        # send side (sequence space in bytes; ISN = 0 deterministically)
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = self.config.initial_cwnd_segments * self.config.mss
        self.ssthresh = self.config.initial_ssthresh
        self.peer_window = self.config.receive_window
        self._send_queue: List[Tuple[Any, int]] = []   # (tag, length)
        self._queued_bytes = 0
        self._inflight: List[TcpSegment] = []
        self._fin_queued = False
        self._fin_sent = False
        self._rto = self.config.rto_initial
        self._rto_timer = None
        self._retransmit_count = 0

        # receive side
        self.rcv_nxt = 0
        self._ooo: Dict[int, TcpSegment] = {}
        self._pending_tags: List[Tuple[int, Any]] = []  # (end_seq, tag)
        self._segments_since_ack = 0
        self._delack_timer = None
        self._peer_fin_received = False
        self._fin_acked = False
        self._close_notified = False

        # counters
        self.bytes_sent = 0
        self.bytes_received = 0

        # application callbacks
        self.on_connect: Optional[Callable] = None
        self.on_message: Optional[Callable] = None   # fn(tag, length)
        self.on_receive: Optional[Callable] = None   # fn(new_bytes)
        self.on_close: Optional[Callable] = None
        self._accept_callback: Optional[Callable] = None

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------
    def send_message(self, length: int, tag: Any = None) -> None:
        """Queue an application message of ``length`` bytes."""
        if length <= 0:
            raise TcpError(f"message length must be positive, got {length}")
        if self._fin_queued:
            raise TcpError("send after close")
        self._send_queue.append((tag, length))
        self._queued_bytes += length
        if self.state == "established":
            self._try_send()

    def close(self) -> None:
        """Half-close after all queued data is delivered."""
        if self._fin_queued:
            return
        self._fin_queued = True
        if self.state == "established":
            self._try_send()

    @property
    def connected(self) -> bool:
        return self.state == "established"

    # ------------------------------------------------------------------
    # handshake
    # ------------------------------------------------------------------
    def _start_handshake(self) -> None:
        self.state = "syn-sent"
        self._send_control("S")
        self._arm_rto()

    def _segment(self, flags: str, data_len: int = 0,
                 tags: Tuple = (), seq: Optional[int] = None) -> TcpSegment:
        return TcpSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=self.snd_nxt if seq is None else seq,
            ack=self.rcv_nxt, flags=flags, data_len=data_len, tags=tags,
        )

    def _send_control(self, flags: str) -> None:
        if "A" in flags:
            self._cancel_delack()
            self._segments_since_ack = 0
        segment = self._segment(flags)
        if "S" in flags or "F" in flags:
            self.snd_nxt += 1  # SYN/FIN consume one sequence number
            self._inflight.append(segment)
        self.stack._transmit(self, segment)

    # ------------------------------------------------------------------
    # sending data
    # ------------------------------------------------------------------
    def _flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    def _try_send(self) -> None:
        mss = self.config.mss
        window = min(self.cwnd, self.peer_window)
        sent_any = False
        while self._queued_bytes > 0:
            budget = window - self._flight_size()
            if budget <= 0:
                break
            chunk = min(mss, self._queued_bytes, budget)
            # sender-side silly-window avoidance: never emit a runt just
            # because the window is momentarily small
            if chunk < mss and chunk < self._queued_bytes:
                break
            # Nagle: hold a runt segment while data is in flight.
            if (self.config.nagle and chunk < mss
                    and chunk == self._queued_bytes
                    and self._flight_size() > 0):
                break
            tags = self._consume_queue(chunk)
            segment = self._segment("A", data_len=chunk, tags=tags)
            self.snd_nxt += chunk
            self.bytes_sent += chunk
            self._inflight.append(segment)
            self.stack._transmit(self, segment)
            self._cancel_delack()  # data segments carry the ACK
            sent_any = True
        if (self._fin_queued and not self._fin_sent
                and self._queued_bytes == 0):
            self._fin_sent = True
            self.state = "fin-sent" if self.state == "established" else self.state
            self._send_control("FA")
            sent_any = True
        if sent_any:
            self._arm_rto()

    def _consume_queue(self, nbytes: int) -> Tuple:
        """Dequeue ``nbytes`` from the message queue, returning the tags
        whose final byte falls inside this chunk as (end_seq, tag, length)
        triples."""
        tags = []
        start_seq = self.snd_nxt
        consumed = 0
        while consumed < nbytes:
            tag, remaining = self._send_queue[0]
            take = min(remaining, nbytes - consumed)
            consumed += take
            if take == remaining:
                self._send_queue.pop(0)
                tags.append((start_seq + consumed, tag))
            else:
                self._send_queue[0] = (tag, remaining - take)
        self._queued_bytes -= nbytes
        return tuple(tags)

    # ------------------------------------------------------------------
    # retransmission
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        self._cancel_rto()
        if self._inflight:
            self._rto_timer = self.host.schedule(self._rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _on_rto(self) -> None:
        self._rto_timer = None
        if not self._inflight or self.state == "closed":
            return
        self._retransmit_count += 1
        if self._retransmit_count > self.config.max_retransmits:
            self._abort()
            return
        # multiplicative backoff + classic Tahoe-style response
        self._rto = min(self._rto * 2.0, self.config.rto_max)
        self.ssthresh = max(self._flight_size() // 2, 2 * self.config.mss)
        self.cwnd = self.config.mss
        oldest = self._inflight[0]
        resend = TcpSegment(
            src_port=oldest.src_port, dst_port=oldest.dst_port,
            seq=oldest.seq, ack=self.rcv_nxt, flags=oldest.flags,
            data_len=oldest.data_len, tags=oldest.tags,
        )
        self.stack._transmit(self, resend)
        self._arm_rto()

    def _abort(self) -> None:
        self.state = "closed"
        self._cancel_rto()
        self._cancel_delack()
        self.stack._forget(self)
        self._notify_close()

    def _notify_close(self) -> None:
        if self._close_notified:
            return
        self._close_notified = True
        if self.on_close is not None:
            self.on_close()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _on_segment(self, segment: TcpSegment) -> None:
        if self.state == "closed" and not segment.syn:
            return
        if segment.syn:
            self._on_syn(segment)
            return
        if segment.ack_flag:
            self._on_ack(segment.ack)
        if segment.data_len > 0 or segment.fin:
            self._on_data(segment)

    def _on_syn(self, segment: TcpSegment) -> None:
        if self.initiator:
            if self.state != "syn-sent" or not segment.ack_flag:
                return
            self.rcv_nxt = segment.seq + 1
            self._on_ack(segment.ack)
            self.state = "established"
            self._send_immediate_ack()
            if self.on_connect is not None:
                self.on_connect()
            self._try_send()
        else:
            if self.state not in ("closed", "syn-received"):
                return
            if self.state == "closed":
                self.state = "syn-received"
                self.rcv_nxt = segment.seq + 1
                self._send_control("SA")
                self._arm_rto()
            else:
                # duplicate SYN: retransmit SYN+ACK
                syn_ack = self._segment("SA", seq=0)
                self.stack._transmit(self, syn_ack)

    def _on_ack(self, ack: int) -> None:
        if self.state == "syn-received" and ack >= 1:
            self.state = "established"
            if self._accept_callback is not None:
                callback, self._accept_callback = self._accept_callback, None
                callback(self)
        if ack <= self.snd_una:
            return
        newly_acked = ack - self.snd_una
        self.snd_una = ack
        self._retransmit_count = 0
        self._rto = max(self.config.rto_min,
                        min(self._rto, self.config.rto_initial))
        self._inflight = [s for s in self._inflight
                          if s.seq + max(s.data_len, 1) > ack]
        # congestion control
        if self.cwnd < self.ssthresh:
            self.cwnd += min(newly_acked, self.config.mss)
        else:
            self.cwnd += max(1, self.config.mss * self.config.mss
                             // self.cwnd)
        if self._inflight:
            self._arm_rto()
        else:
            self._cancel_rto()
            if self._fin_sent and self.snd_una == self.snd_nxt:
                self._fin_acked = True
                self._check_full_close()
        self._try_send()

    def _on_data(self, segment: TcpSegment) -> None:
        if segment.seq > self.rcv_nxt:
            self._ooo[segment.seq] = segment
            self._send_immediate_ack()  # duplicate ACK
            return
        if segment.seq + max(segment.data_len, 1) <= self.rcv_nxt:
            self._send_immediate_ack()  # pure duplicate
            return
        self._admit(segment)
        while self.rcv_nxt in self._ooo:
            self._admit(self._ooo.pop(self.rcv_nxt))
        self._maybe_ack()

    def _admit(self, segment: TcpSegment) -> None:
        if segment.data_len > 0:
            self.rcv_nxt = segment.seq + segment.data_len
            self.bytes_received += segment.data_len
            if self.on_receive is not None:
                self.on_receive(segment.data_len)
            for end_seq, tag in segment.tags:
                if self.on_message is not None:
                    self.on_message(tag, end_seq)
        if segment.fin:
            self.rcv_nxt = segment.seq + segment.data_len + 1
            self._peer_fin_received = True
            self._send_immediate_ack()
            if not self._fin_sent:
                self.state = "close-wait"
            self._notify_close()
            self._check_full_close()

    def _check_full_close(self) -> None:
        """Tear down once our FIN is acked and the peer's FIN arrived."""
        if self.state == "closed":
            return
        if self._fin_acked and self._peer_fin_received:
            self.state = "closed"
            self._cancel_rto()
            self._cancel_delack()
            self.stack._forget(self)
            self._notify_close()

    # -- acknowledgment strategy ----------------------------------------
    def _maybe_ack(self) -> None:
        self._segments_since_ack += 1
        if self._segments_since_ack >= self.config.delayed_ack_segments:
            self._send_immediate_ack()
        elif self._delack_timer is None:
            self._delack_timer = self.host.schedule(
                self.config.delayed_ack_timeout, self._on_delack)

    def _on_delack(self) -> None:
        self._delack_timer = None
        self._send_immediate_ack()

    def _send_immediate_ack(self) -> None:
        self._cancel_delack()
        self._segments_since_ack = 0
        self.stack._transmit(self, self._segment("A"))

    def _cancel_delack(self) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None

    def __repr__(self) -> str:
        return (f"<TcpConnection {self.host.address}:{self.local_port} -> "
                f"{self.remote_addr}:{self.remote_port} {self.state}>")
