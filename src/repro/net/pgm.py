"""PGM-style NAK-based reliable multicast (the OpenPGM stand-in).

StopWatch uses reliable multicast for two jobs (Sec. VII-A): replicating
inbound packets from the ingress node to the three replica hosts, and
exchanging delivery-time proposals among the replica VMMs.  PGM achieves
reliability with *negative* acknowledgments: receivers detect sequence
gaps and ask the sender to retransmit, so the common case adds zero
inbound traffic at the sender -- the very property Sec. VII-C exploits
for file download.

The model here: a sender multicasts ODATA datagrams with per-sender
sequence numbers (one unicast copy per group member).  A receiver seeing
a gap schedules a NAK after ``nak_delay``; the sender answers with RDATA
from its retransmit buffer.  Repair continues until the gap closes or
``max_naks`` is exhausted (the datagram is then reported lost).

A :class:`PgmReceiver` handles one multicast *group* on one host and can
subscribe to several senders in that group (each sender is an
independent, in-order stream) -- this is how a replica VMM listens to
both of its siblings on the coordination group.
"""

from typing import Any, Callable, Dict, List, Optional

from repro.net.packet import Packet, PgmDatagram


class PgmSender:
    """Multicasts datagrams reliably to a fixed member list."""

    def __init__(self, host, group: str, members: List[str],
                 retain: int = 4096):
        if not members:
            raise ValueError("PGM group needs at least one member")
        self.host = host
        self.group = group
        self.members = list(members)
        self.retain = retain
        self._next_seq = 0
        self._buffer: Dict[int, PgmDatagram] = {}
        self.odata_sent = 0
        self.rdata_sent = 0
        self._drop_budget = 0
        self._drop_purges = False
        # hot-path precomputation: the protocol tag and peer list are
        # rebuilt tens of thousands of times per simulated second otherwise
        self._protocol = f"pgm.{group}"
        self._peers = [m for m in self.members if m != host.address]
        host.register_protocol(f"pgm-nak.{group}", self._on_nak)

    @property
    def next_seq(self) -> int:
        """The sequence number the next ``multicast`` will use."""
        return self._next_seq

    def replace_member(self, old_addr: str, new_addr: str) -> None:
        """Swap one group member for another (replica evacuation).

        The stream identity is the *sender*, so sequence numbers keep
        counting; the new member is expected to join at an agreed
        ``start_seq`` (see :meth:`PgmReceiver.subscribe`) and NAK-repair
        anything earlier that it still needs from the retain buffer.
        """
        if old_addr not in self.members:
            raise ValueError(f"{old_addr!r} is not a member of "
                             f"group {self.group!r}")
        if new_addr in self.members:
            raise ValueError(f"{new_addr!r} already a member of "
                             f"group {self.group!r}")
        self.members[self.members.index(old_addr)] = new_addr
        self._peers = [m for m in self.members if m != self.host.address]

    def drop_next(self, count: int, purge: bool = False) -> None:
        """Fault hook: swallow the ODATA of the next ``count`` multicasts.

        Without ``purge`` the datagrams stay in the retransmit buffer, so
        receivers recover them via NAK repair (added latency only).  With
        ``purge`` they are also evicted from the buffer: repair fails,
        the receivers' ``max_naks`` budget runs out, and their
        ``on_loss`` callbacks fire -- a permanent coordination loss.
        """
        if count < 0:
            raise ValueError(f"negative drop count: {count}")
        self._drop_budget += count
        self._drop_purges = purge

    def multicast(self, data: Any, data_len: int = 64) -> int:
        """Send ``data`` to every member; returns the sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        host = self.host
        datagram = PgmDatagram(group=self.group, sender=host.address,
                               kind="odata", seq=seq, data=data,
                               data_len=data_len)
        buffer = self._buffer
        buffer[seq] = datagram
        if len(buffer) > self.retain:
            # seqs are inserted in increasing order and evicted from the
            # front, so the first key is always the minimum
            del buffer[next(iter(buffer))]
        if self._drop_budget > 0:
            self._drop_budget -= 1
            if self._drop_purges:
                buffer.pop(seq, None)
            host.sim.trace.record(
                host.now(), "net.drop", src=host.address,
                dst=self.group, protocol=self._protocol,
                reason="injected")
            return seq
        peers = self._peers
        self.odata_sent += len(peers)
        protocol = self._protocol
        size = datagram.wire_size()
        send = host.send_packet
        src = host.address
        for member in peers:
            send(Packet(src, member, protocol, datagram, size))
        return seq

    def _on_nak(self, packet: Packet) -> None:
        nak: PgmDatagram = packet.payload
        datagram = self._buffer.get(nak.seq)
        if datagram is None:
            return  # repair window exceeded; receiver will give up
        repair = PgmDatagram(group=self.group, sender=self.host.address,
                             kind="rdata", seq=datagram.seq,
                             data=datagram.data, data_len=datagram.data_len)
        self.rdata_sent += 1
        self.host.send_packet(Packet(
            src=self.host.address, dst=packet.src,
            protocol=self._protocol, payload=repair,
            size=repair.wire_size(),
        ))


class _SenderStream:
    """Per-sender in-order reassembly state inside a receiver."""

    def __init__(self, receiver: "PgmReceiver", sender_addr: str,
                 on_data: Callable, on_loss: Optional[Callable]):
        self.receiver = receiver
        self.sender_addr = sender_addr
        self.on_data = on_data
        self.on_loss = on_loss
        self.next_seq = 0
        self.pending: Dict[int, PgmDatagram] = {}
        self.nak_state: Dict[int, tuple] = {}  # seq -> (timer, count)

    def admit(self, datagram: PgmDatagram) -> None:
        seq = datagram.seq
        next_seq = self.next_seq
        if seq == next_seq and not self.pending:
            # in-order, no gap outstanding: the overwhelmingly common
            # case -- deliver without touching the reassembly dicts
            if self.nak_state:
                self.cancel_nak(seq)
            self.next_seq = next_seq + 1
            self.on_data(datagram.data, seq)
            return
        if seq < next_seq:
            return  # duplicate
        self.pending[seq] = datagram
        self.cancel_nak(seq)
        for missing in range(next_seq, seq):
            if missing not in self.pending:
                self.schedule_nak(missing)
        self.drain()

    def drain(self) -> None:
        while self.next_seq in self.pending:
            datagram = self.pending.pop(self.next_seq)
            self.next_seq += 1
            self.on_data(datagram.data, datagram.seq)

    def schedule_nak(self, seq: int) -> None:
        if seq in self.nak_state:
            return
        timer = self.receiver.host.schedule(
            self.receiver.nak_delay, self.fire_nak, seq)
        self.nak_state[seq] = (timer, 0)

    def fire_nak(self, seq: int) -> None:
        if seq in self.pending or seq < self.next_seq:
            self.nak_state.pop(seq, None)
            return
        _, count = self.nak_state.get(seq, (None, 0))
        if count >= self.receiver.max_naks:
            self.nak_state.pop(seq, None)
            self.give_up(seq)
            return
        self.receiver._send_nak(self.sender_addr, seq)
        timer = self.receiver.host.schedule(
            self.receiver.nak_delay * 2, self.fire_nak, seq)
        self.nak_state[seq] = (timer, count + 1)

    def cancel_nak(self, seq: int) -> None:
        state = self.nak_state.pop(seq, None)
        if state is not None and state[0] is not None:
            state[0].cancel()

    def give_up(self, seq: int) -> None:
        """Repair failed: skip the datagram so the stream keeps flowing."""
        if seq == self.next_seq:
            self.next_seq += 1
            if self.on_loss is not None:
                self.on_loss(seq)
            self.drain()
        # gaps behind other gaps resolve when the head gap is skipped


class PgmReceiver:
    """All PGM receive state for one (host, group) pair.

    Subscribe to each sender whose stream this host should consume.  The
    classic single-sender form is supported directly in the constructor::

        PgmReceiver(host, "grp", "sender-addr", on_data)
    """

    def __init__(self, host, group: str,
                 sender_addr: Optional[str] = None,
                 on_data: Optional[Callable] = None,
                 nak_delay: float = 0.002, max_naks: int = 5,
                 on_loss: Optional[Callable] = None):
        self.host = host
        self.group = group
        self.nak_delay = nak_delay
        self.max_naks = max_naks
        self._streams: Dict[str, _SenderStream] = {}
        self.naks_sent = 0
        host.register_protocol(f"pgm.{group}", self._on_packet)
        if sender_addr is not None:
            if on_data is None:
                raise ValueError("on_data required when sender_addr given")
            self.subscribe(sender_addr, on_data, on_loss)

    def subscribe(self, sender_addr: str, on_data: Callable,
                  on_loss: Optional[Callable] = None,
                  start_seq: int = 0) -> None:
        """Consume the in-order stream from ``sender_addr``.

        ``start_seq`` is where the stream cursor begins: an evacuated
        replica joining a long-lived group subscribes at its replay
        horizon so the gap back to the sender's current sequence is
        NAK-repaired from the retain buffer rather than treated as a
        from-zero stream.
        """
        if sender_addr in self._streams:
            raise ValueError(f"already subscribed to {sender_addr!r} in "
                             f"group {self.group!r}")
        if start_seq < 0:
            raise ValueError(f"start_seq must be >= 0, got {start_seq}")
        stream = _SenderStream(self, sender_addr, on_data, on_loss)
        stream.next_seq = start_seq
        self._streams[sender_addr] = stream

    def unsubscribe(self, sender_addr: str) -> None:
        """Stop consuming ``sender_addr``'s stream; cancels pending NAKs."""
        stream = self._streams.pop(sender_addr, None)
        if stream is None:
            raise ValueError(f"not subscribed to {sender_addr!r} in "
                             f"group {self.group!r}")
        for seq in list(stream.nak_state):
            stream.cancel_nak(seq)

    def _on_packet(self, packet: Packet) -> None:
        datagram: PgmDatagram = packet.payload
        stream = self._streams.get(datagram.sender)
        if stream is not None:
            stream.admit(datagram)

    def _send_nak(self, sender_addr: str, seq: int) -> None:
        nak = PgmDatagram(group=self.group, sender=self.host.address,
                          kind="nak", seq=seq)
        self.naks_sent += 1
        sim = getattr(self.host, "sim", None)
        if sim is not None:
            # ingress replication groups carry one flow per PGM seq, so
            # the repair delay is attributable to that flow
            sim.flows.repair_requested(self.host.now(), self.group, seq)
        self.host.send_packet(Packet(
            src=self.host.address, dst=sender_addr,
            protocol=f"pgm-nak.{self.group}", payload=nak,
            size=nak.wire_size(),
        ))
