"""Point-to-point links with bandwidth, latency, jitter and loss."""

from typing import Callable, Optional


class Link:
    """A simplex link.

    Transmission is FIFO: a packet's serialisation starts when the link
    head is free (``size * 8 / bandwidth`` seconds), then propagation
    latency plus jitter applies.  ``loss`` drops packets independently.

    ``bandwidth`` is bits/second (None = infinite); ``latency`` seconds.
    """

    def __init__(self, sim, latency: float = 0.0005,
                 bandwidth: Optional[float] = 1e9,
                 jitter: float = 0.0, loss: float = 0.0,
                 name: str = "link"):
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0,1), got {loss}")
        if jitter < 0:
            raise ValueError(f"negative jitter: {jitter}")
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.jitter = jitter
        self.loss = loss
        self.name = name
        self._rng = sim.rng.stream(f"link.{name}")
        self._random = self._rng.random   # bound-method cache (hot path)
        self._head_free_at = 0.0
        self.up = True
        self.sent_packets = 0
        self.dropped_packets = 0
        self.sent_bytes = 0

    # -- fault hooks --------------------------------------------------------
    def degrade(self, loss: Optional[float] = None,
                latency: Optional[float] = None,
                jitter: Optional[float] = None) -> None:
        """Mutate link quality in place (fault injection / experiments)."""
        if loss is not None:
            if not 0.0 <= loss < 1.0:
                raise ValueError(f"loss must be in [0,1), got {loss}")
            self.loss = loss
        if latency is not None:
            if latency < 0:
                raise ValueError(f"negative latency: {latency}")
            self.latency = latency
        if jitter is not None:
            if jitter < 0:
                raise ValueError(f"negative jitter: {jitter}")
            self.jitter = jitter

    def fail(self) -> None:
        """Take the link down: every packet offered is dropped."""
        self.up = False

    def restore(self) -> None:
        self.up = True

    def transmit(self, packet, deliver: Callable) -> None:
        """Send ``packet``; call ``deliver(packet)`` at arrival time."""
        if not self.up:
            self.dropped_packets += 1
            self.sim.trace.record(self.sim.now, "net.drop",
                                  link=self.name, src=packet.src,
                                  dst=packet.dst, reason="link_down")
            return
        self.sent_packets += 1
        self.sent_bytes += packet.size
        sim = self.sim
        now = sim.now
        head = self._head_free_at
        start = head if head > now else now
        tx_time = 0.0
        if self.bandwidth is not None:
            tx_time = packet.size * 8.0 / self.bandwidth
        self._head_free_at = start + tx_time
        if self.loss > 0.0 and self._random() < self.loss:
            self.dropped_packets += 1
            sim.trace.record(now, "net.drop",
                             link=self.name, src=packet.src,
                             dst=packet.dst, reason="loss")
            return
        # jitter * random() is bit-identical to rng.uniform(0, jitter)
        # (uniform computes a + (b - a) * random()) minus a call layer
        jitter = self.jitter * self._random() if self.jitter else 0.0
        arrival_delay = (start - now) + tx_time + self.latency + jitter
        sim.call_at(now + arrival_delay, deliver, packet)

    @property
    def queue_delay(self) -> float:
        """Seconds a packet enqueued now would wait before serialising."""
        return max(0.0, self._head_free_at - self.sim.now)

    def __repr__(self) -> str:
        return (f"<Link {self.name} lat={self.latency * 1e3:.2f}ms "
                f"bw={self.bandwidth} sent={self.sent_packets}>")
