"""A minimal UDP layer over the packet network."""

from typing import Any, Callable, Dict

from repro.net.packet import Packet, UdpDatagram


class UdpStack:
    """Port-demultiplexed datagram service bound to one NetHost."""

    def __init__(self, host):
        self.host = host
        self._bindings: Dict[int, Callable] = {}
        self.sent_datagrams = 0
        self.received_datagrams = 0
        host.register_protocol("udp", self._on_packet)

    def bind(self, port: int, handler: Callable) -> None:
        """Register ``handler(datagram, src_addr)`` for a local port."""
        if port in self._bindings:
            raise ValueError(f"{self.host.address}: UDP port {port} in use")
        self._bindings[port] = handler

    def unbind(self, port: int) -> None:
        self._bindings.pop(port, None)

    def send(self, dst_addr: str, src_port: int, dst_port: int,
             data_len: int, tag: Any = None) -> None:
        """Send one datagram (no fragmentation model; keep <= MTU-sized
        lengths at the application layer)."""
        if data_len < 0:
            raise ValueError(f"negative data_len: {data_len}")
        datagram = UdpDatagram(src_port=src_port, dst_port=dst_port,
                               data_len=data_len, tag=tag)
        self.sent_datagrams += 1
        self.host.send_packet(Packet(
            src=self.host.address, dst=dst_addr, protocol="udp",
            payload=datagram, size=datagram.wire_size(),
        ))

    def _on_packet(self, packet: Packet) -> None:
        datagram = packet.payload
        handler = self._bindings.get(datagram.dst_port)
        if handler is not None:
            self.received_datagrams += 1
            handler(datagram, packet.src)
