"""Address-based routing between endpoints, and real-time nodes.

The :class:`Network` is a static routing table: endpoints register a
receive handler under an address; routes map (src, dst) pairs -- or a
destination wildcard -- to :class:`~repro.net.link.Link` objects.  This
is all the paper's testbed needs: a campus WAN path from the client to
the cloud, and a low-latency internal subnet between cloud machines.
"""

from typing import Callable, Dict, Optional, Tuple

from repro.net.link import Link


class NetworkError(RuntimeError):
    """Routing or registration failure."""


class Network:
    """Routes packets between registered endpoints over links."""

    def __init__(self, sim, default_link_kwargs: Optional[dict] = None):
        self.sim = sim
        self._handlers: Dict[str, Callable] = {}
        self._isolated: Dict[str, bool] = {}
        self._routes: Dict[Tuple[Optional[str], str], Link] = {}
        self._route_cache: Dict[Tuple[str, str], Link] = {}
        self._default_kwargs = default_link_kwargs or {}
        self.delivered_packets = 0
        self.dropped_packets = 0
        # per-network uid allocator: same-seed runs hand out identical
        # uids no matter what this process simulated before
        self._next_uid = 0

    # -- registration -----------------------------------------------------
    def attach(self, address: str, handler: Callable) -> None:
        """Register ``handler(packet)`` as the receiver for ``address``."""
        if address in self._handlers:
            raise NetworkError(f"address {address!r} already attached")
        self._handlers[address] = handler

    def detach(self, address: str) -> None:
        self._handlers.pop(address, None)

    def reattach(self, address: str, handler: Callable) -> None:
        """Replace the receiver for ``address`` (e.g. baseline rewiring)."""
        self._handlers[address] = handler

    # -- partitions (fault injection) --------------------------------------
    def isolate(self, address: str) -> None:
        """Partition ``address`` off the network: packets to it are
        dropped (observably) instead of delivered, and senders do not
        error -- exactly what a dead or unreachable machine looks like
        from the wire.  Idempotent; undo with :meth:`restore`."""
        self._isolated[address] = True

    def restore(self, address: str) -> None:
        """Heal an :meth:`isolate` partition (no-op if not isolated)."""
        self._isolated.pop(address, None)

    def is_isolated(self, address: str) -> bool:
        return address in self._isolated

    def _drop(self, packet, reason: str) -> None:
        self.dropped_packets += 1
        self.sim.metrics.incr("net.dropped")
        self.sim.trace.record(self.sim.now, "net.drop", src=packet.src,
                              dst=packet.dst, protocol=packet.protocol,
                              reason=reason)

    def add_route(self, src: Optional[str], dst: str, link: Link) -> None:
        """Use ``link`` for packets from ``src`` (None = any) to ``dst``."""
        self._routes[(src, dst)] = link
        self._route_cache.clear()

    def link_for(self, src: str, dst: str) -> Link:
        """The link a (src, dst) packet takes; creates a default lazily."""
        link = self._routes.get((src, dst))
        if link is None:
            link = self._routes.get((None, dst))
        if link is None:
            link = Link(self.sim, name=f"default.{dst}",
                        **self._default_kwargs)
            self._routes[(None, dst)] = link
        return link

    # -- transmission --------------------------------------------------------
    def send(self, packet) -> None:
        """Route ``packet`` toward its destination address."""
        if packet.uid is None:
            packet.uid = self._next_uid
            self._next_uid += 1
        if self._isolated and packet.src in self._isolated:
            # partitions are bidirectional: an isolated machine's
            # stragglers (e.g. dom0 jobs queued pre-crash) go nowhere
            self._drop(packet, "isolated")
            return
        dst = packet.dst
        if dst not in self._handlers:
            raise NetworkError(
                f"no endpoint attached at {dst!r} "
                f"(packet from {packet.src!r})"
            )
        key = (packet.src, dst)
        link = self._route_cache.get(key)
        if link is None:
            link = self.link_for(packet.src, dst)
            self._route_cache[key] = link
        link.transmit(packet, self._deliver)

    def _deliver(self, packet) -> None:
        if self._isolated and packet.dst in self._isolated:
            self._drop(packet, "isolated")
            return
        handler = self._handlers.get(packet.dst)
        if handler is None:
            # endpoint went away in flight: an observable drop, not a
            # silent one -- partition experiments count these
            self._drop(packet, "endpoint_gone")
            return
        self.delivered_packets += 1
        handler(packet)

    def __repr__(self) -> str:
        return (f"<Network endpoints={len(self._handlers)} "
                f"routes={len(self._routes)}>")


class RealtimeNode:
    """A :class:`NetHost` living in real (simulated wall-clock) time.

    External clients, the ingress and egress nodes, and dom0 device
    models are RealtimeNodes.  Protocol stacks (UDP/TCP/PGM) dispatch on
    ``packet.protocol`` via :meth:`register_protocol`.
    """

    def __init__(self, sim, network: Network, address: str):
        self.sim = sim
        self.network = network
        self.address = address
        self.rng = sim.rng.stream(f"node.{address}")
        self._protocols: Dict[str, Callable] = {}
        network.attach(address, self._receive)

    # -- NetHost interface -------------------------------------------------
    def now(self) -> float:
        return self.sim.now

    def schedule(self, delay: float, fn: Callable, *args):
        """Schedule a local callback; returns a cancellable handle."""
        return self.sim.call_after(delay, fn, *args)

    def send_packet(self, packet) -> None:
        self.network.send(packet)

    def register_protocol(self, protocol: str, handler: Callable) -> None:
        if protocol in self._protocols:
            raise NetworkError(
                f"{self.address}: protocol {protocol!r} already registered"
            )
        self._protocols[protocol] = handler

    def unregister_protocol(self, protocol: str) -> None:
        """Forget a protocol handler (idempotent).  Evacuation uses this
        to strip a dead host's replica endpoints so the machine can be
        reused for a different tenant later."""
        self._protocols.pop(protocol, None)

    # -- dispatch ------------------------------------------------------------
    def _receive(self, packet) -> None:
        handler = self._protocols.get(packet.protocol)
        if handler is not None:
            handler(packet)

    def __repr__(self) -> str:
        return f"<RealtimeNode {self.address}>"
