"""One physical machine of the cloud."""

from typing import Optional

from repro.machine.disk import DiskModel
from repro.machine.dom0 import Dom0Executor
from repro.net.network import RealtimeNode


class HostCapacityError(RuntimeError):
    """A guest slot was requested on a machine that has none left."""


class Host:
    """A physical machine: dom0 + disk + timing-noise model + guests.

    The timing-noise model is the physical substrate of the side channel:
    a guest's effective execution speed on this host is perturbed by

    - multiplicative log-normal-ish jitter (``jitter_sigma``),
    - a contention term proportional to recent dom0 activity
      (``contention_alpha``) -- a coresident victim's I/O slows the
      attacker measurably, and
    - a static consolidation term proportional to the number of *other*
      resident guests (``coresidency_beta``) -- so CPU contention
      reflects the real placement load.  Zero by default: single-tenant
      experiments keep their historical timing byte-for-byte.

    ``capacity`` is the machine's guest-slot count (Sec. VIII's per-node
    capacity ``c``); ``None`` means unlimited.  Attaching a replica VMM
    beyond capacity raises :class:`HostCapacityError`.

    ``address`` is the machine's dom0 endpoint on the cloud-internal
    network (``host:<id>``).
    """

    def __init__(self, sim, host_id: int, network,
                 jitter_sigma: float = 0.01,
                 contention_alpha: float = 0.25,
                 disk: Optional[DiskModel] = None,
                 disk_kwargs: Optional[dict] = None,
                 capacity: Optional[int] = None,
                 coresidency_beta: float = 0.0):
        if capacity is not None and capacity < 1:
            raise ValueError(f"host capacity must be >= 1, got {capacity}")
        if coresidency_beta < 0.0:
            raise ValueError(
                f"coresidency_beta must be >= 0, got {coresidency_beta}")
        self.sim = sim
        self.host_id = host_id
        self.address = f"host:{host_id}"
        self.node = RealtimeNode(sim, network, self.address)
        self.dom0 = Dom0Executor(sim, name=f"dom0.{host_id}")
        self.disk = disk if disk is not None else DiskModel(
            sim, sim.rng.stream(f"host.{host_id}.disk"),
            name=f"disk.{host_id}", **(disk_kwargs or {}))
        self.jitter_sigma = jitter_sigma
        self.contention_alpha = contention_alpha
        self.capacity = capacity
        self.coresidency_beta = coresidency_beta
        self._noise_rng = sim.rng.stream(f"host.{host_id}.noise")
        self._gauss = self._noise_rng.gauss   # bound-method cache (hot path)
        self.vmms = []
        self.peak_residents = 0
        self.alive = True
        self.condemned = False
        self.network = network

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash this machine: every replica VMM on it halts mid-quantum
        and the dom0 endpoint is partitioned off the network (packets to
        and from it are observably dropped)."""
        if not self.alive:
            return
        self.alive = False
        self.sim.trace.record(self.sim.now, "fault.host_down",
                              host=self.host_id)
        self.sim.metrics.incr("fault.host_failures")
        self.network.isolate(self.address)
        for vmm in self.vmms:
            vmm.fail()

    def condemn(self) -> None:
        """Permanently decommission this machine: it crashes like
        :meth:`fail` but is never brought back -- recovery must evacuate
        its replicas onto spare capacity (see repro.faults.heal)."""
        self.condemned = True
        self.fail()

    def restore(self) -> None:
        """Power the machine back on: heal the partition.  Crashed VMMs
        stay down until explicitly recovered (see repro.faults.recovery).
        Condemned machines stay dead."""
        if self.alive or self.condemned:
            return
        self.alive = True
        self.network.restore(self.address)
        self.sim.trace.record(self.sim.now, "recovery.host_up",
                              host=self.host_id)

    # ------------------------------------------------------------------
    # guest slots
    # ------------------------------------------------------------------
    @property
    def residents(self) -> int:
        """Live guest slots in use (crashed replicas free their slot
        for accounting, matching the recovery path's in-place rebuild)."""
        return sum(1 for vmm in self.vmms if not vmm.failed)

    def slowdown_factor(self) -> float:
        """Multiplier on a guest's per-branch execution time right now.

        >= ~1.0; grows with coresident dom0 activity and (when
        ``coresidency_beta`` is set) with the number of co-resident
        guests.  Sampled per execution quantum by the VMM.
        """
        sigma = self.jitter_sigma
        jitter = 1.0
        if sigma > 0.0:
            jitter = 1.0 + self._gauss(0.0, sigma)
            if jitter < 0.5:
                jitter = 0.5
        contention = 1.0 + self.contention_alpha * self.dom0.activity_level()
        if self.coresidency_beta > 0.0:
            contention += self.coresidency_beta * max(0, self.residents - 1)
        return jitter * contention

    def attach_vmm(self, vmm) -> None:
        if self.capacity is not None and self.residents >= self.capacity:
            raise HostCapacityError(
                f"host {self.host_id} is full: {self.residents} of "
                f"{self.capacity} guest slots in use")
        self.vmms.append(vmm)
        self.peak_residents = max(self.peak_residents, self.residents)
        self.sim.trace.record(self.sim.now, "host.attach",
                              host=self.host_id, vm=vmm.vm_name,
                              replica=vmm.replica_id,
                              residents=self.residents)

    def detach_vmm(self, vmm) -> None:
        """Release a guest slot (evacuation moved the replica elsewhere)."""
        try:
            self.vmms.remove(vmm)
        except ValueError:
            return
        self.sim.trace.record(self.sim.now, "host.detach",
                              host=self.host_id, vm=vmm.vm_name,
                              replica=vmm.replica_id,
                              residents=self.residents)

    def stats(self) -> dict:
        """Placement-load and activity counters as plain data."""
        return {
            "host_id": self.host_id,
            "residents": self.residents,
            "peak_residents": self.peak_residents,
            "capacity": self.capacity,
            "alive": self.alive,
            "condemned": self.condemned,
            "dom0_busy_total": self.dom0.busy_total,
        }

    def __repr__(self) -> str:
        return f"<Host {self.host_id} guests={len(self.vmms)}>"
