"""Guest-readable clock devices, virtualised onto StopWatch virtual time.

In unmodified Xen these devices are emulated from the host's real-time
clock; StopWatch replaces that source with the guest's virtual clock
(Sec. IV-B).  Each device here is a pure function of the virtual time
it is handed, so two replicas reading at the same instruction count see
bit-identical values.
"""

#: the PIT's crystal frequency on PC hardware, Hz
PIT_INPUT_HZ = 1_193_182.0


class VirtualTsc:
    """The time-stamp counter, as returned by ``rdtsc``.

    Xen computes the value by scaling time-since-guest-reset by a
    constant factor; StopWatch feeds it virtual time instead of real
    time.  ``frequency_hz`` models the advertised processor frequency
    (3 GHz for the paper's Core2 Quad testbed).
    """

    def __init__(self, frequency_hz: float = 3e9):
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        self.frequency_hz = frequency_hz

    def read(self, virt: float) -> int:
        """``rdtsc``: ticks since guest reset."""
        return int(virt * self.frequency_hz)


class VirtualRtc:
    """The CMOS real-time clock: time to the nearest second.

    Xen updates the virtual RTC from its real-time clock; StopWatch
    answers RTC reads from guest virtual time plus the boot epoch (the
    median of the replica hosts' clocks at VM start, Sec. IV-A).
    """

    def __init__(self, boot_epoch: float = 0.0):
        self.boot_epoch = boot_epoch

    def read(self, virt: float) -> int:
        """Whole seconds since the (virtual) epoch."""
        return int(self.boot_epoch + virt)


class VirtualPitCounter:
    """The PIT channel-0 count-down counter.

    Hardware counts down from the programmed latch at ~1.193182 MHz and
    reloads; operating systems read it for sub-tick timing.  The
    StopWatch version counts down in virtual time.
    """

    def __init__(self, latch: int = 65536):
        if not 1 <= latch <= 65536:
            raise ValueError(f"latch out of range: {latch}")
        self.latch = latch

    def read(self, virt: float) -> int:
        """Current counter value in [1, latch]."""
        ticks = int(virt * PIT_INPUT_HZ)
        return self.latch - (ticks % self.latch)


class GuestClockPanel:
    """Every clock a guest can read, bundled for the GuestOS.

    The panel is constructed per replica but depends only on
    configuration (never on the host), preserving replica determinism.
    """

    def __init__(self, tsc_hz: float = 3e9, rtc_boot_epoch: float = 0.0,
                 pit_latch: int = 65536):
        self.tsc = VirtualTsc(tsc_hz)
        self.rtc = VirtualRtc(rtc_boot_epoch)
        self.pit_counter = VirtualPitCounter(pit_latch)

    def snapshot(self, virt: float) -> dict:
        """All clock readings at one instant (used by attack code)."""
        return {
            "tsc": self.tsc.read(virt),
            "rtc": self.rtc.read(virt),
            "pit_counter": self.pit_counter.read(virt),
        }
