"""Virtualised clock devices visible to the guest (paper Sec. IV-B).

Real Xen exposes several time sources that StopWatch must intervene on:
the TSC (via ``rdtsc``), the CMOS real-time clock, and the PIT's
count-down counter.  All three are re-derived here from the guest's
virtual time, so reading them leaks nothing beyond guest progress --
the attacker-facing property asserted in ``tests/attacks``.
"""

from repro.machine.devices.clocks import (
    VirtualTsc,
    VirtualRtc,
    VirtualPitCounter,
    GuestClockPanel,
    PIT_INPUT_HZ,
)

__all__ = [
    "VirtualTsc",
    "VirtualRtc",
    "VirtualPitCounter",
    "GuestClockPanel",
    "PIT_INPUT_HZ",
]
