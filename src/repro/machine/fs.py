"""A deterministic in-guest filesystem over the virtual disk.

The paper replicates each guest VM's **entire disk image** so that all
replicas see identical disk state (Sec. V, VII-B).  This module makes
that concrete: a small filesystem whose state is a pure function of the
operation sequence, running over the guest disk interface -- so three
replicas of a file-serving guest hold bit-identical trees, caches and
block maps at every instruction.

Model (ext2-ish, simplified):

- a tree of directories and regular files; inodes carry size, mode and
  mtime (mtime in *virtual* time -- guests cannot see real time);
- data lives in fixed-size blocks; reads miss to the disk per uncached
  block range, hits are free;
- an LRU buffer cache over (inode, block) pairs;
- metadata mutations (create/setattr/truncate) commit through a
  one-block journal write before completing (NFS stable semantics);
- data writes are write-behind: the op completes after the journal
  commit, dirty blocks flush lazily.

All I/O completion flows through guest callbacks, keeping the whole
thing replica-deterministic under StopWatch.
"""

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

BLOCK_SIZE = 4096


class FileSystemError(Exception):
    """Path resolution or semantic failure (ENOENT, EEXIST, EISDIR...)."""


class Inode:
    """One file or directory.

    Inode ids are allocated by the owning filesystem (never from global
    state) so that replicas allocate identical ids.
    """

    def __init__(self, kind: str, inode_id: int, mode: int = 0o644):
        self.inode_id = inode_id
        self.kind = kind                 # "file" | "dir"
        self.mode = mode
        self.size = 0
        self.mtime_virt = 0.0
        self.children: Dict[str, "Inode"] = {} if kind == "dir" else None

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"

    def block_count(self) -> int:
        return (self.size + BLOCK_SIZE - 1) // BLOCK_SIZE

    def __repr__(self) -> str:
        return f"<Inode {self.inode_id} {self.kind} size={self.size}>"


class SimpleFileSystem:
    """The filesystem instance for one guest replica."""

    def __init__(self, guest, cache_blocks: int = 2048):
        if cache_blocks < 1:
            raise ValueError(f"cache_blocks must be >= 1, got {cache_blocks}")
        self.guest = guest
        self._next_inode_id = 1
        self.root = Inode("dir", self._alloc_id(), mode=0o755)
        self.cache_capacity = cache_blocks
        #: LRU over (inode_id, block_index); value True = dirty
        self._cache: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self.stats = {
            "lookups": 0, "creates": 0, "reads": 0, "writes": 0,
            "setattrs": 0, "getattrs": 0,
            "cache_hits": 0, "cache_misses": 0,
            "journal_commits": 0, "flushes": 0,
        }

    def _alloc_id(self) -> int:
        inode_id = self._next_inode_id
        self._next_inode_id += 1
        return inode_id

    # ------------------------------------------------------------------
    # path handling (synchronous, in-memory -- directory data is assumed
    # resident, as it would be for a warm dentry cache)
    # ------------------------------------------------------------------
    @staticmethod
    def _split(path: str) -> List[str]:
        parts = [part for part in path.split("/") if part]
        if not parts and path.strip("/") != "":
            raise FileSystemError(f"bad path {path!r}")
        return parts

    def _walk(self, parts: List[str]) -> Inode:
        node = self.root
        for part in parts:
            if not node.is_dir:
                raise FileSystemError(f"{part!r}: not a directory")
            child = node.children.get(part)
            if child is None:
                raise FileSystemError(f"{part!r}: no such file or directory")
            node = child
        return node

    def lookup(self, path: str) -> Inode:
        """Resolve a path (the NFS ``lookup`` op)."""
        self.stats["lookups"] += 1
        return self._walk(self._split(path))

    def exists(self, path: str) -> bool:
        try:
            self._walk(self._split(path))
            return True
        except FileSystemError:
            return False

    def getattr(self, path: str) -> dict:
        """Attribute read (pure -- attribute cache hit)."""
        self.stats["getattrs"] += 1
        inode = self._walk(self._split(path))
        return {"inode": inode.inode_id, "kind": inode.kind,
                "mode": inode.mode, "size": inode.size,
                "mtime": inode.mtime_virt}

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def _touch_block(self, key: Tuple[int, int], dirty: bool) -> None:
        if key in self._cache:
            dirty = dirty or self._cache[key]
            self._cache.pop(key)
        self._cache[key] = dirty
        while len(self._cache) > self.cache_capacity:
            _, was_dirty = self._cache.popitem(last=False)
            if was_dirty:
                # evicting a dirty block triggers a background flush
                self.stats["flushes"] += 1
                self.guest.disk_write(1, lambda: None)

    def cached(self, inode: Inode, block: int) -> bool:
        return (inode.inode_id, block) in self._cache

    def cache_utilization(self) -> float:
        return len(self._cache) / self.cache_capacity

    # ------------------------------------------------------------------
    # disk-image preloading (no I/O: the image arrives pre-populated,
    # exactly like the replicated disk image of Sec. VII-B)
    # ------------------------------------------------------------------
    def preload_file(self, path: str, size: int,
                     mode: int = 0o644) -> Inode:
        """Install a file directly into the tree, bypassing the journal."""
        if size < 0:
            raise FileSystemError("negative size")
        parts = self._split(path)
        if not parts:
            raise FileSystemError("cannot preload the root")
        node = self.root
        for part in parts[:-1]:
            child = node.children.get(part)
            if child is None:
                child = Inode("dir", self._alloc_id(), mode=0o755)
                node.children[part] = child
            node = child
        if parts[-1] in node.children:
            raise FileSystemError(f"{path!r}: already exists")
        inode = Inode("file", self._alloc_id(), mode=mode)
        inode.size = size
        node.children[parts[-1]] = inode
        return inode

    # ------------------------------------------------------------------
    # mutations (journalled)
    # ------------------------------------------------------------------
    def _journal(self, fn: Callable, *args) -> None:
        self.stats["journal_commits"] += 1
        self.guest.disk_write(1, fn, *args)

    def mkdir(self, path: str, fn: Callable, mode: int = 0o755) -> None:
        self._create_node(path, "dir", mode, fn)

    def create(self, path: str, fn: Callable, mode: int = 0o644) -> None:
        """Create an empty regular file; ``fn(inode)`` after the journal
        commit (the NFS ``create`` op)."""
        self._create_node(path, "file", mode, fn)

    def _create_node(self, path: str, kind: str, mode: int,
                     fn: Callable) -> None:
        parts = self._split(path)
        if not parts:
            raise FileSystemError("cannot create the root")
        parent = self._walk(parts[:-1])
        if not parent.is_dir:
            raise FileSystemError(f"{path!r}: parent is not a directory")
        if parts[-1] in parent.children:
            raise FileSystemError(f"{path!r}: already exists")
        self.stats["creates"] += 1
        inode = Inode(kind, self._alloc_id(), mode=mode)
        inode.mtime_virt = self.guest.now()
        parent.children[parts[-1]] = inode
        parent.mtime_virt = inode.mtime_virt
        self._journal(fn, inode)

    def setattr(self, path: str, fn: Callable,
                mode: Optional[int] = None,
                truncate_to: Optional[int] = None) -> None:
        """Change attributes; ``fn(inode)`` after the journal commit."""
        inode = self._walk(self._split(path))
        self.stats["setattrs"] += 1
        if mode is not None:
            inode.mode = mode
        if truncate_to is not None:
            if truncate_to < 0:
                raise FileSystemError("negative truncate length")
            if inode.is_dir:
                raise FileSystemError(f"{path!r}: is a directory")
            inode.size = truncate_to
        inode.mtime_virt = self.guest.now()
        self._journal(fn, inode)

    def unlink(self, path: str, fn: Callable) -> None:
        parts = self._split(path)
        if not parts:
            raise FileSystemError("cannot unlink the root")
        parent = self._walk(parts[:-1])
        child = parent.children.get(parts[-1])
        if child is None:
            raise FileSystemError(f"{path!r}: no such file or directory")
        if child.is_dir and child.children:
            raise FileSystemError(f"{path!r}: directory not empty")
        del parent.children[parts[-1]]
        parent.mtime_virt = self.guest.now()
        # drop the victim's cached blocks
        doomed = [key for key in self._cache if key[0] == child.inode_id]
        for key in doomed:
            del self._cache[key]
        self._journal(fn, child)

    # ------------------------------------------------------------------
    # data I/O
    # ------------------------------------------------------------------
    def read(self, path: str, offset: int, length: int,
             fn: Callable) -> None:
        """Read a byte range; ``fn(bytes_read)`` when the data is in the
        guest's buffers (cache hits complete without disk I/O)."""
        if offset < 0 or length < 0:
            raise FileSystemError("negative offset or length")
        inode = self._walk(self._split(path))
        if inode.is_dir:
            raise FileSystemError(f"{path!r}: is a directory")
        self.stats["reads"] += 1
        available = max(0, inode.size - offset)
        count = min(length, available)
        if count == 0:
            fn(0)
            return
        first = offset // BLOCK_SIZE
        last = (offset + count - 1) // BLOCK_SIZE
        missing = 0
        for block in range(first, last + 1):
            key = (inode.inode_id, block)
            if key in self._cache:
                self.stats["cache_hits"] += 1
                self._touch_block(key, dirty=False)
            else:
                self.stats["cache_misses"] += 1
                missing += 1
                self._touch_block(key, dirty=False)
        if missing == 0:
            fn(count)
        else:
            self.guest.disk_read(missing, fn, count)

    def write(self, path: str, offset: int, length: int,
              fn: Callable) -> None:
        """Write a byte range; write-behind data, journalled metadata.
        ``fn(bytes_written)`` after the journal commit."""
        if offset < 0 or length <= 0:
            raise FileSystemError("bad offset or length")
        inode = self._walk(self._split(path))
        if inode.is_dir:
            raise FileSystemError(f"{path!r}: is a directory")
        self.stats["writes"] += 1
        end = offset + length
        first = offset // BLOCK_SIZE
        last = (end - 1) // BLOCK_SIZE
        for block in range(first, last + 1):
            self._touch_block((inode.inode_id, block), dirty=True)
        if end > inode.size:
            inode.size = end
        inode.mtime_virt = self.guest.now()
        self._journal(fn, length)

    # ------------------------------------------------------------------
    # state fingerprint (determinism checks)
    # ------------------------------------------------------------------
    def fingerprint(self) -> int:
        """A stable hash of the full tree + cache state; equal across
        replicas iff the filesystems evolved identically."""
        items: List[tuple] = []

        def visit(name: str, node: Inode) -> None:
            items.append((name, node.kind, node.mode, node.size,
                          round(node.mtime_virt, 9)))
            if node.is_dir:
                for child_name in sorted(node.children):
                    visit(f"{name}/{child_name}",
                          node.children[child_name])

        visit("", self.root)
        items.append(tuple(sorted(self._cache.keys())))
        return hash(tuple(items)) & 0xFFFFFFFFFFFF
