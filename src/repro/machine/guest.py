"""The deterministic guest runtime (one per replica).

A guest workload is a callback-driven program written against this
interface.  Its entire observable world is:

- virtual time (:meth:`GuestOS.now`) and the branch counter
  (:attr:`GuestOS.instr`) -- pure functions of executed instructions;
- injected events: network packets, disk completions and PIT ticks, all
  delivered at VMM-controlled virtual times;
- its own deterministic RNG stream (identical across replicas).

Because nothing else is visible, two replicas driven with identical
injection schedules execute identically -- the invariant StopWatch's
design rests on, and one our integration tests assert.

``GuestOS`` implements the NetHost interface (``now`` / ``schedule`` /
``send_packet`` / ``register_protocol`` / ``rng``), so the TCP and UDP
stacks from :mod:`repro.net` run unmodified inside guests.
"""

import heapq
from typing import Any, Callable, Dict, List, Optional

from repro.machine.devices.clocks import GuestClockPanel


class GuestTimer:
    """Cancellable handle for a scheduled guest event.

    ``flow`` carries the inbound-packet flow context active when the
    event was scheduled, so asynchronous work (an echo reply after a
    compute phase, a file chunk after a disk read) stays attributed to
    the packet that caused it.  Purely observational -- it never affects
    ordering.
    """

    __slots__ = ("instr", "seq", "fn", "args", "cancelled", "flow")

    def __init__(self, instr: int, seq: int, fn: Callable, args: tuple,
                 flow: Optional[int] = None):
        self.instr = instr
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.flow = flow

    def cancel(self) -> None:
        self.cancelled = True
        self.fn = None
        self.args = ()

    def __lt__(self, other: "GuestTimer") -> bool:
        return (self.instr, self.seq) < (other.instr, other.seq)


class GuestOS:
    """The guest-visible operating environment."""

    def __init__(self, vmm, workload_rng):
        self.vmm = vmm
        self.address = vmm.vm_address
        self.rng = workload_rng
        self._events: List[GuestTimer] = []
        self._seq = 0
        self._protocols: Dict[str, Callable] = {}
        self._tick_handlers: List[Callable] = []
        self.clocks = GuestClockPanel(rtc_boot_epoch=vmm.clock.start)
        self.packets_received = 0
        self.packets_sent = 0
        self._current_flow: Optional[int] = None

    # ------------------------------------------------------------------
    # NetHost interface + guest extras (workload-facing)
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current virtual time (the only clock a guest can see)."""
        return self.vmm.current_virt()

    @property
    def instr(self) -> int:
        """The guest branch counter (a TL-style clock for attackers)."""
        return self.vmm.instr

    # -- virtualised clock devices (Sec. IV-B) --------------------------
    def read_tsc(self) -> int:
        """``rdtsc``: scaled from virtual time, not real time."""
        return self.clocks.tsc.read(self.now())

    def read_rtc(self) -> int:
        """The CMOS RTC, seconds resolution, answered in virtual time."""
        return self.clocks.rtc.read(self.now())

    def read_pit_counter(self) -> int:
        """The PIT count-down counter, driven by virtual time."""
        return self.clocks.pit_counter.read(self.now())

    def schedule(self, delay: float, fn: Callable, *args) -> GuestTimer:
        """Run ``fn(*args)`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        target = self.vmm.clock.instr_at(self.now() + delay)
        return self.schedule_at_instr(max(target, self.vmm.instr), fn, *args)

    def compute(self, branches: int, fn: Callable, *args) -> GuestTimer:
        """Run ``fn(*args)`` after executing ``branches`` more branches
        (models a CPU-bound phase of the workload)."""
        if branches < 0:
            raise ValueError(f"negative branch count: {branches}")
        return self.schedule_at_instr(self.vmm.instr + branches, fn, *args)

    def schedule_at_instr(self, instr: int, fn: Callable,
                          *args) -> GuestTimer:
        timer = GuestTimer(instr, self._seq, fn, args,
                           flow=self._current_flow)
        self._seq += 1
        heapq.heappush(self._events, timer)
        self.vmm.notify_guest_event()
        return timer

    def send_packet(self, packet) -> None:
        """Emit a packet (to the egress node under StopWatch)."""
        self.packets_sent += 1
        self.vmm.guest_output(packet)

    def register_protocol(self, protocol: str, handler: Callable) -> None:
        if protocol in self._protocols:
            raise ValueError(f"guest {self.address}: protocol "
                             f"{protocol!r} already registered")
        self._protocols[protocol] = handler

    def disk_read(self, blocks: int, fn: Callable, *args) -> None:
        """Issue a disk read; ``fn(*args)`` runs at interrupt delivery."""
        self.vmm.request_disk(blocks, fn, args, write=False)

    def disk_write(self, blocks: int, fn: Callable, *args) -> None:
        self.vmm.request_disk(blocks, fn, args, write=True)

    def on_timer_tick(self, fn: Callable) -> None:
        """Subscribe to PIT timer interrupts (fn(tick_index))."""
        self._tick_handlers.append(fn)

    # ------------------------------------------------------------------
    # VMM-facing driver API
    # ------------------------------------------------------------------
    def next_event_instr(self) -> Optional[int]:
        """Instruction count of the earliest pending guest event."""
        while self._events and self._events[0].cancelled:
            heapq.heappop(self._events)
        return self._events[0].instr if self._events else None

    def run_due_events(self, instr: int) -> None:
        """Execute every pending event with ``event.instr <= instr``,
        each under the flow context it was scheduled in."""
        while self._events:
            head = self._events[0]
            if head.cancelled:
                heapq.heappop(self._events)
                continue
            if head.instr > instr:
                break
            heapq.heappop(self._events)
            fn, args = head.fn, head.args
            head.fn, head.args = None, ()
            self._current_flow = head.flow
            try:
                fn(*args)
            finally:
                self._current_flow = None

    def deliver_packet(self, packet) -> None:
        """Called by the VMM when a network interrupt is injected."""
        self.packets_received += 1
        handler = self._protocols.get(packet.protocol)
        if handler is not None:
            handler(packet)

    # ------------------------------------------------------------------
    # flow context (observability only; see repro.obs.flows)
    # ------------------------------------------------------------------
    def current_flow(self) -> Optional[int]:
        """The inbound-packet flow the guest is currently servicing."""
        return self._current_flow

    def set_flow(self, flow: Optional[int]) -> None:
        """Set the active flow context (the VMM brackets injections)."""
        self._current_flow = flow

    def deliver_tick(self, index: int) -> None:
        for handler in self._tick_handlers:
            handler(index)

    def __repr__(self) -> str:
        return f"<GuestOS {self.address} instr={self.vmm.instr}>"
