"""The dom0 device-model work queue.

All device emulation on a Xen host runs in Dom0; its CPU time is shared
by every guest on the machine.  That sharing is a timing side channel:
a busy victim's packet and disk handling delays the attacker's own
device events.  :class:`Dom0Executor` models dom0 as a single FIFO
service queue and tracks a recent-activity level that the host's
execution-noise model consumes (cache/bus contention proxy).
"""

from collections import deque
from typing import Callable


def _noop() -> None:
    pass


class Dom0Executor:
    """FIFO work queue with busy-time accounting."""

    def __init__(self, sim, name: str = "dom0",
                 activity_window: float = 0.100):
        self.sim = sim
        self.name = name
        self.activity_window = activity_window
        self._busy_until = 0.0
        self._recent: deque = deque()   # (end_time, duration)
        self._recent_total = 0.0
        self.jobs_done = 0
        self.busy_total = 0.0

    def submit(self, duration: float, fn: Callable, *args) -> float:
        """Enqueue a job of ``duration`` seconds; ``fn(*args)`` runs at
        completion.  Returns the completion time."""
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        now = self.sim.now
        busy = self._busy_until
        start = busy if busy > now else now
        finish = start + duration
        self._busy_until = finish
        self.busy_total += duration
        self.jobs_done += 1
        self._recent.append((finish, duration))
        self._recent_total += duration
        self.sim.call_at(finish, fn, *args)
        return finish

    def inject_stall(self, duration: float) -> float:
        """Fault hook: occupy dom0 for ``duration`` seconds of dead time.

        Models a dom0 hiccup (ballooning, qemu stall, host-side GC):
        every queued device-model job behind it is delayed, and the
        activity level -- the contention signal guests observe -- spikes.
        Returns the completion time.
        """
        self.sim.trace.record(self.sim.now, "fault.dom0_stall",
                              dom0=self.name, duration=duration)
        return self.submit(duration, _noop)

    def queue_delay(self) -> float:
        """Seconds a job submitted now would wait before starting."""
        return max(0.0, self._busy_until - self.sim.now)

    def activity_level(self) -> float:
        """Fraction of the trailing window dom0 spent busy (clamped to 1).

        This is the contention signal guests on the same host experience.
        """
        horizon = self.sim.now - self.activity_window
        recent = self._recent
        if recent and recent[0][0] < horizon:
            total = self._recent_total
            while recent and recent[0][0] < horizon:
                total -= recent.popleft()[1]
            self._recent_total = total
        level = self._recent_total / self.activity_window
        if level >= 1.0:
            return 1.0
        return level if level > 0.0 else 0.0

    def __repr__(self) -> str:
        return (f"<Dom0Executor {self.name} jobs={self.jobs_done} "
                f"activity={self.activity_level():.3f}>")
