"""Physical machine and guest VM models.

- :class:`Host` -- one physical machine: a dom0 work queue (the QEMU
  device-model side), a rotating-disk model, timing noise coupled to
  coresident activity (the physical side channel StopWatch defends
  against), and the guests it runs.
- :class:`GuestOS` -- the deterministic guest runtime.  Guests see only
  StopWatch virtual time; their workloads are callback-driven programs
  against the NetHost interface plus ``compute`` and disk I/O, so guest
  behaviour is a pure function of (injected events, virtual times) --
  which is exactly the determinism StopWatch enforces.
"""

from repro.machine.dom0 import Dom0Executor
from repro.machine.disk import DiskModel
from repro.machine.host import Host, HostCapacityError
from repro.machine.guest import GuestOS, GuestTimer
from repro.machine.multiproc import (
    GuestThread,
    MultiprocessorRuntime,
    ThreadCrashed,
)
from repro.machine.fs import (
    BLOCK_SIZE,
    FileSystemError,
    Inode,
    SimpleFileSystem,
)

__all__ = [
    "Dom0Executor",
    "DiskModel",
    "Host",
    "HostCapacityError",
    "GuestOS",
    "GuestTimer",
    "GuestThread",
    "MultiprocessorRuntime",
    "ThreadCrashed",
    "BLOCK_SIZE",
    "FileSystemError",
    "Inode",
    "SimpleFileSystem",
]
