"""Deterministic multiprocessor guest execution (paper future work).

The paper's prototype mediates uniprocessor VMs and names deterministic
multiprocessor scheduling (DMP, IEEE Micro'10) as the path to SMP
support.  This module implements that extension on the simulated
substrate: a :class:`MultiprocessorRuntime` runs guest *threads* in
fixed round-robin quanta, so the interleaving -- and therefore every
shared-state outcome -- is a pure function of guest progress, exactly
like the rest of the guest's visible world.

Threads are generators yielding instructions to the scheduler:

- an ``int`` -- execute that many branches of work;
- ``("acquire", name)`` / ``("release", name)`` -- deterministic locks
  (granted in round-robin order at quantum boundaries);
- ``("join", thread)`` -- block until another thread finishes.

Wall-clock behaviour: with V virtual CPUs, a scheduling round of T
runnable threads costs ``quantum * ceil(T / V)`` branches of guest
execution (idle lanes burn quanta too, keeping the branch counter --
and hence virtual time -- deterministic), so adding VCPUs gives real
parallel speedup while preserving replica determinism.
"""

import math
from collections import deque
from typing import Callable, Dict, List, Optional


class ThreadCrashed(RuntimeError):
    """A guest thread raised; the exception is chained."""


class GuestThread:
    """One logical thread inside a multiprocessor guest."""

    _states = ("runnable", "blocked", "finished")

    def __init__(self, runtime: "MultiprocessorRuntime", name: str,
                 body) -> None:
        self.runtime = runtime
        self.name = name
        self._body = body
        self.state = "runnable"
        self.result = None
        #: branches still owed for the instruction currently yielded
        self._deficit = 0
        self._joiners: List["GuestThread"] = []
        self.branches_executed = 0

    @property
    def finished(self) -> bool:
        return self.state == "finished"

    # -- scheduler-side driver -------------------------------------------
    def _advance(self, budget: int) -> None:
        """Consume up to ``budget`` branches of this thread's work."""
        while budget > 0 and self.state == "runnable":
            if self._deficit > 0:
                step = min(self._deficit, budget)
                self._deficit -= step
                budget -= step
                self.branches_executed += step
                if self._deficit > 0:
                    return
            self._step()

    def _step(self) -> None:
        """Fetch the next instruction from the generator."""
        try:
            instruction = next(self._body)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Exception as error:  # noqa: BLE001
            self._finish(None)
            raise ThreadCrashed(f"thread {self.name} crashed") from error
        if isinstance(instruction, int):
            if instruction < 0:
                raise ValueError(f"thread {self.name} yielded negative "
                                 f"branch count {instruction}")
            self._deficit = instruction
            return
        kind = instruction[0]
        if kind == "acquire":
            self.runtime._acquire(self, instruction[1])
        elif kind == "release":
            self.runtime._release(self, instruction[1])
        elif kind == "join":
            target = instruction[1]
            if not target.finished:
                self.state = "blocked"
                target._joiners.append(self)
        else:
            raise ValueError(f"thread {self.name} yielded unknown "
                             f"instruction {instruction!r}")

    def _finish(self, result) -> None:
        self.state = "finished"
        self.result = result
        for waiter in self._joiners:
            if waiter.state == "blocked":
                waiter.state = "runnable"
        self._joiners.clear()
        self.runtime._thread_finished(self)

    def __repr__(self) -> str:
        return f"<GuestThread {self.name} {self.state}>"


class MultiprocessorRuntime:
    """DMP-style deterministic scheduler over guest threads."""

    def __init__(self, guest, vcpus: int = 2, quantum: int = 10_000,
                 on_idle: Optional[Callable] = None):
        if vcpus < 1:
            raise ValueError(f"vcpus must be >= 1, got {vcpus}")
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        self.guest = guest
        self.vcpus = vcpus
        self.quantum = quantum
        self.on_idle = on_idle
        self.threads: List[GuestThread] = []
        self._locks: Dict[str, GuestThread] = {}
        self._lock_queues: Dict[str, deque] = {}
        self._running = False
        self.rounds_executed = 0

    # -- thread management -------------------------------------------------
    def spawn(self, body, name: Optional[str] = None) -> GuestThread:
        """Create a thread from a generator (or generator function)."""
        if callable(body) and not hasattr(body, "send"):
            body = body()
        if not hasattr(body, "send"):
            raise TypeError("thread body must be a generator")
        thread = GuestThread(self, name or f"thread-{len(self.threads)}",
                             body)
        self.threads.append(thread)
        if not self._running:
            self._running = True
            # scheduling happens in guest context, deterministically
            self.guest.compute(0, self._round)
        return thread

    # -- locks ----------------------------------------------------------------
    def _acquire(self, thread: GuestThread, name: str) -> None:
        holder = self._locks.get(name)
        if holder is None:
            self._locks[name] = thread
        else:
            self._lock_queues.setdefault(name, deque()).append(thread)
            thread.state = "blocked"

    def _release(self, thread: GuestThread, name: str) -> None:
        if self._locks.get(name) is not thread:
            raise RuntimeError(f"thread {thread.name} released lock "
                               f"{name!r} it does not hold")
        queue = self._lock_queues.get(name)
        if queue:
            successor = queue.popleft()
            self._locks[name] = successor
            successor.state = "runnable"
        else:
            del self._locks[name]

    def _thread_finished(self, thread: GuestThread) -> None:
        held = [name for name, holder in self._locks.items()
                if holder is thread]
        for name in held:
            self._release(thread, name)

    # -- the scheduling round ------------------------------------------------
    @property
    def runnable(self) -> List[GuestThread]:
        return [t for t in self.threads if t.state == "runnable"]

    @property
    def all_finished(self) -> bool:
        return all(t.finished for t in self.threads)

    def _round(self) -> None:
        """One deterministic scheduling round."""
        runnable = self.runnable
        if not runnable:
            if self.all_finished:
                self._running = False
                if self.on_idle is not None:
                    self.on_idle()
                return
            # blocked threads only: deadlock in the guest program
            self._running = False
            raise RuntimeError(
                f"multiprocessor guest deadlocked: "
                f"{[t.name for t in self.threads if t.state == 'blocked']}"
            )
        self.rounds_executed += 1
        # round-robin: every runnable thread gets one quantum, V at a time
        for thread in runnable:
            thread._advance(self.quantum)
        lanes = math.ceil(len(runnable) / self.vcpus)
        round_cost = self.quantum * lanes
        self.guest.compute(round_cost, self._round)
