"""A rotating-disk service model.

The paper's testbed used 70 GB rotating hard drives; Δd was sized from
their observed access times (roughly 8-15 ms).  The model: one arm, FIFO
service, per-request time = seek+rotation draw plus per-block transfer.
"""

from typing import Callable


class DiskModel:
    """FIFO rotating disk.  Block size is nominally 4 KiB."""

    def __init__(self, sim, rng, name: str = "disk",
                 seek_min: float = 0.003, seek_max: float = 0.009,
                 per_block: float = 0.00005,
                 cache_hit_ratio: float = 0.0,
                 cache_hit_time: float = 0.0002):
        if seek_min < 0 or seek_max < seek_min:
            raise ValueError(f"bad seek range [{seek_min}, {seek_max}]")
        self.sim = sim
        self.rng = rng
        self.name = name
        self.seek_min = seek_min
        self.seek_max = seek_max
        self.per_block = per_block
        self.cache_hit_ratio = cache_hit_ratio
        self.cache_hit_time = cache_hit_time
        self._busy_until = 0.0
        self.requests = 0
        self.busy_total = 0.0

    def service_time(self, blocks: int) -> float:
        """Draw one request's service time."""
        if blocks < 1:
            raise ValueError(f"blocks must be >= 1, got {blocks}")
        if (self.cache_hit_ratio > 0.0
                and self.rng.random() < self.cache_hit_ratio):
            return self.cache_hit_time
        seek = self.rng.uniform(self.seek_min, self.seek_max)
        return seek + blocks * self.per_block

    def request(self, blocks: int, fn: Callable, *args) -> float:
        """Enqueue a ``blocks``-sized access; ``fn(*args)`` fires at
        completion.  Returns the completion time."""
        service = self.service_time(blocks)
        start = max(self.sim.now, self._busy_until)
        finish = start + service
        self._busy_until = finish
        self.requests += 1
        self.busy_total += service
        self.sim.call_at(finish, fn, *args)
        return finish

    def queue_delay(self) -> float:
        return max(0.0, self._busy_until - self.sim.now)

    def __repr__(self) -> str:
        return f"<DiskModel {self.name} requests={self.requests}>"
