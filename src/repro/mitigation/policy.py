"""Pluggable timing-mitigation policies.

StopWatch's claim (DSN 2013) is that 3-replica median timing beats the
alternatives on the leakage-vs-overhead frontier -- but the original
mediation logic was hardwired into the hypervisor and egress layers, so
the reproduction could only measure one point on that frontier.  This
module extracts the decision points into a :class:`MitigationPolicy`
interface the hypervisor (:mod:`repro.vmm.hypervisor`), fabric
(:mod:`repro.cloud.fabric`) and egress (:mod:`repro.cloud.egress`) call
instead of embedding median logic, with four implementations:

``stopwatch``
    The paper's mechanism, extracted verbatim: 3 replicas, network
    interrupts proposed at ``last_exit_virt + delta_net`` and delivered
    at the replicas' median, disk at ``request_virt + delta_disk``,
    egress release on the median copy.  Byte-identical to the
    pre-extraction pipeline (the regression gate in
    ``tests/mitigation/test_byte_identity.py`` pins this).

``deterland``
    Deterministic batching in the style of Deterland (Wu & Ford):
    a single replica whose I/O events are quantised onto virtual-time
    mitigation-interval boundaries, and whose egress releases are
    quantised onto real-time boundaries.  All delays are pure functions
    of (event time, interval), so the policy adds no randomness.

``uniform-noise``
    The paper's Sec. II noise-injection baseline: a single replica that
    delays each guest-visible event and each egress release by an
    independent U(0, bound) draw from seeded per-VM RNG streams
    (the analytics for choosing ``bound`` live in
    :mod:`repro.stats.noise`).

``none``
    Passthrough control: one replica, immediate injection, direct
    output -- the unmodified-Xen baseline.

Hook contract (all hooks must be deterministic given the simulator's
seeded RNG registry; none may keep mutable per-call state on the policy
object itself, because one instance may serve many VMs):

- ``replica_count(config)``: replicas deployed per guest VM.
- ``coordinated``: whether replicas run median agreement; uncoordinated
  VMMs take the local-injection path even under a mediated cloud.
- ``inbound_delivery_virt(vmm)`` / ``immediate_injection``: delivery
  virtual time for a locally-injected inbound packet, and whether the
  engine is poked mid-quantum (baseline behaviour) or left to deliver
  at the next natural VM exit.
- ``network_proposal_virt(vmm)``: this replica's proposed delivery
  virtual time under coordination (stopwatch only).
- ``disk_delivery_virt(vmm, request_virt)`` / ``disk_poke``: disk
  interrupt schedule, and whether completion pokes the engine.
- ``timer_gate_virt(vmm, virt)``: the virtual time up to which pending
  PIT ticks are delivered at a VM exit at ``virt``.
- ``release_delay(egress, vm_name)``: extra real-time delay the egress
  node holds a quorum-complete output for (0 releases inline).
"""

import math
from typing import Dict, Optional, Type

from repro.core.config import StopWatchConfig


class PolicyError(ValueError):
    """An unknown policy name or invalid policy parameter."""


class MitigationPolicy:
    """Base class: the passthrough hook set every policy refines."""

    name = "abstract"
    #: replicas run median agreement over network delivery times
    coordinated = False
    #: locally-injected inbound packets poke the engine mid-quantum
    immediate_injection = True
    #: disk completion pokes the engine (baseline immediate injection)
    disk_poke = True

    # -- deployment shape ---------------------------------------------
    def replica_count(self, config: StopWatchConfig) -> int:
        return 1

    def configure(self, base: StopWatchConfig) -> StopWatchConfig:
        """The :class:`StopWatchConfig` a standalone cloud running this
        policy should use, derived from ``base``."""
        return base.with_overrides(replicas=1, mediate=False,
                                   egress_enabled=False)

    # -- hypervisor hooks ---------------------------------------------
    def inbound_delivery_virt(self, vmm) -> float:
        return float("-inf")

    def network_proposal_virt(self, vmm) -> float:
        return vmm.last_exit_virt + vmm.config.delta_net

    def disk_delivery_virt(self, vmm,
                           request_virt: float) -> Optional[float]:
        return None

    def timer_gate_virt(self, vmm, virt: float) -> float:
        return virt

    # -- egress hook --------------------------------------------------
    def release_delay(self, egress, vm_name: str) -> float:
        return 0.0

    def describe(self) -> Dict[str, object]:
        return {"policy": self.name}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class PassthroughPolicy(MitigationPolicy):
    """``none``: the unmodified-Xen control, no timing protection."""

    name = "none"


class StopWatchPolicy(MitigationPolicy):
    """``stopwatch``: the paper's 3-replica median mediation, extracted.

    Every hook reproduces the arithmetic the hypervisor used before the
    extraction, so a cloud running this policy under a mediated config
    is byte-identical to previous releases.
    """

    name = "stopwatch"
    coordinated = True
    #: an uncoordinated stopwatch VMM (single replica, or a unit test
    #: without a coordination group) falls back to baseline local
    #: injection, exactly as the pre-extraction code did
    immediate_injection = True
    disk_poke = False

    def replica_count(self, config: StopWatchConfig) -> int:
        return config.replicas

    def configure(self, base: StopWatchConfig) -> StopWatchConfig:
        if base.mediate and base.egress_enabled:
            return base
        return base.with_overrides(mediate=True, egress_enabled=True,
                                   replicas=max(3, base.replicas))

    def disk_delivery_virt(self, vmm, request_virt: float) -> float:
        return request_virt + vmm.config.delta_disk


class DeterlandPolicy(MitigationPolicy):
    """``deterland``: single-replica deterministic batching.

    Guest-visible events land on the next virtual-time boundary of
    ``interval``; egress releases land on the next real-time boundary
    of ``release_interval`` (defaults to ``interval``).  Disk delivery
    is quantised from ``request_virt + delta_disk`` -- the same
    worst-case access bound StopWatch uses -- so the data is in the
    buffer by the boundary and completion time itself never leaks.
    """

    name = "deterland"
    immediate_injection = False
    disk_poke = False

    def __init__(self, interval: float = 0.005,
                 release_interval: Optional[float] = None):
        if interval <= 0:
            raise PolicyError(
                f"deterland interval must be positive, got {interval}")
        if release_interval is not None and release_interval <= 0:
            raise PolicyError(
                f"deterland release_interval must be positive, "
                f"got {release_interval}")
        self.interval = interval
        self.release_interval = (release_interval
                                 if release_interval is not None
                                 else interval)

    @staticmethod
    def _next_boundary(time: float, interval: float) -> float:
        return (math.floor(time / interval) + 1) * interval

    def configure(self, base: StopWatchConfig) -> StopWatchConfig:
        return base.with_overrides(replicas=1, mediate=False,
                                   egress_enabled=True)

    def inbound_delivery_virt(self, vmm) -> float:
        return self._next_boundary(vmm.current_virt(), self.interval)

    def disk_delivery_virt(self, vmm, request_virt: float) -> float:
        return self._next_boundary(request_virt + vmm.config.delta_disk,
                                   self.interval)

    def timer_gate_virt(self, vmm, virt: float) -> float:
        return math.floor(virt / self.interval) * self.interval

    def release_delay(self, egress, vm_name: str) -> float:
        now = egress.sim.now
        return self._next_boundary(now, self.release_interval) - now

    def describe(self) -> Dict[str, object]:
        return {"policy": self.name, "interval": self.interval,
                "release_interval": self.release_interval}


class UniformNoisePolicy(MitigationPolicy):
    """``uniform-noise``: single replica, each event delayed U(0, bound).

    Draws come from named per-VM streams of the simulator's seeded RNG
    registry, so same-seed runs are byte-identical and adding a noisy
    VM never perturbs any other component's draws.  Note the known
    weakness the paper exploits (and :mod:`repro.stats.noise`
    quantifies): noise bounds the *added* delay, not the contention the
    event timing already carries, so small bounds leak.
    """

    name = "uniform-noise"
    immediate_injection = False
    disk_poke = False

    def __init__(self, bound: float = 0.010):
        if bound <= 0:
            raise PolicyError(
                f"noise bound must be positive, got {bound}")
        self.bound = bound

    def configure(self, base: StopWatchConfig) -> StopWatchConfig:
        return base.with_overrides(replicas=1, mediate=False,
                                   egress_enabled=True)

    def _draw(self, sim, name: str) -> float:
        return sim.rng.stream(name).uniform(0.0, self.bound)

    def inbound_delivery_virt(self, vmm) -> float:
        noise = self._draw(vmm.sim, f"mitigation.noise.{vmm.vm_name}"
                                    f".r{vmm.replica_id}.net")
        return vmm.current_virt() + noise

    def disk_delivery_virt(self, vmm, request_virt: float) -> float:
        noise = self._draw(vmm.sim, f"mitigation.noise.{vmm.vm_name}"
                                    f".r{vmm.replica_id}.disk")
        return request_virt + noise

    def release_delay(self, egress, vm_name: str) -> float:
        return self._draw(egress.sim,
                          f"mitigation.noise.{vm_name}.egress")

    def describe(self) -> Dict[str, object]:
        return {"policy": self.name, "bound": self.bound}


#: every registered policy, instantiable by name
POLICIES: Dict[str, Type[MitigationPolicy]] = {
    StopWatchPolicy.name: StopWatchPolicy,
    DeterlandPolicy.name: DeterlandPolicy,
    UniformNoisePolicy.name: UniformNoisePolicy,
    PassthroughPolicy.name: PassthroughPolicy,
}


def make_policy(name: str, **params) -> MitigationPolicy:
    """Instantiate a registered policy by name with keyword params."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise PolicyError(
            f"unknown mitigation policy {name!r}; "
            f"choose one of {sorted(POLICIES)}") from None
    try:
        return cls(**params)
    except TypeError as exc:
        raise PolicyError(f"bad params for policy {name!r}: {exc}") \
            from exc


def default_policy(config: StopWatchConfig) -> MitigationPolicy:
    """The policy a config implies when none is given explicitly --
    chosen so that pre-subsystem callers are byte-identical: mediated
    configs ran the StopWatch pipeline, unmediated ones the baseline."""
    return StopWatchPolicy() if config.mediate else PassthroughPolicy()


def resolve_policy(policy, config: StopWatchConfig) -> MitigationPolicy:
    """Normalise a policy argument: ``None`` derives the config's
    default, a string instantiates by name, an instance passes through.
    """
    if policy is None:
        return default_policy(config)
    if isinstance(policy, str):
        return make_policy(policy)
    if not isinstance(policy, MitigationPolicy):
        raise PolicyError(
            f"policy must be None, a name, or a MitigationPolicy; "
            f"got {policy!r}")
    return policy
