"""Pluggable timing-channel mitigation policies (see ``policy.py``)."""

from repro.mitigation.policy import (
    DeterlandPolicy,
    MitigationPolicy,
    PassthroughPolicy,
    POLICIES,
    PolicyError,
    StopWatchPolicy,
    UniformNoisePolicy,
    default_policy,
    make_policy,
    resolve_policy,
)

__all__ = [
    "DeterlandPolicy",
    "MitigationPolicy",
    "PassthroughPolicy",
    "POLICIES",
    "PolicyError",
    "StopWatchPolicy",
    "UniformNoisePolicy",
    "default_policy",
    "make_policy",
    "resolve_policy",
]
