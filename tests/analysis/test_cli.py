"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("fig1", "fig4", "fig5", "fig6", "fig7", "fig8",
                        "placement", "offsets", "covert", "collab",
                        "trace", "metrics", "list"):
            args = parser.parse_args(
                [command] if command != "fig7" else ["fig7"])
            assert callable(args.fn)

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_size_list_parsing(self):
        args = build_parser().parse_args(["fig5", "--sizes", "10,20"])
        assert args.sizes == "10,20"


class TestExecution:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_fig1_prints_table(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "w/o StopWatch" in out
        assert "0.99" in out

    def test_placement_prints_table(self, capsys):
        assert main(["placement"]) == 0
        assert "StopWatch VMs" in capsys.readouterr().out

    def test_fig8_prints_tables(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "noise" in out
        assert "Protection-cost scaling" in out

    def test_fig5_small_run(self, capsys):
        assert main(["fig5", "--sizes", "5000"]) == 0
        assert "HTTP" in capsys.readouterr().out

    def test_trace_command_summarizes_and_exports(self, capsys, tmp_path):
        out = tmp_path / "run.jsonl"
        assert main(["trace", "--duration", "0.3", "--categories",
                     "vmm.deliver,ingress", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "vmm.deliver.net" in text
        assert "ingress.replicate" in text
        assert "vmm.emit" not in text          # filtered out
        assert out.exists() and out.read_text().count("\n") > 0

    def test_metrics_command_prints_percentiles(self, capsys):
        assert main(["metrics", "--duration", "0.3", "--profile",
                     "--top", "3"]) == 0
        text = capsys.readouterr().out
        assert "events_per_second" in text
        assert "delay.net" in text
        assert "p95" in text
        assert "Callback wall-time profile" in text
