"""Tests for the storage-repair cell runner and its bench plumbing."""

import json

import pytest

from repro.analysis.storage import (
    run_storage_repair_cell,
    storage_entry,
    write_storage_bench,
)


@pytest.fixture(scope="module")
def cell():
    # one gated cell shared by the assertions below; the runner itself
    # performs the same-seed determinism replay internally
    return run_storage_repair_cell(seed=7, duration=4.5, crash_at=1.0,
                                   check_determinism=True)


class TestRepairCell:
    def test_cell_passes_all_gates(self, cell):
        assert cell["ok"] is True
        assert cell["violations"] == []

    def test_repair_ran_and_restored_n_shares(self, cell):
        assert cell["repairs_completed"] >= 1
        assert cell["repaired_bytes"] > 0
        assert cell["min_live_shares"] == cell["n"]
        assert cell["shares_verified"] is True

    def test_same_seed_repair_trace_is_deterministic(self, cell):
        assert cell["deterministic"] is True
        assert cell["divergence"] is None
        assert cell["signature_records"] > 0

    def test_primary_metric_consistent(self, cell):
        assert cell["repaired_bytes_per_sim_s"] == pytest.approx(
            cell["repaired_bytes"] / cell["duration"])

    def test_result_is_plain_data(self, cell):
        json.dumps(cell)     # campaign workers must be able to cache it

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            run_storage_repair_cell(k=4, n=3)
        with pytest.raises(ValueError):
            run_storage_repair_cell(duration=2.0, crash_at=1.0)


class TestBenchPlumbing:
    def test_entry_shape(self, cell):
        entry = storage_entry(cell, label="t",
                              config={"k": cell["k"], "n": cell["n"]})
        assert entry["benchmark"] == "storage.repair"
        assert entry["primary_metric"] == "repaired_bytes_per_sim_s"
        assert entry["label"] == "t"
        assert entry["metrics"]["ok"] is True
        assert entry["metrics"]["repaired_bytes"] == \
            cell["repaired_bytes"]

    def test_write_appends_trajectory(self, cell, tmp_path):
        path = str(tmp_path / "BENCH_storage.json")
        write_storage_bench(path, cell, label="a")
        write_storage_bench(path, cell, label="b")
        with open(path) as handle:
            data = json.load(handle)
        assert [entry["label"] for entry in data["entries"]] == ["a", "b"]

    def test_registered_as_campaign_runner(self):
        from repro.analysis.experiments import RUNNERS

        assert RUNNERS["storage_repair"] is run_storage_repair_cell

    def test_registered_as_benchmark(self):
        from repro.bench.registry import BENCHMARKS, default_path

        assert "storage.repair" in BENCHMARKS
        assert default_path("storage.repair") == "BENCH_storage.json"
