"""Tests for the kernel benchmark harness and its regression gate."""

import json

import pytest

from repro.analysis.benchkernel import (BenchError, check_regression,
                                        kernel_entry, load_bench,
                                        run_kernel_bench, write_bench)
from repro.bench.schema import (TRAJECTORY_SCHEMA, empty_trajectory,
                                make_entry)

CONFIG = {"tenants": 32, "duration": 2.0, "seed": 1,
          "request_rate": 30.0}


def small_bench(**kwargs):
    params = dict(tenants=2, duration=0.2, seed=3, repeats=2)
    params.update(kwargs)
    return run_kernel_bench(**params)


def entry(eps, config=None, signature="a" * 64, label="head"):
    return make_entry("kernel.scale32", config or dict(CONFIG),
                      {"events_per_cpu_second": eps},
                      primary_metric="events_per_cpu_second",
                      egress_signature=signature, label=label)


def baseline(eps=100_000.0, signature="a" * 64):
    trajectory = empty_trajectory()
    trajectory["entries"].append(entry(eps, signature=signature,
                                       label="base"))
    return trajectory


class TestRunKernelBench:
    def test_small_cell_reports_all_fields(self):
        result = small_bench()
        assert result["benchmark"] == "kernel.scale2"
        assert result["deterministic"] is True
        assert result["events_per_cpu_second"] > 0
        assert result["events_fired"] > 0
        assert result["heap_high_water"] > 0
        assert len(result["runs"]) == 2
        # warm repeats are the same simulation: same DAG, same signature
        first, second = result["runs"]
        assert first["events_fired"] == second["events_fired"]
        assert first["egress_signature"] == second["egress_signature"]
        assert "repeats" not in result["config"]
        assert "profile" not in result

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            run_kernel_bench(repeats=0)

    def test_profiled_repeat_attaches_summary_same_signature(self):
        result = small_bench(repeats=1, profile=True)
        profile = result["profile"]
        assert profile["events"] > 0
        assert profile["subsystems"]
        # total attribution: subsystem seconds sum to the cell total
        assert sum(profile["subsystems"].values()) == pytest.approx(
            profile["total_seconds"], rel=1e-6)
        # run_kernel_bench itself asserts signature equality; reaching
        # here means the profiled repeat was byte-identical
        assert result["deterministic"] is True


class TestKernelEntry:
    def test_entry_shape(self):
        result = small_bench()
        made = kernel_entry(result, label="v1")
        assert made["benchmark"] == "kernel.scale2"
        assert made["label"] == "v1"
        assert made["config"] == result["config"]
        assert made["primary_metric"] == "events_per_cpu_second"
        assert made["egress_signature"] == result["egress_signature"]
        assert made["metrics"]["events_fired"] == result["events_fired"]
        assert "profile" not in made


class TestRegressionGate:
    def test_within_tolerance_passes(self):
        check_regression(entry(85_000.0), baseline())
        check_regression(entry(120_000.0), baseline())

    def test_regression_beyond_tolerance_fails(self):
        with pytest.raises(BenchError, match="regressed"):
            check_regression(entry(70_000.0), baseline())

    def test_config_mismatch_is_an_error_not_a_pass(self):
        other = entry(200_000.0, config=dict(CONFIG, tenants=8))
        with pytest.raises(BenchError, match="config"):
            check_regression(other, baseline())

    def test_signature_change_fails(self):
        with pytest.raises(BenchError, match="signature"):
            check_regression(entry(100_000.0, signature="b" * 64),
                             baseline())


class TestWriteBench:
    def test_append_only_trajectory(self, tmp_path):
        path = str(tmp_path / "BENCH_kernel.json")
        first = small_bench()
        write_bench(path, first, label="v1")
        loaded = load_bench(path)
        assert loaded["schema"] == TRAJECTORY_SCHEMA
        assert [e["label"] for e in loaded["entries"]] == ["v1"]

        second = small_bench()
        write_bench(path, second, label="v2")
        loaded = load_bench(path)
        assert [e["label"] for e in loaded["entries"]] == ["v1", "v2"]
        assert loaded["entries"][0]["metrics"]["events_per_cpu_second"] \
            == first["events_per_cpu_second"]
        # the file is well-formed JSON ending in a newline (atomic writer)
        raw = open(path, encoding="utf-8").read()
        assert raw.endswith("\n")
        json.loads(raw)

    def test_legacy_snapshot_migrates_on_append(self, tmp_path):
        path = tmp_path / "BENCH_kernel.json"
        legacy = {
            "benchmark": "kernel.scale2", "label": "old",
            "config": {"tenants": 2, "duration": 0.2, "seed": 3,
                       "request_rate": 30.0},
            "events_per_cpu_second": 50_000.0, "events_fired": 100,
            "egress_signature": "c" * 64,
            "trajectory": [{"label": "older",
                            "events_per_cpu_second": 30_000.0}],
        }
        path.write_text(json.dumps(legacy))
        result = small_bench()
        write_bench(str(path), result, label="new")
        loaded = load_bench(str(path))
        assert loaded["schema"] == TRAJECTORY_SCHEMA
        assert [e["label"] for e in loaded["entries"]] == \
            ["older", "old", "new"]
        assert loaded["entries"][1]["egress_signature"] == "c" * 64

    def test_load_missing_returns_none(self, tmp_path):
        assert load_bench(str(tmp_path / "absent.json")) is None
