"""Tests for the kernel benchmark harness and its regression gate."""

import json

import pytest

from repro.analysis.benchkernel import (BenchError, check_regression,
                                        load_bench, run_kernel_bench,
                                        write_bench)


def small_bench():
    return run_kernel_bench(tenants=2, duration=0.2, seed=3, repeats=2)


class TestRunKernelBench:
    def test_small_cell_reports_all_fields(self):
        result = small_bench()
        assert result["benchmark"] == "kernel.scale2"
        assert result["deterministic"] is True
        assert result["events_per_cpu_second"] > 0
        assert result["events_fired"] > 0
        assert result["heap_high_water"] > 0
        assert len(result["runs"]) == 2
        # warm repeats are the same simulation: same DAG, same signature
        first, second = result["runs"]
        assert first["events_fired"] == second["events_fired"]
        assert first["egress_signature"] == second["egress_signature"]
        assert "repeats" not in result["config"]

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            run_kernel_bench(repeats=0)


class TestRegressionGate:
    def baseline(self, eps=100_000.0):
        return {"config": {"tenants": 32, "duration": 2.0, "seed": 1,
                           "request_rate": 30.0},
                "events_per_cpu_second": eps}

    def result(self, eps):
        return dict(self.baseline(eps))

    def test_within_tolerance_passes(self):
        check_regression(self.result(85_000.0), self.baseline())
        check_regression(self.result(120_000.0), self.baseline())

    def test_regression_beyond_tolerance_fails(self):
        with pytest.raises(BenchError, match="regressed"):
            check_regression(self.result(70_000.0), self.baseline())

    def test_config_mismatch_is_an_error_not_a_pass(self):
        other = self.result(200_000.0)
        other["config"] = dict(other["config"], tenants=8)
        with pytest.raises(BenchError, match="config"):
            check_regression(other, self.baseline())


class TestWriteBench:
    def test_atomic_write_and_trajectory_carry(self, tmp_path):
        path = str(tmp_path / "BENCH_kernel.json")
        first = small_bench()
        write_bench(path, first, label="v1")
        loaded = load_bench(path)
        assert loaded["label"] == "v1"
        assert loaded["trajectory"] == []

        second = small_bench()
        write_bench(path, second, label="v2", previous=loaded)
        loaded = load_bench(path)
        assert loaded["label"] == "v2"
        assert [entry["label"] for entry in loaded["trajectory"]] == ["v1"]
        assert loaded["trajectory"][0]["events_per_cpu_second"] == \
            first["events_per_cpu_second"]
        # the file is well-formed JSON ending in a newline (atomic writer)
        raw = open(path, encoding="utf-8").read()
        assert raw.endswith("\n")
        json.loads(raw)

    def test_load_missing_returns_none(self, tmp_path):
        assert load_bench(str(tmp_path / "absent.json")) is None
