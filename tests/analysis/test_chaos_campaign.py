"""Randomized chaos campaign: cells, sweep plumbing, bench artifact."""

import json

import pytest

from repro.analysis.chaos import (
    CELL_SCENARIOS,
    cell_storm,
    run_chaos_cell,
    run_chaos_campaign,
    summarize_chaos_campaign,
    write_chaos_bench,
)

# small but real: one seed, one scenario, determinism replay on
CELL_KWARGS = {"seed": 13, "scenario": "single", "duration": 4.0,
               "rate": 1.0}


class TestChaosCell:
    def test_cell_passes_invariants_and_determinism(self):
        result = run_chaos_cell(**CELL_KWARGS)
        assert result["ok"]
        assert result["violations"] == []
        assert result["deterministic"] is True
        assert result["faults_injected"] >= 1
        assert result["sent"] > 0 and result["replies"] > 0

    def test_too_short_cell_rejected(self):
        with pytest.raises(ValueError):
            run_chaos_cell(seed=13, duration=1.0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_chaos_cell(seed=13, scenario="bogus", duration=4.0)

    def test_storm_is_seed_deterministic(self):
        import repro.analysis.chaos as chaos
        from repro.sim import Simulator, Trace

        def storm(seed):
            sim = Simulator(seed=seed, trace=Trace(enabled=False))
            cloud, *_ = chaos._build_cell(sim, "single", 2.4)
            schedule = cell_storm(cloud, seed=seed, duration=2.4,
                                  rate=1.0, scenario="single")
            return [(e.time, e.fault, e.target) for e in schedule.events]

        assert storm(99) == storm(99)
        assert storm(99) != storm(100)


class TestCampaign:
    def test_inline_two_cell_sweep(self):
        # seeds chosen so their storms heal inside the shortened 4.0s
        # cell; the production default (6.0s) fits any storm tail
        summary = run_chaos_campaign(
            seeds=[13, 15], scenarios=("single",), duration=4.0,
            rate=1.0, jobs=1, check_determinism=False)
        assert summary["cells"] == 2
        assert summary["ok"]
        assert summary["violations"] == []
        assert summary["nondeterministic_cells"] == 0
        assert len(summary["results"]) == 2
        assert summary["wall_seconds"] >= 0.0

    def test_unknown_scenario_fails_the_campaign_not_the_process(self):
        summary = run_chaos_campaign(
            seeds=[13], scenarios=("bogus",), duration=4.0,
            check_determinism=False)
        assert not summary["ok"]
        assert summary["violations"]

    def test_all_scenarios_are_registered(self):
        assert set(CELL_SCENARIOS) == {"single", "multi", "sharded"}


class TestSummary:
    def fake_report(self):
        class Cell:
            def __init__(self, value):
                self.ok = True
                self.value = value
                self.status = "done"
                self.error = None
                self.label = "chaos_cell"

        rows = [
            {"seed": 1, "scenario": "single", "violations": [],
             "evacuations": 2, "rejoins": 0, "readmits": 1,
             "heal_failures": 0, "faults_injected": 3, "noops": 0,
             "recovery_times": [0.5, 0.9], "sent": 10, "replies": 10,
             "client_retries": 0, "deterministic": True},
            {"seed": 2, "scenario": "single",
             "violations": ["[liveness] starved"],
             "evacuations": 0, "rejoins": 1, "readmits": 0,
             "heal_failures": 1, "faults_injected": 2, "noops": 1,
             "recovery_times": [0.7], "sent": 8, "replies": 4,
             "client_retries": 2, "deterministic": True},
        ]

        class Report:
            results = [Cell(row) for row in rows]
            wall_seconds = 1.5

        return Report()

    def test_aggregation(self):
        summary = summarize_chaos_campaign(self.fake_report())
        assert summary["cells"] == 2
        assert not summary["ok"]
        assert summary["violations"] == \
            ["seed=2 single: [liveness] starved"]
        assert summary["evacuations"] == 2
        assert summary["rejoins"] == 1
        assert summary["readmits"] == 1
        assert summary["heal_failures"] == 1
        assert summary["recoveries"] == 3
        assert summary["recovery_p50"] == 0.7
        assert summary["sent"] == 18 and summary["replies"] == 14

    def test_bench_artifact_round_trip(self, tmp_path):
        summary = summarize_chaos_campaign(self.fake_report())
        path = str(tmp_path / "BENCH_chaos.json")
        write_chaos_bench(path, summary, label="head",
                          config={"seeds": 2, "scenarios": ["single"]})
        first = json.loads(open(path, encoding="utf-8").read())
        assert first["schema"] == "repro.bench.trajectory/1"
        assert [e["label"] for e in first["entries"]] == ["head"]
        head = first["entries"][0]
        assert head["benchmark"] == "chaos.storm"
        assert head["primary_metric"] == "replies"
        assert head["metrics"]["violations"] == 1
        assert head["metrics"]["replies"] == 14
        assert "results" not in head   # per-cell bulk stays out
        # append-only: a second write adds an entry, rewrites nothing
        write_chaos_bench(path, summary, label="next",
                          config={"seeds": 2, "scenarios": ["single"]})
        second = json.loads(open(path, encoding="utf-8").read())
        assert [e["label"] for e in second["entries"]] == \
            ["head", "next"]
