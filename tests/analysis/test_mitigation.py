"""The mitigation-frontier campaign runner: cell contract, aggregation,
the CI gate, and the BENCH artifact writer."""

import json
import pickle
from pathlib import Path

import pytest

from repro.analysis.experiments import RUNNERS
from repro.analysis.mitigation import (
    ATTACK_NAMES,
    POLICY_NAMES,
    frontier_gate,
    mitigation_frontier,
    run_mitigation_cell,
    write_mitigation_bench,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_runners_registered():
    assert RUNNERS["mitigation_cell"] is run_mitigation_cell
    assert RUNNERS["mitigation_frontier"] is mitigation_frontier


def test_name_constants_cover_the_shipped_family():
    assert set(POLICY_NAMES) == {"none", "uniform-noise", "deterland",
                                 "stopwatch"}
    assert set(ATTACK_NAMES) == {"probe", "theft", "clocks"}


def test_cell_returns_plain_picklable_data():
    cell = run_mitigation_cell(policy="none", attack="probe",
                               duration=2.0, seed=3)
    assert cell["policy"] == "none"
    assert cell["attack"] == "probe"
    assert cell["mi_bits"] >= 0.0
    assert cell["capacity_bits"] >= cell["mi_bits"] - 1e-9
    assert cell["samples_absent"] > 0
    assert cell["samples_present"] > 0
    assert cell["victim_requests"] > 0
    assert cell["victim_latency_mean"] > 0
    pickle.dumps(cell)


def test_cell_rejects_unknown_attack():
    with pytest.raises(ValueError, match="unknown attack"):
        run_mitigation_cell(attack="rowhammer", duration=1.0)


def test_frontier_sweep_and_gate():
    summary = mitigation_frontier(policies=("none", "stopwatch"),
                                  attacks=("probe",), duration=3.0,
                                  seeds=[3], jobs=1)
    assert summary["cells"] == 2
    assert not summary["failures"]
    rows = {(r["policy"], r["attack"]): r for r in summary["rows"]}
    assert rows[("none", "probe")]["overhead_x"] == pytest.approx(1.0)
    assert rows[("stopwatch", "probe")]["overhead_x"] > 1.0
    gate = summary["gate"]
    assert gate["checked"] and gate["ok"]
    assert gate["baseline_bits"] > gate["mitigated_bits"]
    assert summary["ok"]


def _synthetic_summary(baseline_bits, mitigated_bits):
    return {"rows": [
        {"policy": "none", "attack": "probe", "mi_bits": baseline_bits},
        {"policy": "stopwatch", "attack": "probe",
         "mi_bits": mitigated_bits},
    ]}


def test_gate_fails_when_baseline_does_not_out_leak():
    gate = frontier_gate(_synthetic_summary(0.0, 0.0))
    assert gate["checked"] and not gate["ok"]
    gate = frontier_gate(_synthetic_summary(0.5, 0.1))
    assert gate["checked"] and gate["ok"]


def test_gate_vacuous_without_both_policies():
    gate = frontier_gate({"rows": [
        {"policy": "deterland", "attack": "probe", "mi_bits": 0.1}]})
    assert not gate["checked"]
    assert gate["ok"]


def test_write_bench_appends_trajectory_entries(tmp_path):
    summary = {"cells": 2, "failures": [], "rows": [],
               "gate": {"checked": True, "ok": True,
                        "baseline_bits": 0.5, "mitigated_bits": 0.1},
               "ok": True, "wall_seconds": 1.0,
               "results": [{"should": "be stripped"}]}
    path = tmp_path / "BENCH_mitigation.json"
    write_mitigation_bench(str(path), summary, label="first")
    first = json.loads(path.read_text())
    assert first["schema"] == "repro.bench.trajectory/1"
    assert [e["label"] for e in first["entries"]] == ["first"]
    head = first["entries"][0]
    assert head["benchmark"] == "mitigation.frontier"
    assert head["primary_metric"] == "margin_bits"
    assert head["metrics"]["margin_bits"] == pytest.approx(0.4)
    assert head["metrics"]["gate_ok"] is True
    assert "results" not in head
    write_mitigation_bench(str(path), summary, label="second")
    second = json.loads(path.read_text())
    assert [e["label"] for e in second["entries"]] == \
        ["first", "second"]


def test_example_spec_loads_and_names_registered_runner():
    from repro.campaign.spec import CampaignSpec
    spec = CampaignSpec.from_file(
        str(REPO_ROOT / "examples" / "mitigation_frontier.toml"))
    assert spec.name == "mitigation-frontier"
    assert [s.runner for s in spec.sweeps] == ["mitigation_cell"]
    grid = spec.sweeps[0].grid
    assert set(grid["policy"]) == set(POLICY_NAMES)
    assert set(grid["attack"]) == set(ATTACK_NAMES)
