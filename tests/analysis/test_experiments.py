"""Tests for the experiment runners and report formatting."""

import math

import pytest

from repro.analysis import (
    PARSEC_PAPER_VALUES,
    delta_offset_translation,
    fig1_median_cdfs,
    fig1_observation_curves,
    fig5_file_download,
    fig6_nfs,
    fig7_parsec,
    fig8_noise_comparison,
    format_table,
    placement_utilization,
    summarize,
)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.5], ["longer", 12345.678]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "12,346" in lines[3]

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["count"] == 3
        assert stats["mean"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["p50"] == 2.0
        assert stats["p99"] == 3.0
        assert summarize([])["count"] == 0
        assert summarize([])["p95"] == 0.0

    def test_summarize_percentiles_exact(self):
        values = [float(i) for i in range(1, 101)]
        stats = summarize(values)
        assert stats["p50"] == 50.0
        assert stats["p95"] == 95.0
        assert stats["p99"] == 99.0


class TestFig1:
    def test_cdf_rows_monotone_and_ordered(self):
        rows = fig1_median_cdfs()
        for x, base, victim, med3, med2v in rows:
            assert 0.0 <= med3 <= 1.0
            # heavier-tailed victim -> smaller CDF everywhere
            assert victim <= base + 1e-12

    def test_median_distributions_closer_than_originals(self):
        rows = fig1_median_cdfs()
        gap_direct = max(abs(b - v) for _, b, v, _, _ in rows)
        gap_median = max(abs(m3 - m2) for _, _, _, m3, m2 in rows)
        assert gap_median < gap_direct

    def test_observation_curves_order(self):
        rows = fig1_observation_curves(victim_rate=0.5,
                                       confidences=(0.7, 0.9, 0.99))
        for confidence, without_sw, with_sw in rows:
            assert with_sw > without_sw

    def test_fig1c_needs_more_than_fig1b(self):
        near = fig1_observation_curves(victim_rate=10.0 / 11.0,
                                       confidences=(0.9,))
        far = fig1_observation_curves(victim_rate=0.5,
                                      confidences=(0.9,))
        assert near[0][1] > 10 * far[0][1]
        assert near[0][2] > 10 * far[0][2]


class TestFig8:
    def test_table_and_curve_shapes(self):
        result = fig8_noise_comparison(confidences=(0.7, 0.9))
        assert len(result["table"]) == 2
        bounds = [p.noise_bound for p in result["curve"]]
        assert bounds == sorted(bounds)
        # scaling claim: noise cost grows ~linearly with the target
        assert bounds[-1] > 5 * bounds[0]


class TestPlacement:
    def test_rows_beat_isolation(self):
        rows = placement_utilization(points=((9, 4), (33, 16)))
        for n, c, sw, isolation, bound, theta in rows:
            assert sw > isolation
            assert sw <= bound
            assert sw >= 0.9 * theta


class TestSimulatorBackedRunners:
    """Smoke runs with tiny parameters (full runs live in benchmarks/)."""

    def test_fig5_smoke(self):
        rows = fig5_file_download(sizes=(20_000,), trials=1)
        (size, http_base, http_sw, udp_base, udp_sw) = rows[0]
        assert size == 20_000
        assert http_sw > http_base > 0
        assert not math.isnan(udp_sw)

    def test_fig6_smoke(self):
        rows = fig6_nfs(rates=(50,), duration=3.0)
        rate, base_lat, sw_lat, c2s, s2c, base_c2s = rows[0]
        assert sw_lat > base_lat > 0
        assert c2s > 0 and s2c > 0

    def test_fig7_smoke(self):
        rows = fig7_parsec(kernels=("streamcluster",), scale=0.2)
        name, base_t, sw_t, ints, paper_base, paper_sw, paper_ints = rows[0]
        assert name == "streamcluster"
        assert sw_t > base_t > 0
        assert PARSEC_PAPER_VALUES["streamcluster"][2] == paper_ints

    def test_delta_offsets_in_paper_range(self):
        result = delta_offset_translation(duration=6.0)
        net = result["net_delays"]
        disk = result["disk_delays"]
        assert len(net) > 20
        assert len(disk) > 10
        mean_net = sum(net) / len(net)
        mean_disk = sum(disk) / len(disk)
        # paper: Δn ~ 7-12 ms, Δd ~ 8-15 ms of real time
        assert 0.006 < mean_net < 0.016
        assert 0.007 < mean_disk < 0.018
