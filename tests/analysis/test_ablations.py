"""Tests for the ablation experiment runners (reduced parameters)."""

import math

import pytest

from repro.analysis import delta_n_ablation, epoch_resync_ablation


class TestDeltaNAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return delta_n_ablation(delta_ns=(0.0005, 0.010), duration=2.5,
                                pings=30)

    def test_latency_grows_with_delta_n(self, rows):
        assert rows[-1][1] > rows[0][1]

    def test_small_delta_n_violates_synchrony(self, rows):
        assert rows[0][2] > 0       # divergences at 0.5 ms
        assert rows[-1][2] == 0     # none at 10 ms

    def test_latency_roughly_tracks_delta_n(self, rows):
        """RTT difference between the Δn settings is about the Δn gap."""
        gap = rows[-1][0] - rows[0][0]
        rtt_gap = rows[-1][1] - rows[0][1]
        assert rtt_gap == pytest.approx(gap, rel=0.6)

    def test_no_nan_latencies(self, rows):
        assert all(not math.isnan(rtt) for _, rtt, _ in rows)


class TestEpochResyncAblation:
    def test_resync_eliminates_drift(self):
        rows = epoch_resync_ablation(epoch_lengths=(None, 2_000_000),
                                     duration=2.0)
        drift_off = rows[0][1]
        drift_on = rows[1][1]
        # 1.5x slope skew -> ~1 s drift over 2 s without resync
        assert drift_off > 0.5
        assert drift_on < 0.1 * drift_off
