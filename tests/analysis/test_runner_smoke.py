"""Smoke test (satellite): every registered runner executes with
minimal durations and returns non-empty, finite rows.

These are the cheapest parameters each runner accepts; the point is
that the campaign layer can call any registry entry by name and get
aggregatable output back, not that the numbers match the paper.
"""

import math

import pytest

from repro.analysis.experiments import RUNNERS

# Minimal-cost kwargs per runner. Every registry entry must appear
# here so new runners cannot be added without a smoke entry.
MINIMAL_KWARGS = {
    "fig1_median_cdfs": {},
    "fig1_observation_curves": {"confidences": (0.9,)},
    "fig4_empirical_detection": {"duration": 2.0},
    "fig5_file_download": {"sizes": (5000,), "trials": 1,
                           "sim_until": 2.0},
    "fig6_nfs": {"rates": (50,), "duration": 1.5},
    "fig7_parsec": {"kernels": ("streamcluster",), "scale": 0.2},
    "fig8_noise_comparison": {"confidences": (0.7,)},
    "placement_utilization": {"points": ((9, 4),)},
    "delta_offset_translation": {"duration": 2.0},
    "aggregation_ablation": {"aggregations": ("median",),
                             "duration": 2.0},
    "delta_n_ablation": {"delta_ns": (0.01,), "duration": 1.5,
                         "pings": 20},
    "epoch_resync_ablation": {"epoch_lengths": (None,),
                              "duration": 1.0},
    "flow_stage_latency": {"duration": 0.5},
    "scale_sweep": {"tenant_counts": (1,), "duration": 1.0,
                    "request_rate": 30.0},
    "kernel_bench": {"tenants": 1, "duration": 0.5, "repeats": 1},
    "chaos_cell": {"scenario": "single", "duration": 2.2,
                   "rate": 1.0, "check_determinism": False},
    "mitigation_cell": {"policy": "none", "attack": "probe",
                        "duration": 2.0, "seed": 3},
    "mitigation_frontier": {"policies": ("none",), "attacks": ("probe",),
                            "duration": 2.0, "seeds": [3], "jobs": 1},
    "storage_repair": {"duration": 4.5, "crash_at": 1.0,
                       "check_determinism": False},
}


def _assert_finite(value, path="result"):
    if isinstance(value, dict):
        assert value, f"{path} is empty"
        for key, item in value.items():
            _assert_finite(item, f"{path}[{key!r}]")
    elif isinstance(value, (list, tuple)):
        assert len(value) > 0, f"{path} is empty"
        for i, item in enumerate(value):
            _assert_finite(item, f"{path}[{i}]")
    elif isinstance(value, float):
        assert math.isfinite(value), f"{path} is {value}"
    else:
        assert value is None or isinstance(value, (int, str, bool)), \
            f"{path} has unexpected type {type(value)}"


def test_every_runner_has_a_smoke_entry():
    assert set(MINIMAL_KWARGS) == set(RUNNERS)


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_runner_returns_nonempty_finite_rows(name):
    result = RUNNERS[name](**MINIMAL_KWARGS[name])
    if name in ("chaos_cell", "mitigation_frontier", "storage_repair"):
        # list fields are empty precisely when the cell is healthy
        result = {key: value for key, value in result.items()
                  if value != []}
    _assert_finite(result)
    if isinstance(result, list):
        # tabular runners: consistent row widths
        widths = {len(row) for row in result}
        assert len(widths) == 1
