"""Tests for the fleet-scale sweep runner."""

from repro.analysis.experiments import RUNNERS
from repro.analysis.scale import (
    build_scale_spec,
    run_scale_cell,
    scale_sweep,
)


class TestScaleCell:
    def test_cell_reports_and_verifies(self):
        spec = build_scale_spec(4, request_rate=30.0)
        row = run_scale_cell(spec, duration=1.5, seed=5)
        assert row["tenants"] == 4
        assert row["machines"] == 9
        assert row["placement_verified"] is True
        assert row["outputs_consistent"] is True
        assert row["packets_released"] > 0
        assert row["mediated_flows"] > 0
        # mediation delay must at least cover delta_net (10 ms DEFAULT)
        assert row["mediation_p50"] > 0.010
        assert row["mediation_p95"] >= row["mediation_p50"]
        assert len(row["egress_signature"]) == 64

    def test_same_seed_same_signature(self):
        spec = build_scale_spec(2, request_rate=30.0)
        a = run_scale_cell(spec, duration=1.0, seed=9)
        b = run_scale_cell(build_scale_spec(2, request_rate=30.0),
                           duration=1.0, seed=9)
        assert a["egress_signature"] == b["egress_signature"]
        assert a["per_tenant_outputs"] == b["per_tenant_outputs"]

    def test_different_seed_different_signature(self):
        a = run_scale_cell(build_scale_spec(2), duration=1.0, seed=1)
        b = run_scale_cell(build_scale_spec(2), duration=1.0, seed=2)
        assert a["egress_signature"] != b["egress_signature"]

    def test_sharded_cell(self):
        spec = build_scale_spec(4, shards=2, request_rate=30.0)
        row = run_scale_cell(spec, duration=1.0, seed=5)
        assert row["shards"] == 2
        assert row["placement_verified"] is True
        assert row["outputs_consistent"] is True


class TestScaleSweep:
    def test_sweep_rows(self):
        rows = scale_sweep(tenant_counts=(1, 4), duration=1.0, seed=5,
                           request_rate=30.0)
        assert [row["tenants"] for row in rows] == [1, 4]
        assert rows[0]["machines"] == 3
        assert rows[1]["machines"] == 9
        assert all(row["events_per_second"] > 0 for row in rows)

    def test_registered_as_campaign_runner(self):
        assert RUNNERS["scale_sweep"] is scale_sweep
