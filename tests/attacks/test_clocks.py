"""Tests for the attacker clock suite: the internal-clock collapse.

The central internal-defense claim (Sec. VI): inside a StopWatch guest,
every buildable clock (RT = virtual time, TL = branch counter, PIT
ticks) is a function of guest progress, so they can never be used to
time one another -- and they are identical across replicas.
"""

import pytest

from repro.cloud import Cloud
from repro.core import DEFAULT
from repro.sim import Simulator, Trace
from repro.attacks import ClockObserver
from repro.workloads.echo import PingClient


def run_observer(seed=21, duration=3.0, jitter=0.05):
    sim = Simulator(seed=seed, trace=Trace(enabled=False))
    cloud = Cloud(sim, machines=3, config=DEFAULT,
                  host_kwargs={"jitter_sigma": jitter})
    holder = []
    vm = cloud.create_vm(
        "attacker", lambda g: holder.append(ClockObserver(g)) or holder[-1])
    client = cloud.add_client("pinger:1")
    pinger = PingClient(client, "vm:attacker", mean_interval=0.030)
    sim.call_after(0.05, pinger.start)
    cloud.run(until=duration)
    return vm, holder


class TestClockCollapse:
    def test_rt_clock_is_linear_in_tl_clock(self):
        """virt = slope * instr exactly: RT carries no extra signal."""
        _, observers = run_observer()
        for sample in observers[0].samples:
            assert sample.virt == pytest.approx(sample.instr * 1e-8)

    def test_pit_ticks_are_a_function_of_virtual_time(self):
        _, observers = run_observer()
        for sample in observers[0].samples:
            expected_ticks = int(sample.virt / 0.004)
            assert abs(sample.pit_ticks - expected_ticks) <= 1

    def test_all_clock_readings_identical_across_replicas(self):
        _, observers = run_observer()
        assert len(observers) == 3
        reference = observers[0].samples
        assert len(reference) > 10
        assert observers[1].samples == reference
        assert observers[2].samples == reference

    def test_derived_interval_clocks_agree(self):
        _, observers = run_observer()
        obs = observers[0]
        assert len(obs.inter_arrival_virts()) == len(obs.samples) - 1
        assert len(obs.inter_arrival_instrs()) == len(obs.samples) - 1
        # instr gaps and virt gaps are the same clock in different units
        for virt_gap, instr_gap in zip(obs.inter_arrival_virts(),
                                       obs.inter_arrival_instrs()):
            assert virt_gap == pytest.approx(instr_gap * 1e-8)
