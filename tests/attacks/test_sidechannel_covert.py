"""Tests for the coresidence side channel and the covert channel.

These use reduced durations; the full-scale versions live in
``benchmarks/``.  The assertions are directional (StopWatch makes the
attack strictly and substantially harder), not absolute counts.
"""

import statistics

import pytest

from repro.attacks import (
    observations_needed_from_samples,
    run_coresidence_experiment,
    run_covert_channel,
)


@pytest.fixture(scope="module")
def short_experiments():
    baseline = run_coresidence_experiment(mediated=False, duration=12.0)
    stopwatch = run_coresidence_experiment(mediated=True, duration=12.0)
    return baseline, stopwatch


class TestCoresidenceDetection:
    def test_baseline_victim_shifts_distribution(self, short_experiments):
        baseline, _ = short_experiments
        mean_victim = statistics.mean(baseline.samples_victim)
        mean_control = statistics.mean(baseline.samples_control)
        assert abs(mean_victim - mean_control) / mean_control > 0.05

    def test_stopwatch_hides_the_shift(self, short_experiments):
        _, stopwatch = short_experiments
        mean_victim = statistics.mean(stopwatch.samples_victim)
        mean_control = statistics.mean(stopwatch.samples_control)
        assert abs(mean_victim - mean_control) / mean_control < 0.02

    def test_stopwatch_needs_many_more_observations(self,
                                                    short_experiments):
        baseline, stopwatch = short_experiments
        base_curve = dict(baseline.detection_curve([0.9]))
        sw_curve = dict(stopwatch.detection_curve([0.9]))
        assert sw_curve[0.9] >= 4 * base_curve[0.9]

    def test_curves_monotone_in_confidence(self, short_experiments):
        baseline, _ = short_experiments
        curve = baseline.detection_curve([0.7, 0.9, 0.99])
        counts = [n for _, n in curve]
        assert counts == sorted(counts)

    def test_no_divergences_during_attack(self, short_experiments):
        _, stopwatch = short_experiments
        assert stopwatch.divergences == 0


class TestObservationsFromSamples:
    def test_identical_samples_need_max_observations(self):
        samples = [0.01 * i for i in range(1, 300)]
        curve = observations_needed_from_samples(samples, samples, [0.9])
        assert curve[0][1] >= 10**6

    def test_disjoint_samples_detected_immediately(self):
        null = [1.0 + 0.001 * i for i in range(200)]
        alt = [5.0 + 0.001 * i for i in range(200)]
        curve = observations_needed_from_samples(null, alt, [0.9])
        assert curve[0][1] <= 3


class TestCovertChannel:
    def test_baseline_channel_decodes(self):
        result = run_covert_channel(mediated=False, n_bits=12)
        assert result.bit_error_rate <= 0.25

    def test_stopwatch_destroys_channel(self):
        result = run_covert_channel(mediated=True, n_bits=12)
        assert result.bit_error_rate >= 0.25

    def test_result_shape(self):
        result = run_covert_channel(mediated=False, n_bits=6)
        assert len(result.bits_sent) == 6
        assert len(result.bits_decoded) == 6
        assert set(result.bits_sent) <= {0, 1}
