"""The policy-parameterised attack probes: every attack produces usable
sample sets under every policy shape, and the headline ordering --
the undefended baseline leaks, StopWatch doesn't -- holds."""

import pytest

from repro.attacks import (
    ATTACK_SUITE,
    AttackResult,
    run_coresidency_probe,
    run_scheduler_theft,
)


def test_suite_covers_the_three_attacks():
    assert sorted(ATTACK_SUITE) == ["clocks", "probe", "theft"]
    for runner in ATTACK_SUITE.values():
        assert callable(runner)


@pytest.mark.parametrize("attack", sorted(ATTACK_SUITE))
def test_attacks_produce_samples_under_baseline(attack):
    result = ATTACK_SUITE[attack](policy="none", duration=3.0, seed=3)
    assert isinstance(result, AttackResult)
    assert result.attack == attack
    assert result.policy == "none"
    assert len(result.samples_absent) > 30
    assert len(result.samples_present) > 30
    assert result.latencies, "victim overhead axis is empty"
    assert result.leakage_bits(bins=8) >= 0.0


def test_attacks_run_under_the_replicated_policy():
    result = run_scheduler_theft(policy="stopwatch", duration=3.0,
                                 seed=3)
    assert result.policy == "stopwatch"
    assert len(result.samples_absent) > 30
    assert len(result.samples_present) > 30


def test_probe_baseline_leaks_more_than_stopwatch():
    """The ordering the CI gate rests on: under ``none`` the probing
    attacker distinguishes the coresident victim; under ``stopwatch``
    the median hides it."""
    baseline = run_coresidency_probe(policy="none", duration=4.0,
                                     seed=3)
    mediated = run_coresidency_probe(policy="stopwatch", duration=4.0,
                                     seed=3)
    assert baseline.leakage_bits() > 0.02
    assert baseline.leakage_bits() > mediated.leakage_bits()


def test_echo_victim_workload_supported():
    result = run_coresidency_probe(policy="none", duration=3.0, seed=3,
                                   workload="echo")
    assert result.latencies


def test_unknown_victim_workload_rejected():
    with pytest.raises(ValueError, match="workload"):
        run_coresidency_probe(policy="none", duration=1.0, seed=3,
                              workload="database")
